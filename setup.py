"""Compatibility shim.

Allows ``python setup.py develop`` on environments whose pip/setuptools
cannot build PEP 660 editable wheels (e.g. offline images without the
``wheel`` package).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
