"""Convolution access-pattern exploration (Figs. 4 and 5c).

Shows the hierarchical rendering of the 4-D weight tensor, the flattened
access-count heatmap of a small convolution, related-access stacking, and
the cache-miss / physical-movement estimate on its tensors.

Run with::

    python examples/conv_locality.py [report.html]
"""

import sys

from repro.apps import conv
from repro.tool import Session


def main(argv: list[str]) -> None:
    output = argv[0] if argv else "conv_report.html"
    sizes = conv.FIG4_SIZES
    session = Session(conv.build_conv())
    lv = session.local_view(sizes, line_size=64, capacity_lines=8)

    # ---- Fig. 4b: flattened access counts ---------------------------------
    counts = lv.access_heatmap("inp")
    border = counts[(0, 0, 0)]
    interior = counts[(0, 4, 4)]
    print(f"input accesses: corner={border}, interior={interior} "
          f"(windows overlap {interior // border}x more in the interior)")

    # ---- Fig. 4c-style related accesses ------------------------------------
    related = lv.related([("out", (0, 0, 0))])
    related_inp = sorted(k[1] for k in related if k[0] == "inp")
    print(f"out[0,0,0] is computed from {len(related_inp)} input accesses, "
          f"e.g. {related_inp[:4]} ...")

    # ---- Fig. 5c: miss estimation on the tensors ----------------------------
    print(f"\n{'tensor':>8} {'cold':>6} {'capacity':>9} {'moved bytes':>12}")
    moved = lv.physical_movement()
    for name, counts_ in lv.miss_counts().items():
        print(f"{name:>8} {counts_.cold:>6} {counts_.capacity:>9} {moved[name]:>12}")

    # ---- report ---------------------------------------------------------------
    report = session.report("Convolution locality analysis")
    report.add_heading("Weight tensor (4-D hierarchical grid, Fig. 4a)")
    report.add_svg(
        lv.render_container("w", values=dict(lv.access_heatmap("w"))),
        caption="w[C_out, C_in, K_y, K_x] access counts",
    )
    report.add_heading("Input access distribution (Fig. 4b)")
    report.add_svg(
        lv.render_container("inp", values=dict(counts)),
        caption="3-channel 9x9 input, 4x4 kernel, no padding",
    )
    report.save(output)
    print(f"\nreport written to {output}")


if __name__ == "__main__":
    main(sys.argv[1:])
