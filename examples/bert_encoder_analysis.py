"""BERT encoder case study (paper Section VI-A, Fig. 6, Table I).

Reproduces the global-view workflow:

1. build the encoder SDFG (one parallel loop per operation);
2. color the movement heatmap with mean-centered scaling — the two chains
   of red edges (attention softmax, GELU) are the stage-1 fusion targets;
3. fuse them, then use the intensity overlay to find and fuse the
   remaining low-intensity loops (stage 2);
4. time the three corresponding NumPy implementations.

Run with::

    python examples/bert_encoder_analysis.py [--paper-sizes] [report.html]
"""

import sys
import time

import numpy as np

from repro.analysis import total_movement_bytes
from repro.apps import bert
from repro.tool import Session


def time_variant(fn, weights, repeats: int = 5) -> float:
    fn(weights)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(weights)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str]) -> None:
    paper_sizes = "--paper-sizes" in argv
    argv = [a for a in argv if not a.startswith("--")]
    output = argv[0] if argv else "bert_report.html"
    env = bert.PAPER_SIZES if paper_sizes else bert.ANALYSIS_SIZES
    # The heatmap-driven candidate selection always evaluates the symbolic
    # volumes at the paper's BERT-large sizes — the sizes the program will
    # run at — even when the timing below uses scaled-down arrays.
    analysis_env = bert.PAPER_SIZES
    print(f"execution sizes: {env}")

    # ---- analysis: the two fusion rounds, driven by the heatmaps ----------
    stages = {"baseline": bert.build_sdfg()}
    candidates = bert.fusion_candidates_by_movement(stages["baseline"], analysis_env)
    print("\nstage-1 candidates (red chains on the mean-scaled movement heatmap):")
    for c in candidates:
        print("  fuse away intermediate:", c.intermediate.data)

    s1 = bert.build_sdfg()
    n1 = bert.apply_fusion_stage1(s1, analysis_env)
    stages["1st set of loop fusions"] = s1
    s2 = bert.build_sdfg()
    bert.apply_fusion_stage1(s2, analysis_env)
    n2 = bert.apply_fusion_stage2(s2)
    stages["2nd set of loop fusions"] = s2
    print(f"\napplied {n1} + {n2} fusions")

    print(f"\n{'stage':>28} {'maps':>6} {'movement [GB]':>15}")
    for name, sdfg in stages.items():
        moved = total_movement_bytes(sdfg, unique=True).evaluate(env) / 1e9
        maps = len(sdfg.start_state.map_entries())
        print(f"{name:>28} {maps:>6} {moved:>15.3f}")

    # ---- measured runtimes (Table I, our NumPy substrate) ------------------
    weights = bert.initialize(env)
    variants = {
        "baseline": bert.encoder_baseline,
        "1st set of loop fusions": bert.encoder_fused_stage1,
        "2nd set of loop fusions": bert.encoder_fused_stage2,
    }
    reference = bert.encoder_baseline(weights)
    print(f"\n{'variant':>28} {'time [ms]':>12} {'speedup':>9}")
    base_time = None
    for name, fn in variants.items():
        assert np.allclose(fn(weights), reference, rtol=1e-8)
        t = time_variant(fn, weights)
        base_time = base_time or t
        print(f"{name:>28} {t * 1e3:>12.2f} {base_time / t:>8.1f}x")

    # ---- report -------------------------------------------------------------
    session = Session(stages["baseline"])
    report = session.report("BERT encoder: global data-movement analysis")
    for name, sdfg in stages.items():
        gv = Session(sdfg).global_view()
        report.add_heading(name)
        report.add_svg(
            gv.render(env=env, edge_overlay="movement", show_minimap=True),
            caption=f"movement heatmap (mean scaling), {name}",
        )
    report.save(output)
    print(f"\nreport written to {output}")


if __name__ == "__main__":
    main(sys.argv[1:])
