"""Parametric scaling analysis (paper Section IV-D).

Uses the symbolic global-view metrics to answer "which input parameter
dominates performance?" without running the program: sweep each parameter
of a matrix multiplication and of the BERT encoder, and rank them by how
strongly the logical data movement responds.

Run with::

    python examples/scaling_analysis.py
"""

from repro.apps import bert, linalg
from repro.tool import Session


def sweep_matmul() -> None:
    session = Session(linalg.build_matmul())
    gv = session.global_view()
    base = {"I": 256, "J": 256, "K": 256}
    print("matmul: logical movement under parameter sweeps")
    for param in ("I", "J", "K"):
        result = gv.scaling_sweep(param, [256, 512, 1024], base)
        series = ", ".join(f"{p}: {v / 1e6:.1f} MB" for p, v in result)
        print(f"  sweep {param}: {series} (growth {result.growth_factors()})")
    print("  ranking:", gv.rank_parameters(base))


def sweep_bert() -> None:
    session = Session(bert.build_sdfg())
    gv = session.global_view()
    base = dict(bert.PAPER_SIZES)
    print("\nBERT encoder: which parameter doubles movement fastest?")
    for name, growth in gv.rank_parameters(base):
        print(f"  2x {name:<4} -> {growth:.2f}x movement")
    sweep = gv.scaling_sweep("SM", [128, 256, 512, 1024], base)
    print("  sequence-length sweep:",
          ", ".join(f"SM={p}: {v / 1e9:.2f} GB" for p, v in sweep))
    print("  (superlinear growth: attention's [B, H, SM, SM] intermediates)")


if __name__ == "__main__":
    sweep_matmul()
    sweep_bert()
