"""Quickstart: analyze a small program end-to-end.

Builds the paper's running example (the outer product of Fig. 3), runs the
global data-movement analysis, opens the parameterized local view, moves
the loop sliders, estimates cache misses, and writes an HTML report.

Run with::

    python examples/quickstart.py [output.html]
"""

import sys

import numpy as np

import repro
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols

M, N = symbols("M N")


@repro.program
def outer(A: float64[M], B: float64[N], C: float64[M, N]):
    for i, j in repro.pmap(M, N):
        C[i, j] = A[i] * B[j]


def main(output: str = "quickstart_report.html") -> None:
    # The program is executable: compile through the NumPy backend.
    a, b = np.arange(3.0), np.arange(4.0)
    c = np.zeros((3, 4))
    outer(a, b, c)
    assert np.allclose(c, np.outer(a, b))
    print("execution ok:", c.tolist())

    session = repro.Session(outer)

    # ---- Global view: symbolic metrics, evaluated on demand --------------
    gv = session.global_view()
    print("\nGlobal view")
    print("  symbolic movement:", gv.total_movement())
    for env in ({"M": 64, "N": 64}, {"M": 1024, "N": 64}):
        print(f"  movement at {env}: {gv.total_movement(env):,.0f} bytes")
    ranking = gv.rank_parameters({"M": 64, "N": 64})
    print("  parameter impact ranking:", ranking)

    # ---- Local view: parameterize small, inspect access behaviour --------
    lv = session.local_view({"M": 3, "N": 4}, line_size=64, capacity_lines=8)
    print("\nLocal view (M=3, N=4)")
    print("  access counts on A:", lv.access_heatmap("A"))
    sliders = lv.sliders()
    sliders.set("i", 1)
    sliders.set("j", 2)
    print("  slider highlights (i=1, j=2):", sliders.highlighted_elements())
    print("  elements sharing A[0]'s cache line:", lv.cache_line_neighbors("A", (0,)))
    for name, counts in lv.miss_counts().items():
        print(f"  {name}: {counts.cold} cold + {counts.capacity} capacity misses")

    # ---- Report ------------------------------------------------------------
    report = session.report("Quickstart: outer product")
    report.add_heading("Global view")
    report.add_svg(gv.render(env={"M": 16, "N": 16}, edge_overlay="movement"))
    report.add_heading("Local view")
    for name in lv.result.containers():
        report.add_svg(
            lv.render_container(name, values=dict(lv.access_heatmap(name))),
            caption=f"access counts on {name}",
        )
    report.save(output)
    print(f"\nreport written to {output}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
