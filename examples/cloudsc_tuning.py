"""CLOUDSC vertical-loop auto-tuning walkthrough.

The CLOUDSC microphysics scheme iterates vertical levels (``KLEV``)
around a parallel block loop (``NBLOCKS``); with the baseline
``[NBLOCKS, KLEV]`` row-major layout, consecutive iterations of the
inner block loop stride ``KLEV`` elements apart and every access misses.
This example closes the paper's interactive loop automatically:

1. build the workload and measure its modeled physical movement;
2. let the beam search (:meth:`~repro.tool.session.Session.tune`)
   explore stride changes, loop interchange, layout permutations...;
3. compare the found variant against the two known manual fixes
   (``change_strides``, ``move_loop_into_map``);
4. render the search trajectory as a roofline chart.

Run with::

    PYTHONPATH=src python examples/cloudsc_tuning.py [roofline.svg]
"""

import sys

from repro.apps import cloudsc
from repro.tool import Session
from repro.tuning import TuningSearch
from repro.viz.roofline import render_roofline


def moved_bytes(sdfg) -> int:
    lv = Session(sdfg).local_view(
        cloudsc.LOCAL_VIEW_SIZES,
        line_size=cloudsc.CACHE["line_size"],
        capacity_lines=cloudsc.CACHE["capacity_lines"],
    )
    return sum(lv.physical_movement().values())


def main(argv: list[str]) -> int:
    output = argv[0] if argv else "cloudsc_roofline.svg"

    # 1. Baseline: KLEV-innermost layout under a block-then-level schedule.
    baseline = moved_bytes(cloudsc.build_sdfg())
    print(f"baseline:          {baseline} bytes moved "
          f"at {cloudsc.LOCAL_VIEW_SIZES}")

    # 2. The two manual fixes from the CLOUDSC optimization story.
    strided = cloudsc.build_sdfg()
    cloudsc.apply_change_strides(strided)
    manual_strides = moved_bytes(strided)
    print(f"change_strides:    {manual_strides} bytes "
          f"({1 - manual_strides / baseline:.1%} reduction)")

    interchanged = cloudsc.build_sdfg()
    cloudsc.apply_loop_interchange(interchanged)
    manual_interchange = moved_bytes(interchanged)
    print(f"move_loop_into_map: {manual_interchange} bytes "
          f"({1 - manual_interchange / baseline:.1%} reduction)")

    # 3. The search, with no hints about either fix.
    search = TuningSearch(
        cloudsc.build_sdfg(),
        cloudsc.LOCAL_VIEW_SIZES,
        beam=4,
        depth=2,
        budget=100,
        line_size=cloudsc.CACHE["line_size"],
        capacity_lines=cloudsc.CACHE["capacity_lines"],
    )
    result = search.run()
    steps = ", ".join(
        m.transform for m in result.best.sequence
    ) or "<baseline>"
    print(f"tuned ({result.evaluated} variants, {result.seconds:.2f}s): "
          f"{result.best.score.moved_bytes} bytes "
          f"({result.improvement:.1%} reduction) via {steps}")
    print(f"pass-cache hits across candidates: {result.pass_hits}")

    # The beam may settle on either manual fix: both are deep cuts, and a
    # frontier dominated by move_loop_into_map descendants can crowd out
    # the four-step stride chain (a restricted `transforms=
    # ["change_strides"]` search recovers it exactly).
    if result.improvement < 0.20:
        print("warning: search fell short of the 20% reduction target",
              file=sys.stderr)
        return 1
    if result.best.score.moved_bytes > max(manual_strides, manual_interchange):
        print("warning: search did not match either manual fix",
              file=sys.stderr)
        return 1

    # 4. The trajectory on the roofline: movement-only transforms shift
    #    candidates horizontally toward the machine-balance ridge.
    svg = render_roofline(result.trajectory, title="cloudsc")
    with open(output, "w", encoding="utf-8") as f:
        f.write(svg)
    print(f"roofline written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
