"""Horizontal-diffusion tuning walkthrough (Section VI-B, Figs. 7 & 8).

Reproduces the local-view workflow on a 1/32-scale parameterization:

1. simulate the access pattern of the fused 3-D stencil loop;
2. inspect one loop iteration's spread over ``in_field`` (Fig. 8a top);
3. apply the three tuning steps — relayout K-major, reorder k outermost,
   pad rows to the cache line — and watch estimated misses and physical
   data movement drop (Fig. 7);
4. time the three NumPy implementations at full size (Table I).

Run with::

    python examples/hdiff_tuning.py [report.html]
"""

import sys
import time

import numpy as np

from repro.apps import hdiff
from repro.tool import Session


def stage_sdfgs():
    base = hdiff.build_sdfg()
    reshaped = hdiff.build_sdfg()
    hdiff.apply_reshape(reshaped)
    reordered = hdiff.build_sdfg()
    hdiff.apply_reshape(reordered)
    hdiff.apply_reorder(reordered)
    padded = hdiff.build_sdfg()
    hdiff.apply_reshape(padded)
    hdiff.apply_reorder(padded)
    hdiff.apply_padding(padded)
    return {
        "baseline [I+4, J+4, K]": base,
        "reshaped [K, I+4, J+4]": reshaped,
        "+ k outermost": reordered,
        "+ padded rows": padded,
    }


def main(argv: list[str]) -> None:
    output = argv[0] if argv else "hdiff_report.html"
    env = hdiff.LOCAL_VIEW_SIZES
    cache = hdiff.FIG7_CACHE
    print(f"local-view parameterization: {env}, cache model: {cache}")

    # ---- Fig. 8a: one iteration's accesses on in_field ---------------------
    base_session = Session(hdiff.build_sdfg())
    lv = base_session.local_view(env, **cache)
    sliders = lv.sliders()
    sliders.set("i", 2)
    sliders.set("j", 2)
    sliders.set("k", 1)
    touched = sorted(sliders.highlighted_elements()["in_field"])
    memory = lv.memory
    lines = {memory.line_of("in_field", idx) for idx in touched}
    print(f"\none iteration (i=2, j=2, k=1) touches {len(touched)} in_field "
          f"elements across {len(lines)} cache lines")

    # ---- Fig. 7: misses and movement through the tuning steps --------------
    print(f"\n{'stage':>24} {'in_field misses':>16} {'moved bytes':>12}")
    rows = []
    for name, sdfg in stage_sdfgs().items():
        session = Session(sdfg)
        view = session.local_view(env, **cache)
        misses = view.miss_counts()["in_field"]
        moved = view.physical_movement()["in_field"]
        rows.append((name, misses.misses, moved))
        print(f"{name:>24} {misses.misses:>16} {moved:>12}")

    # ---- Table I: measured runtimes at full size ----------------------------
    sizes = hdiff.PAPER_SIZES
    in_field, out_field, coeff = hdiff.initialize(**sizes)
    reference = out_field.copy()
    hdiff.hdiff_numpy_baseline(in_field, reference, coeff)

    # The hand-tuned program stores its fields K-major (the layout change
    # is part of the optimized program); prepare each variant's inputs in
    # its native layout, outside the timed region.
    km_inputs = (hdiff.to_kmajor(in_field), hdiff.to_kmajor(out_field),
                 hdiff.to_kmajor(coeff))
    variants = {
        "Baseline (NPBench NumPy)": (hdiff.hdiff_numpy_baseline,
                                     (in_field, out_field.copy(), coeff), False),
        "Best NPBench CPU (proxy)": (hdiff.hdiff_npbench_best,
                                     (in_field, out_field.copy(), coeff), False),
        "Hand-tuned using our tool": (hdiff.hdiff_hand_tuned, km_inputs, True),
    }
    print(f"\nfull size {sizes}:")
    print(f"{'variant':>28} {'time [ms]':>12} {'speedup':>9}")
    base_time = None
    for name, (fn, args, kmajor) in variants.items():
        fn(*args)
        produced = hdiff.from_kmajor(args[1]) if kmajor else args[1]
        assert np.allclose(produced, reference)
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        base_time = base_time or best
        print(f"{name:>28} {best * 1e3:>12.2f} {base_time / best:>8.1f}x")

    # ---- report ---------------------------------------------------------------
    report = base_session.report("hdiff: locality tuning")
    report.add_heading("Access pattern (baseline)")
    report.add_svg(
        lv.render_container(
            "in_field",
            values={i: 1.0 for i in lv.access_heatmap("in_field")},
            highlights=touched,
        ),
        caption="elements accessed by iteration (i=2, j=2, k=1)",
    )
    report.add_heading("Tuning steps (Fig. 7)")
    report.add_table(["stage", "in_field misses", "moved bytes"], rows)
    report.save(output)
    print(f"\nreport written to {output}")


if __name__ == "__main__":
    main(sys.argv[1:])
