"""Fig. 3: the parameterized outer product ``C = A ⊗ B``.

``A ∈ R³``, ``B ∈ R⁴``, ``C ∈ R^{3×4}``; every container is expanded to
individual element tiles, each loop parameter gets a slider, and setting
``i=1, j=2`` highlights A[1], B[2] and C[1,2] green — exactly the
screenshot's content.  Benchmarks the parameterize-and-highlight loop (the
interactive slider path).
"""

import xml.etree.ElementTree as ET

from repro.apps import linalg
from repro.tool import Session

SIZES = {"M": 3, "N": 4}


def test_fig3_slider_highlights(benchmark, artifacts_dir):
    session = Session(linalg.build_outer_product())
    lv = session.local_view(SIZES)

    def move_sliders():
        sliders = lv.sliders()
        sliders.set("i", 1)
        sliders.set("j", 2)
        return sliders.highlighted_elements()

    highlights = benchmark(move_sliders)
    assert highlights == {"A": {(1,)}, "B": {(2,)}, "C": {(1, 2)}}

    # Render the three parameterized containers with the highlights.
    for name in ("A", "B", "C"):
        svg = lv.render_container(name, highlights=highlights.get(name, ()))
        ET.fromstring(svg)
        (artifacts_dir / f"fig3_{name}.svg").write_text(svg)


def test_fig3_slider_bounds(benchmark):
    """Sliders expose the loop bounds i ∈ [0,2], j ∈ [0,3]."""
    session = Session(linalg.build_outer_product())
    lv = session.local_view(SIZES)

    def read_bounds():
        sliders = lv.sliders()
        return sliders.bounds("i"), sliders.bounds("j")

    bounds = benchmark(read_bounds)
    assert bounds == ((0, 2), (0, 3))


def test_fig3_full_iteration_sweep(benchmark):
    """Sweeping both sliders over the whole space touches every element."""
    session = Session(linalg.build_outer_product())
    lv = session.local_view(SIZES)

    def sweep():
        sliders = lv.sliders()
        touched: set[tuple[str, tuple[int, ...]]] = set()
        for i in range(3):
            for j in range(4):
                sliders.set("i", i)
                sliders.set("j", j)
                for name, elements in sliders.highlighted_elements().items():
                    touched.update((name, e) for e in elements)
        return touched

    touched = benchmark(sweep)
    assert len([t for t in touched if t[0] == "C"]) == 12
    assert len([t for t in touched if t[0] == "A"]) == 3
    assert len([t for t in touched if t[0] == "B"]) == 4
