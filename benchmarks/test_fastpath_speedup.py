"""Interpreter vs. vectorized fast path on the hdiff local view.

The paper's interactive loop re-simulates on every slider movement, so
the fast path must beat the per-iteration interpreter by a wide margin
while producing a byte-identical trace.  This benchmark records the
speedup row demanded by the roadmap: >= 5x on the hdiff local view.
"""

import gc
import time

from repro.apps import hdiff
from repro.simulation import simulate_state

from conftest import print_table

SIZES = [
    ("paper local view", hdiff.LOCAL_VIEW_SIZES),
    ("2x per axis", {"I": 16, "J": 16, "K": 8}),
]


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fastpath_speedup():
    sdfg = hdiff.build_sdfg()
    simulate_state(sdfg, {"I": 2, "J": 2, "K": 2})  # warm up imports/caches
    rows = []
    speedups = {}
    for label, sizes in SIZES:
        t_interp, slow = _best_of(lambda: simulate_state(sdfg, sizes, fast=False))
        t_vec, fast = _best_of(lambda: simulate_state(sdfg, sizes, fast=True))
        assert len(fast.events) == len(slow.events)
        speedups[label] = t_interp / t_vec
        rows.append(
            [
                label,
                len(fast.events),
                f"{t_interp * 1e3:.1f}",
                f"{t_vec * 1e3:.1f}",
                f"{speedups[label]:.1f}x",
            ]
        )
    print_table(
        "hdiff local view: interpreter vs. vectorized fast path",
        ["size", "events", "interpreter [ms]", "vectorized [ms]", "speedup"],
        rows,
    )
    # The acceptance bar: >= 5x on the hdiff local view.
    assert max(speedups.values()) >= 5.0, speedups
    assert min(speedups.values()) >= 3.0, speedups
