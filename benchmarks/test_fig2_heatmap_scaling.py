"""Fig. 2: the three heatmap scaling methods and their use cases.

The paper's figure shows one value distribution (a cluster plus one
outlier) colored three ways:

- **mean-centered** — influenced by the outlier: the bulk compresses into
  the green end while the outlier saturates red (bottleneck detection);
- **histogram** — every distinct observation gets its own color, fully
  exposing the distribution regardless of gaps;
- **median-centered** — in between: outlier-resistant but less distorted,
  grouping similar magnitudes.

This module regenerates the series (color positions per value per method),
asserts the characterizations, writes a comparison artifact and benchmarks
the fit+assign path.
"""

from repro.viz import GREEN_YELLOW_RED, Heatmap

from conftest import print_table

#: The kind of distribution the figure illustrates: a cluster + outlier.
DISTRIBUTION = [10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 500.0]


def _positions(method: str) -> list[float]:
    hm = Heatmap(dict(enumerate(DISTRIBUTION)), method=method)
    return [hm.position(i) for i in range(len(DISTRIBUTION))]


def test_fig2_scaling_methods(benchmark, artifacts_dir):
    def fit_all():
        return {m: _positions(m) for m in ("mean", "histogram", "median")}

    series = benchmark(fit_all)
    mean_pos, hist_pos, median_pos = (
        series["mean"], series["histogram"], series["median"],
    )

    rows = [
        [f"{v:g}", f"{m:.3f}", f"{h:.3f}", f"{d:.3f}"]
        for v, m, h, d in zip(DISTRIBUTION, mean_pos, hist_pos, median_pos)
    ]
    print_table(
        "Fig. 2: scale position per value (0=green, 1=red)",
        ["value", "mean", "histogram", "median"],
        rows,
    )

    # Mean-centered: outlier visually distinct — bulk compressed low, the
    # outlier clamps to the red end with a large gap.
    assert mean_pos[-1] == 1.0
    assert max(mean_pos[:-1]) < 0.15
    assert mean_pos[-1] - max(mean_pos[:-1]) > 0.8

    # Histogram: equidistant positions by rank, independent of gaps.
    expected = [i / (len(DISTRIBUTION) - 1) for i in range(len(DISTRIBUTION))]
    assert hist_pos == expected

    # Median-centered: the bulk spreads wider than under the mean scale
    # (less compression) but the outlier still saturates.
    assert max(median_pos[:-1]) > max(mean_pos[:-1])
    assert median_pos[-1] == 1.0
    bulk_spread_median = max(median_pos[:-1]) - min(median_pos[:-1])
    bulk_spread_mean = max(mean_pos[:-1]) - min(mean_pos[:-1])
    assert bulk_spread_median > bulk_spread_mean

    # Artifact: side-by-side color strips.
    _write_strips(artifacts_dir, series)


def _write_strips(artifacts_dir, series) -> None:
    from repro.viz.svg import SVGDocument

    cell, gap, row_h = 40.0, 4.0, 30.0
    width = len(DISTRIBUTION) * (cell + gap) + 120
    doc = SVGDocument(width, 3 * row_h + 20)
    for row, (method, positions) in enumerate(series.items()):
        y = 10 + row * row_h
        doc.text(8, y + 14, method, font_size=11, anchor="start")
        for i, pos in enumerate(positions):
            color = GREEN_YELLOW_RED.sample(pos)
            doc.rect(
                110 + i * (cell + gap), y, cell, 20,
                fill=color.to_hex(), title=f"{DISTRIBUTION[i]:g}",
            )
    (artifacts_dir / "fig2_heatmap_scaling.svg").write_text(doc.to_string())


def test_fig2_distinct_color_counts(benchmark):
    """Histogram separates at least as many colors as the other methods."""

    def distinct_counts():
        return {
            m: Heatmap(dict(enumerate(DISTRIBUTION)), method=m).distinct_colors()
            for m in ("mean", "histogram", "median")
        }

    counts = benchmark(distinct_counts)
    assert counts["histogram"] >= counts["median"] >= 1
    assert counts["histogram"] >= counts["mean"]
    assert counts["histogram"] == len(DISTRIBUTION)
