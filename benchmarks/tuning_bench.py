"""Auto-tuning benchmark; writes ``BENCH_tuning.json``.

Runs the beam search on both case studies and records the economics the
tuner is built around:

- **variants explored** (scored candidates, duplicates skipped) on the
  CLOUDSC vertical-loop workload and the hdiff rediscovery scenario;
- **pass-cache hit rate across candidates** — the share of pass requests
  served from the content-addressed store while re-scoring variants,
  measured on the search's own pipeline;
- **best-found movement reduction** against each baseline, and whether
  hdiff's search meets the paper's manually tuned permute+reorder
  variant.

Exit code 0 when the acceptance targets hold (CLOUDSC reduction ≥ 20%,
hdiff best ≤ manual, non-zero cross-candidate pass hits), 1 otherwise.
Run with::

    PYTHONPATH=src python benchmarks/tuning_bench.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import cloudsc, hdiff  # noqa: E402
from repro.tuning import TuningSearch  # noqa: E402

CLOUDSC_REDUCTION_TARGET = 0.20
HDIFF_MANUAL_BYTES = 177920

ROOFLINE_OUT = Path(__file__).resolve().parent / "artifacts" / "tuning_roofline.svg"


def pass_counter_totals(search: TuningSearch) -> dict:
    counters = search.metrics.to_dict()["counters"]
    hits = sum(
        v for k, v in counters.items()
        if k.startswith("pass.") and k.endswith(".hits")
    )
    misses = sum(
        v for k, v in counters.items()
        if k.startswith("pass.") and k.endswith(".misses")
    )
    total = hits + misses
    return {
        "pass_hits": hits,
        "pass_misses": misses,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def run_cloudsc() -> tuple[dict, object]:
    search = TuningSearch(
        cloudsc.build_sdfg(),
        cloudsc.LOCAL_VIEW_SIZES,
        beam=4,
        depth=2,
        budget=100,
        line_size=cloudsc.CACHE["line_size"],
        capacity_lines=cloudsc.CACHE["capacity_lines"],
    )
    result = search.run()
    report = {
        "baseline_moved_bytes": result.baseline.score.moved_bytes,
        "best_moved_bytes": result.best.score.moved_bytes,
        "movement_reduction": round(result.improvement, 4),
        "best_sequence": [
            m.transform for m in result.best.sequence
        ],
        "variants_explored": result.evaluated,
        "duplicates_skipped": result.deduplicated,
        "rounds": result.rounds,
        "seconds": round(result.seconds, 3),
        "stopped": result.stopped,
        **pass_counter_totals(search),
    }
    return report, result


def run_hdiff() -> dict:
    search = TuningSearch(
        hdiff.build_sdfg(),
        hdiff.LOCAL_VIEW_SIZES,
        transforms=[
            "permute_array_layout", "reorder_map", "pad_strides_to_multiple",
        ],
        beam=3,
        depth=4,
        budget=200,
        line_size=hdiff.FIG7_CACHE["line_size"],
        capacity_lines=hdiff.FIG7_CACHE["capacity_lines"],
    )
    result = search.run()
    return {
        "baseline_moved_bytes": result.baseline.score.moved_bytes,
        "best_moved_bytes": result.best.score.moved_bytes,
        "manual_moved_bytes": HDIFF_MANUAL_BYTES,
        "beats_manual": (
            result.best.score.moved_bytes <= HDIFF_MANUAL_BYTES
        ),
        "movement_reduction": round(result.improvement, 4),
        "best_sequence": [m.transform for m in result.best.sequence],
        "variants_explored": result.evaluated,
        "duplicates_skipped": result.deduplicated,
        "rounds": result.rounds,
        "seconds": round(result.seconds, 3),
        "stopped": result.stopped,
        **pass_counter_totals(search),
    }


def main() -> int:
    cloudsc_report, cloudsc_result = run_cloudsc()
    hdiff_report = run_hdiff()

    from repro.viz.roofline import render_roofline

    ROOFLINE_OUT.parent.mkdir(parents=True, exist_ok=True)
    ROOFLINE_OUT.write_text(
        render_roofline(cloudsc_result.trajectory, title="cloudsc")
    )

    checks = {
        "cloudsc_reduction_met": (
            cloudsc_report["movement_reduction"] >= CLOUDSC_REDUCTION_TARGET
        ),
        "hdiff_beats_manual": hdiff_report["beats_manual"],
        "cross_candidate_pass_hits": (
            cloudsc_report["pass_hits"] > 0 and hdiff_report["pass_hits"] > 0
        ),
    }
    report = {
        "benchmark": "tuning",
        "cloudsc": cloudsc_report,
        "hdiff": hdiff_report,
        "checks": checks,
        "ok": all(checks.values()),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_tuning.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
