"""Fig. 6: the BERT encoder's global view through the optimization stages.

Left: the baseline graph's mean-scaled movement heatmap shows "two
distinct series of edges highlighted in red" — the attention softmax and
GELU chains.  Center: after the first fusion round those edges are gone;
the median-scaled intensity overlay then flags the remaining low-intensity
loops.  Right: the second round yields a visibly smaller graph.

Regenerated here as three SVG snapshots plus the quantitative trajectory
(map count and movement per stage), with the heatmap-driven candidate
selection benchmarked.
"""

import xml.etree.ElementTree as ET

from repro.analysis import total_movement_bytes
from repro.apps import bert
from repro.tool import Session

from conftest import print_table

ENV = bert.PAPER_SIZES


def test_fig6_stage1_candidates(benchmark):
    """The mean-scaled movement heatmap flags the two fusible chains."""
    sdfg = bert.build_sdfg()

    candidates = benchmark(bert.fusion_candidates_by_movement, sdfg, ENV)
    names = {c.intermediate.data for c in candidates}
    # Attention chain: the scaled scores feed exp.  GELU chain: the cube
    # and tanh-inner intermediates.  Small [B, SM, EMB] bias intermediates
    # must NOT be flagged.
    assert "scaled" in names
    assert {"cube", "inner"} & names
    assert "projb" not in names and "h2b" not in names


def test_fig6_three_stage_snapshots(benchmark, artifacts_dir):
    def build_stages():
        baseline = bert.build_sdfg()
        stage1 = bert.build_sdfg()
        n1 = bert.apply_fusion_stage1(stage1, ENV)
        stage2 = bert.build_sdfg()
        bert.apply_fusion_stage1(stage2, ENV)
        n2 = bert.apply_fusion_stage2(stage2)
        return baseline, stage1, stage2, n1, n2

    baseline, stage1, stage2, n1, n2 = benchmark(build_stages)
    assert n1 >= 3 and n2 >= 1

    rows = []
    prev_moved = None
    for label, sdfg in (
        ("baseline", baseline),
        ("after 1st fusion round", stage1),
        ("after 2nd fusion round", stage2),
    ):
        sdfg.validate()
        maps = len(sdfg.start_state.map_entries())
        moved = total_movement_bytes(sdfg, unique=True).evaluate(ENV)
        rows.append([label, maps, f"{moved / 1e9:.3f} GB"])
        if prev_moved is not None:
            assert moved < prev_moved
        prev_moved = moved

        gv = Session(sdfg).global_view()
        svg = gv.render(env=ENV, edge_overlay="movement", show_minimap=True)
        ET.fromstring(svg)
        name = label.replace(" ", "_")
        (artifacts_dir / f"fig6_{name}.svg").write_text(svg)

    print_table(
        "Fig. 6: BERT global view trajectory",
        ["stage", "parallel loops", "logical movement"],
        rows,
    )
    # The graph shrinks stage over stage.
    assert (
        len(baseline.start_state.nodes())
        > len(stage1.start_state.nodes())
        > len(stage2.start_state.nodes())
    )


def test_fig6_intensity_flags_low_intensity_loops(benchmark):
    """After stage 1, the intensity overlay marks the remaining fusible
    elementwise loops as low-intensity (green on the median scale)."""
    sdfg = bert.build_sdfg()
    bert.apply_fusion_stage1(sdfg, ENV)
    gv = Session(sdfg).global_view()

    heatmap = benchmark(gv.intensity_heatmap, ENV, "median")

    from repro.transforms.map_fusion import MapFusion

    remaining = MapFusion.find_matches(sdfg, sdfg.start_state)
    assert remaining, "stage 2 must still have work"
    state = sdfg.start_state
    for match in remaining:
        # Each still-fusible consumer map sits in the lower half of the
        # intensity scale (elementwise op on a large array).
        entry = match.consumer_entry
        if entry in heatmap.values:
            assert heatmap.position(entry) <= 0.5
