"""Object pipeline vs. array-native pipeline on the hdiff local view.

The tentpole acceptance row: carrying NumPy arrays end to end through
layout → stack distances → miss classification → aggregation must beat
the per-event object pipeline by >= 5x on the hdiff local view, with
exactly equal results.  A second benchmark records the parametric-sweep
fan-out: a worker-pool sweep over an 8-point grid must not lose to the
serial loop (and must beat it when the machine has >1 core) — and the
adaptive executor must refuse the pool whenever it cannot win.  A third
records the compiled batched expression engine: evaluating the symbolic
movement product over a 64-point grid in one vectorized call must beat
the per-point tree interpreter by >= 1.5x.

A fourth row records the analytic locality engine: closed-form reuse
distances must beat trace enumeration by >= 50x on the largest common
hdiff size, with exactly equal miss counts, and must complete a
production-size local view (>= 10^6 heatmap elements) that enumeration
cannot touch.  A fifth records chunked sweep dispatch over a 100-point
grid.

Results are written to ``BENCH_localview.json`` at the repository root.
"""

import gc
import json
import os
import time
from pathlib import Path

from repro.analysis.parametric import parameter_grid, sweep_local_views
from repro.apps import hdiff
from repro.simulation import (
    CacheModel,
    MemoryModel,
    build_array_trace,
    element_stack_distances,
    per_container_misses,
    per_container_misses_array,
    per_element_misses,
    per_element_misses_array,
    simulate_state,
    stack_distances,
    stack_distances_array,
)
from repro.simulation.arrays import element_distance_lists
from repro.simulation.stackdist import line_trace

from conftest import print_table

BENCH_JSON = Path(__file__).parent.parent / "BENCH_localview.json"

SIZES = [
    ("paper local view", hdiff.LOCAL_VIEW_SIZES),
    ("2x per axis", {"I": 16, "J": 16, "K": 8}),
]

SWEEP_GRID = parameter_grid({"I": [6, 8, 10, 12], "J": [6, 10], "K": [5]})


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _record(payload):
    existing = {}
    if BENCH_JSON.exists():
        existing = json.loads(BENCH_JSON.read_text())
    existing.update(payload)
    BENCH_JSON.write_text(json.dumps(existing, indent=2) + "\n")


def test_array_pipeline_speedup():
    sdfg = hdiff.build_sdfg()
    model = CacheModel(line_size=64, capacity_lines=512)
    rows, speedups, record = [], {}, {}
    for label, sizes in SIZES:
        result = simulate_state(sdfg, sizes, fast=True)
        memory = MemoryModel(sdfg, sizes, line_size=64)
        events = result.events  # materialize outside the timed region

        def object_pipeline():
            distances = stack_distances(line_trace(events, memory))
            return (
                per_container_misses(events, memory, model, distances),
                per_element_misses(events, memory, model, "out_field", distances),
                element_stack_distances(events, memory, distances=distances),
            )

        def array_pipeline():
            trace = build_array_trace(result, memory)
            distances = stack_distances_array(trace.lines)
            return (
                per_container_misses_array(trace, distances, model),
                per_element_misses_array(trace, distances, model, "out_field"),
                element_distance_lists(trace, distances),
            )

        t_obj, ref = _best_of(object_pipeline)
        t_arr, out = _best_of(array_pipeline)
        assert out == ref, f"array pipeline diverges at {label}"
        speedups[label] = t_obj / t_arr
        record[label] = {
            "events": result.num_events,
            "object_ms": round(t_obj * 1e3, 3),
            "array_ms": round(t_arr * 1e3, 3),
            "speedup": round(speedups[label], 2),
        }
        rows.append(
            [
                label,
                result.num_events,
                f"{t_obj * 1e3:.1f}",
                f"{t_arr * 1e3:.1f}",
                f"{speedups[label]:.1f}x",
            ]
        )
    print_table(
        "hdiff local view: object pipeline vs. array pipeline",
        ["size", "events", "object [ms]", "array [ms]", "speedup"],
        rows,
    )
    _record({"localview_pipeline": record})
    if os.environ.get("REPRO_BENCH_RELAXED", "0") == "1":
        # CI floor: the array pipeline must never lose to the object one
        # (shared runners are too noisy for the full bar).
        assert min(speedups.values()) >= 1.0, speedups
    else:
        # The acceptance bar: >= 5x on the hdiff local view.
        assert max(speedups.values()) >= 5.0, speedups
        assert min(speedups.values()) >= 3.0, speedups


def test_sweep_scaling():
    sdfg = hdiff.build_sdfg()
    sweep_local_views(sdfg, SWEEP_GRID[:1])  # warm up
    t_serial, serial = _best_of(
        lambda: sweep_local_views(sdfg, SWEEP_GRID), repeats=2
    )
    t_par, parallel = _best_of(
        lambda: sweep_local_views(sdfg, SWEEP_GRID, workers=4), repeats=2
    )
    t_adapt, adaptive = _best_of(
        lambda: sweep_local_views(sdfg, SWEEP_GRID, workers=4, adaptive=True),
        repeats=2,
    )
    assert parallel == serial
    assert adaptive == serial
    cores = os.cpu_count() or 1
    print_table(
        f"hdiff parametric sweep, {len(SWEEP_GRID)} points ({cores} cores)",
        ["mode", "total [ms]", "per point [ms]"],
        [
            ["serial", f"{t_serial * 1e3:.1f}", f"{t_serial / len(SWEEP_GRID) * 1e3:.1f}"],
            ["4 workers", f"{t_par * 1e3:.1f}", f"{t_par / len(SWEEP_GRID) * 1e3:.1f}"],
            ["adaptive", f"{t_adapt * 1e3:.1f}", f"{t_adapt / len(SWEEP_GRID) * 1e3:.1f}"],
        ],
    )
    _record(
        {
            "sweep_8pt": {
                "points": len(SWEEP_GRID),
                "cores": cores,
                "serial_ms": round(t_serial * 1e3, 3),
                "workers4_ms": round(t_par * 1e3, 3),
                "adaptive_ms": round(t_adapt * 1e3, 3),
                "speedup": round(t_serial / t_par, 2),
                "adaptive_speedup": round(t_serial / t_adapt, 2),
            }
        }
    )
    if cores >= 2:
        # Fan-out must win once there is real parallelism to exploit.
        assert t_par < t_serial, (t_par, t_serial)
    # The adaptive executor never loses meaningfully to the serial loop:
    # on few cores it measures one point and refuses the pool, on many
    # cores it pools only when the cost model predicts a win.  15% slack
    # absorbs timer noise on the cheap grid.
    assert t_adapt <= t_serial * 1.15, (t_adapt, t_serial)


def test_grid_eval_speedup():
    """Batched compiled evaluation vs per-point tree interpretation."""
    from repro.analysis.movement import edge_movement_bytes
    from repro.analysis.parametric import evaluate_metrics, evaluate_metrics_grid
    from repro.symbolic.compiled import clear_compile_cache

    sdfg = hdiff.build_sdfg()
    state = next(iter(sdfg.states()))
    product = edge_movement_bytes(sdfg, state, unique=True)
    envs = parameter_grid(
        {"I": [8, 16, 24, 32], "J": [8, 16, 24, 32], "K": [2, 4, 6, 8]}
    )
    assert len(envs) == 64

    clear_compile_cache()
    evaluate_metrics_grid(product, envs[:1])  # compile once, outside timing

    # Each side produces its natural shape: rows of per-env dicts for
    # the interpreter, one column per metric for the compiled engine
    # (the form the sweep and eval-pass consumers use directly).
    def per_point():
        return [evaluate_metrics(product, env) for env in envs]

    def batched():
        return evaluate_metrics_grid(product, envs)

    t_tree, ref = _best_of(per_point, repeats=5)
    t_comp, grid = _best_of(batched, repeats=5)
    out = [
        {key: values[i] for key, values in grid.items()}
        for i in range(len(envs))
    ]
    assert out == ref, "compiled grid evaluation diverges from the interpreter"
    speedup = t_tree / t_comp
    print_table(
        f"hdiff movement product, {len(envs)}-point grid, "
        f"{len(product)} metrics",
        ["mode", "total [ms]", "speedup"],
        [
            ["per-point interpreter", f"{t_tree * 1e3:.2f}", "1.0x"],
            ["compiled batch", f"{t_comp * 1e3:.2f}", f"{speedup:.1f}x"],
        ],
    )
    _record(
        {
            "grid_eval_64pt": {
                "points": len(envs),
                "metrics": len(product),
                "per_point_ms": round(t_tree * 1e3, 3),
                "batched_ms": round(t_comp * 1e3, 3),
                "speedup": round(speedup, 2),
            }
        }
    )
    if os.environ.get("REPRO_BENCH_RELAXED", "0") == "1":
        assert speedup >= 1.0, speedup
    else:
        # Acceptance bar: batched grid eval >= 1.5x over per-point eval.
        assert speedup >= 1.5, speedup


def test_analytic_locality_speedup():
    """Closed-form reuse distances vs. trace enumeration on hdiff."""
    from repro.locality import analyze_locality

    sdfg = hdiff.build_sdfg()
    model = CacheModel(line_size=64, capacity_lines=512)
    relaxed = os.environ.get("REPRO_BENCH_RELAXED", "0") == "1"
    # The largest size both sides can evaluate: enumeration needs the
    # whole trace in memory and a stack-distance pass over it.  CI
    # runners get a smaller common size; the bar scales accordingly.
    common = (
        {"I": 64, "J": 32, "K": 16} if relaxed else {"I": 256, "J": 64, "K": 32}
    )

    def enumeration():
        result = simulate_state(sdfg, common, fast=True)
        memory = MemoryModel(sdfg, common, line_size=64)
        trace = build_array_trace(result, memory)
        distances = stack_distances_array(trace.lines)
        return trace.num_events, per_container_misses_array(
            trace, distances, model
        )

    def analytic():
        product = analyze_locality(sdfg, common)
        return product.total_events, product.miss_counts(model.capacity_lines)

    t_enum, (events, ref) = _best_of(enumeration, repeats=1)
    t_analytic, (total, counts) = _best_of(analytic, repeats=1)
    assert total == events
    assert counts == ref, "analytic engine diverges from enumeration"
    speedup = t_enum / t_analytic

    # Production demo: a size enumeration cannot reach interactively —
    # 75.5M accesses, a 2.2M-element in_field heatmap — analytic only.
    production = {"I": 1024, "J": 64, "K": 32}
    if relaxed:
        production = {"I": 256, "J": 32, "K": 16}
    t_prod, product = _best_of(
        lambda: analyze_locality(sdfg, production), repeats=1
    )
    assert product.analytic_regions >= 1, "fold must engage at scale"
    heatmap = product.per_element_misses("in_field", model.capacity_lines)
    if not relaxed:
        assert len(heatmap) >= 10**6, "production heatmap must be full-size"

    print_table(
        "hdiff local view: trace enumeration vs. analytic engine",
        ["size", "events", "enum [ms]", "analytic [ms]", "speedup"],
        [
            [
                "common",
                events,
                f"{t_enum * 1e3:.0f}",
                f"{t_analytic * 1e3:.0f}",
                f"{speedup:.0f}x",
            ],
            [
                "production",
                product.total_events,
                "(intractable)",
                f"{t_prod * 1e3:.0f}",
                "-",
            ],
        ],
    )
    _record(
        {
            "localview_analytic": {
                "common_sizes": common,
                "events": events,
                "enumeration_ms": round(t_enum * 1e3, 3),
                "analytic_ms": round(t_analytic * 1e3, 3),
                "speedup": round(speedup, 2),
                "production_sizes": production,
                "production_events": product.total_events,
                "production_heatmap_elements": len(heatmap),
                "production_analytic_ms": round(t_prod * 1e3, 3),
            }
        }
    )
    if relaxed:
        # CI floor: the engine must still win clearly at the small size.
        assert speedup >= 3.0, speedup
    else:
        # Acceptance bar: >= 50x at the largest common size.
        assert speedup >= 50.0, speedup


def test_sweep_batched_100pt():
    """Chunked pool dispatch vs. per-point dispatch on a 100-point grid."""
    grid = parameter_grid(
        {
            "I": [6, 8, 10, 12, 14, 16, 18, 20, 22, 24],
            "J": [6, 8, 10, 12, 14],
            "K": [4, 6],
        }
    )
    assert len(grid) == 100
    sdfg = hdiff.build_sdfg()
    sweep_local_views(sdfg, grid[:1])  # warm up
    t_serial, serial = _best_of(
        lambda: sweep_local_views(sdfg, grid), repeats=2
    )
    t_point, per_point = _best_of(
        lambda: sweep_local_views(sdfg, grid, workers=4, batch=1), repeats=2
    )
    t_chunked, chunked = _best_of(
        lambda: sweep_local_views(sdfg, grid, workers=4), repeats=2
    )
    assert chunked == serial
    assert per_point == serial
    cores = os.cpu_count() or 1
    print_table(
        f"hdiff parametric sweep, {len(grid)} points ({cores} cores)",
        ["mode", "total [ms]", "per point [ms]"],
        [
            ["serial", f"{t_serial * 1e3:.1f}", f"{t_serial / len(grid) * 1e3:.2f}"],
            ["4 workers, batch=1", f"{t_point * 1e3:.1f}", f"{t_point / len(grid) * 1e3:.2f}"],
            ["4 workers, chunked", f"{t_chunked * 1e3:.1f}", f"{t_chunked / len(grid) * 1e3:.2f}"],
        ],
    )
    _record(
        {
            "sweep_100pt": {
                "points": len(grid),
                "cores": cores,
                "serial_ms": round(t_serial * 1e3, 3),
                "per_point_pool_ms": round(t_point * 1e3, 3),
                "chunked_pool_ms": round(t_chunked * 1e3, 3),
                "chunked_vs_per_point": round(t_point / t_chunked, 2),
            }
        }
    )
    # Chunked dispatch amortizes task overhead: it must not lose to
    # per-point dispatch (15% slack absorbs pool startup noise).
    assert t_chunked <= t_point * 1.15, (t_chunked, t_point)
