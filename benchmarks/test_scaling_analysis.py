"""Section IV-D: the parametric scaling analysis (supplementary-video demo).

No numbered figure, but a core interactive capability: change parameter
values and watch the symbolic metrics re-evaluate instantly.  This module
benchmarks the re-evaluation latency (the "rapid feedback" claim) and
asserts the BERT parameter ranking the analysis yields: the sequence
length dominates data movement (attention's quadratic [B, H, SM, SM]
intermediates), batch size scales linearly, head size barely matters.
"""

from repro.analysis import ParameterSweep, total_movement_bytes
from repro.apps import bert, linalg

from conftest import print_table


def test_scaling_reevaluation_latency(benchmark):
    """Re-evaluating all BERT movement under new parameters is instant."""
    sdfg = bert.build_sdfg()
    metric = total_movement_bytes(sdfg, unique=True)
    env = dict(bert.PAPER_SIZES)

    def reevaluate():
        env["SM"] = 1024 if env["SM"] == 512 else 512  # the slider moves
        return metric.evaluate(env)

    benchmark(reevaluate)
    # Interactivity: well under a frame.
    assert benchmark.stats.stats.median < 0.05


def test_scaling_parameter_ranking(benchmark):
    """The ranking identifies SM as the dominant BERT parameter."""
    sdfg = bert.build_sdfg()
    metric = total_movement_bytes(sdfg, unique=True)
    sweep = ParameterSweep(bert.PAPER_SIZES)

    ranking = benchmark(sweep.rank_parameters, metric)
    print_table(
        "Parametric scaling: movement growth when doubling one parameter",
        ["parameter", "growth"],
        [[name, f"{growth:.2f}x"] for name, growth in ranking],
    )
    order = [name for name, _ in ranking]
    growth = dict(ranking)
    assert order[0] == "SM"
    assert growth["SM"] > 2.5  # superlinear: the attention quadratic
    assert 1.8 <= growth["B"] <= 2.05  # batch is linear
    assert growth["P"] < 1.3  # head size barely moves the metric


def test_scaling_sweep_matmul(benchmark):
    """Sweeping one matmul dimension doubles movement linearly."""
    sdfg = linalg.build_matmul()
    metric = total_movement_bytes(sdfg, unique=True)
    sweep = ParameterSweep({"I": 256, "J": 256, "K": 256})

    result = benchmark(sweep.run, "K", [256, 512, 1024, 2048], metric)
    factors = result.growth_factors()
    print_table(
        "Parametric scaling: matmul movement vs K",
        ["K", "movement [MB]"],
        [[p, f"{v / 1e6:.1f}"] for p, v in result],
    )
    # Movement grows monotonically and sub-2x per doubling (the K-free
    # C-term dilutes the growth factor).
    assert all(1.0 < f <= 2.0 for f in factors)
