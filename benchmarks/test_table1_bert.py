"""Table I (BERT encoder): baseline vs. two rounds of loop fusion.

Paper reference (median of 100 runs):

=====================  ==========  ============  ==========
stage                  Piz Daint   Workstation   Consumer
=====================  ==========  ============  ==========
Baseline               8254 ms     13671 ms      8960 ms
1st set of fusions     2273 (3.6x) 2443 (5.6x)   1427 (6.3x)
2nd set of fusions     1163 (7.1x)  453 (30.2x)   337 (26.6x)
=====================  ==========  ============  ==========

Substitution: the paper benchmarks DaCe-compiled C on three HPC systems;
we benchmark the equivalent NumPy implementations of each stage on this
container (one column).  The *shape* — each fusion round is faster, stage
2 by a large factor — is asserted.  Default sizes are scaled down from
BERT-large; set ``REPRO_PAPER_SIZES=1`` for the paper's sizes.
"""

import numpy as np
import pytest

from repro.apps import bert

from conftest import print_table

PAPER_REFERENCE = {
    "Baseline": 1.0,
    "1st set of loop fusions": 3.6,  # worst-case paper speedup
    "2nd set of loop fusions": 7.1,
}

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def weights(paper_sizes_enabled):
    sizes = bert.PAPER_SIZES if paper_sizes_enabled else bert.ANALYSIS_SIZES
    return bert.initialize(sizes)


@pytest.fixture(scope="module")
def reference_output(weights):
    return bert.encoder_baseline(weights)


VARIANTS = [
    ("Baseline", bert.encoder_baseline),
    ("1st set of loop fusions", bert.encoder_fused_stage1),
    ("2nd set of loop fusions", bert.encoder_fused_stage2),
]


@pytest.mark.parametrize("name,fn", VARIANTS, ids=[n for n, _ in VARIANTS])
def test_table1_bert_stage(benchmark, name, fn, weights, reference_output):
    result = benchmark(fn, weights)
    np.testing.assert_allclose(result, reference_output, rtol=1e-8)
    _RESULTS[name] = benchmark.stats.stats.median
    if len(_RESULTS) == len(VARIANTS):
        # The last stage asserts the whole table's shape.
        _assert_table_shape()


def _assert_table_shape():
    base = _RESULTS["Baseline"]
    rows = []
    for name, _ in VARIANTS:
        measured = _RESULTS[name]
        rows.append(
            [
                name,
                f"{measured * 1e3:.2f} ms",
                f"{base / measured:.1f}x",
                f"{PAPER_REFERENCE[name]:.1f}x (paper, worst system)",
            ]
        )
    print_table(
        "Table I / BERT encoder (our substrate)",
        ["stage", "time", "speedup", "paper speedup"],
        rows,
    )
    s1 = _RESULTS["1st set of loop fusions"]
    s2 = _RESULTS["2nd set of loop fusions"]
    # Shape assertions: each round improves; round 2 is the big one.
    assert s1 <= base * 1.05
    assert s2 < s1
    assert base / s2 >= 2.0
