"""Fig. 1: the tool's main interface — global view with overlays + minimap.

Regenerates the interface content as a standalone SVG/HTML artifact: the
BERT encoder graph with the movement heatmap, the intensity overlay, the
minimap, and the outline — and benchmarks the full render path (the paper
claims interactive, sub-second feedback; the render must be fast).
"""

import xml.etree.ElementTree as ET

from repro.apps import bert
from repro.tool import Session


def test_fig1_interface_render(benchmark, artifacts_dir):
    session = Session(bert.build_sdfg())
    gv = session.global_view()
    env = bert.PAPER_SIZES

    def render() -> str:
        return gv.render(
            env=env,
            edge_overlay="movement",
            node_overlay="intensity",
            show_minimap=True,
        )

    svg = benchmark(render)
    ET.fromstring(svg)  # well-formed
    (artifacts_dir / "fig1_interface.svg").write_text(svg)

    # Interface completeness: outline and minimap models exist.
    outline = gv.outline()
    assert outline.find("main") is not None
    labels = [e.label for e in outline.walk()]
    assert any(label.startswith("map_") for label in labels)

    # Interactivity budget: the paper's point is sub-second feedback.
    assert benchmark.stats.stats.median < 1.0


def test_fig1_report_document(benchmark, artifacts_dir):
    session = Session(bert.build_sdfg())
    gv = session.global_view()
    report = session.report("Fig. 1: main interface")
    report.add_heading("Global view with movement heatmap")
    report.add_svg(gv.render(env=bert.PAPER_SIZES, edge_overlay="movement"))
    html = benchmark(report.render)
    path = artifacts_dir / "fig1_interface.html"
    path.write_text(html)
    assert "<svg" in html
