"""Table I (horizontal diffusion): baseline vs. NPBench-best vs. hand-tuned.

Paper reference (I=J=256, K=160; median of 100 runs):

==========================  ==========  ============  ==========
variant                     Piz Daint   Workstation   Consumer
==========================  ==========  ============  ==========
Baseline                    667.5 ms    449.6 ms      358.4 ms
Best NPBench CPU result      31.7 (21x)  18.4 (24x)    41.3 (8.7x)
Hand-tuned using our tool     4.4 (151x)  3.3 (138x)    7.0 (51x)
==========================  ==========  ============  ==========

Substitution: the paper's optimized variants are DaCe-compiled C; ours are
NumPy realizations of the same optimization stages (preallocated in-place
proxy; K-major + k-outer + padded hand-tuned kernel).  The asserted shape:
hand-tuned < NPBench-best proxy < baseline.  Absolute factors are smaller
because the baseline here is already vectorized NumPy, not interpreted
loops compiled away by DaCe.
"""

import numpy as np
import pytest

from repro.apps import hdiff

from conftest import print_table

PAPER_REFERENCE = {
    "Baseline": 1.0,
    "Best NPBench CPU result": 8.7,  # worst-case paper speedup
    "Hand-tuned using our tool": 51.2,
}

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def data():
    sizes = hdiff.PAPER_SIZES
    in_field, out_field, coeff = hdiff.initialize(**sizes)
    reference = out_field.copy()
    hdiff.hdiff_numpy_baseline(in_field, reference, coeff)
    return in_field, out_field, coeff, reference


def test_table1_hdiff_baseline(benchmark, data):
    in_field, out_field, coeff, reference = data
    out = out_field.copy()
    benchmark(hdiff.hdiff_numpy_baseline, in_field, out, coeff)
    np.testing.assert_allclose(out, reference)
    _RESULTS["Baseline"] = benchmark.stats.stats.median


def test_table1_hdiff_npbench_best(benchmark, data):
    in_field, out_field, coeff, reference = data
    out = out_field.copy()
    benchmark(hdiff.hdiff_npbench_best, in_field, out, coeff)
    np.testing.assert_allclose(out, reference)
    _RESULTS["Best NPBench CPU result"] = benchmark.stats.stats.median


def test_table1_hdiff_hand_tuned(benchmark, data):
    in_field, out_field, coeff, reference = data
    # The tuned program stores its fields K-major (part of the program).
    in_km = hdiff.to_kmajor(in_field)
    coeff_km = hdiff.to_kmajor(coeff)
    out_km = hdiff.to_kmajor(out_field.copy())
    benchmark(hdiff.hdiff_hand_tuned, in_km, out_km, coeff_km)
    np.testing.assert_allclose(hdiff.from_kmajor(out_km), reference)
    _RESULTS["Hand-tuned using our tool"] = benchmark.stats.stats.median
    # This variant runs last: assert the whole table's shape.
    _assert_table_shape()


def _assert_table_shape():
    assert len(_RESULTS) == 3, "variant benchmarks must run in file order"
    base = _RESULTS["Baseline"]
    rows = [
        [
            name,
            f"{t * 1e3:.2f} ms",
            f"{base / t:.1f}x",
            f"{PAPER_REFERENCE[name]:.1f}x (paper, worst system)",
        ]
        for name, t in _RESULTS.items()
    ]
    print_table(
        "Table I / horizontal diffusion (our substrate)",
        ["variant", "time", "speedup", "paper speedup"],
        rows,
    )
    best = _RESULTS["Best NPBench CPU result"]
    tuned = _RESULTS["Hand-tuned using our tool"]
    assert best < base
    assert tuned < best
