"""Load-test harness of the analysis service; writes ``BENCH_serve.json``.

Boots an in-process :class:`~repro.serve.app.AnalysisServer` over the
hdiff case study and measures, over real sockets:

- **cold vs warm latency** of the local view (first evaluation pays the
  pipeline; revalidations and repeats are served from the store);
- **concurrent bursts** of 1, 8 and 32 clients issuing the identical
  request, recording wall time, the coalescing hit rate, and — the
  contract the coalescer exists for — that one burst costs exactly one
  pipeline evaluation;
- **ETag revalidation** latency (304s never touch the pipeline).

Exit code 0 when the service meets its targets (warm p50 ≤ 50 ms, one
evaluation per identical burst), 1 otherwise.  Run with::

    PYTHONPATH=src python benchmarks/serve_bench.py
"""

import http.client
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.hdiff import LOCAL_VIEW_SIZES, hdiff_program  # noqa: E402
from repro.serve.app import AnalysisServer  # noqa: E402
from repro.tool.session import Session  # noqa: E402

WARM_P50_TARGET_SECONDS = 0.050
BURST_SIZES = (1, 8, 32)
WARM_SAMPLES = 30

VIEW_PATH = "/v1/local/view?" + "&".join(
    f"{name}={value}" for name, value in sorted(LOCAL_VIEW_SIZES.items())
) + "&capacity=4"


def fetch(port: int, path: str, headers: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        start = time.perf_counter()
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        body = resp.read()
        elapsed = time.perf_counter() - start
        return resp.status, dict(resp.getheaders()), body, elapsed
    finally:
        conn.close()


def burst(port: int, path: str, clients: int) -> dict:
    """*clients* concurrent identical requests; returns latency stats."""
    results: list[tuple[int, float]] = []
    lock = threading.Lock()
    go = threading.Barrier(clients)

    def client() -> None:
        go.wait(timeout=30)
        status, _, _, elapsed = fetch(port, path)
        with lock:
            results.append((status, elapsed))

    threads = [threading.Thread(target=client) for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    wall = time.perf_counter() - start
    latencies = sorted(elapsed for _, elapsed in results)
    return {
        "clients": clients,
        "ok": sum(1 for status, _ in results if status == 200),
        "wall_seconds": wall,
        "p50_seconds": statistics.median(latencies),
        "max_seconds": latencies[-1],
    }


def counters(port: int) -> dict:
    _, _, body, _ = fetch(port, "/v1/metrics")
    return json.loads(body)["counters"]


def main() -> int:
    session = Session(hdiff_program)
    server = AnalysisServer(session, port=0, workers=2).start_background()
    report: dict = {"program": "hdiff", "view": VIEW_PATH}
    failures: list[str] = []
    try:
        # -- cold request: pays the full pipeline ---------------------------
        status, headers, _, cold = fetch(server.port, VIEW_PATH)
        assert status == 200, f"cold request failed: {status}"
        etag = headers["ETag"]
        report["cold_seconds"] = cold

        # -- warm repeats: served from the content-addressed store ----------
        warm = [fetch(server.port, VIEW_PATH)[3] for _ in range(WARM_SAMPLES)]
        warm.sort()
        report["warm"] = {
            "samples": WARM_SAMPLES,
            "p50_seconds": statistics.median(warm),
            "p95_seconds": warm[int(0.95 * (WARM_SAMPLES - 1))],
            "target_p50_seconds": WARM_P50_TARGET_SECONDS,
        }
        if report["warm"]["p50_seconds"] > WARM_P50_TARGET_SECONDS:
            failures.append(
                f"warm p50 {report['warm']['p50_seconds'] * 1e3:.1f}ms exceeds "
                f"{WARM_P50_TARGET_SECONDS * 1e3:.0f}ms target"
            )

        # -- ETag revalidation: 304 without touching the pipeline -----------
        revalidations = [
            fetch(server.port, VIEW_PATH, {"If-None-Match": etag})
            for _ in range(10)
        ]
        assert all(status == 304 for status, _, _, _ in revalidations)
        report["revalidate_304_p50_seconds"] = statistics.median(
            sorted(elapsed for _, _, _, elapsed in revalidations)
        )

        # -- identical-request bursts on a *fresh* parameter point ----------
        # Each burst uses its own point so the first client of the burst
        # is a genuine cold evaluation that the rest must coalesce onto.
        report["bursts"] = []
        for index, clients in enumerate(BURST_SIZES):
            path = (
                f"/v1/local/view?I=6&J=6&K={index + 2}&capacity=4"
            )
            before = counters(server.port)
            result = burst(server.port, path, clients)
            after = counters(server.port)
            runs = after.get("pass.local.point.runs", 0) - before.get(
                "pass.local.point.runs", 0
            )
            joined = after.get("serve.coalesce.joined", 0) - before.get(
                "serve.coalesce.joined", 0
            )
            led = after.get("serve.coalesce.led", 0) - before.get(
                "serve.coalesce.led", 0
            )
            result.update(
                {
                    "pipeline_runs": runs,
                    "coalesce_led": led,
                    "coalesce_joined": joined,
                    "coalesce_hit_rate": joined / clients if clients else 0.0,
                }
            )
            report["bursts"].append(result)
            if result["ok"] != clients:
                failures.append(
                    f"burst of {clients}: only {result['ok']} succeeded"
                )
            if runs != 1:
                failures.append(
                    f"burst of {clients}: {runs} pipeline evaluations "
                    "(expected exactly 1)"
                )

        report["counters"] = {
            name: value
            for name, value in counters(server.port).items()
            if name.startswith(("serve.", "pass.local.point."))
        }
    finally:
        server.stop()

    report["ok"] = not failures
    report["failures"] = failures
    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"cold local view:        {report['cold_seconds'] * 1e3:8.1f} ms")
    print(
        f"warm local view p50:    {report['warm']['p50_seconds'] * 1e3:8.1f} ms"
        f"  (target {WARM_P50_TARGET_SECONDS * 1e3:.0f} ms)"
    )
    print(
        "etag revalidation p50:  "
        f"{report['revalidate_304_p50_seconds'] * 1e3:8.1f} ms"
    )
    for row in report["bursts"]:
        print(
            f"burst x{row['clients']:<3} wall {row['wall_seconds'] * 1e3:7.1f} ms"
            f"  p50 {row['p50_seconds'] * 1e3:7.1f} ms"
            f"  evaluations {row['pipeline_runs']}"
            f"  coalesce hit rate {row['coalesce_hit_rate']:.2f}"
        )
    print(f"wrote {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve benchmark targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
