"""Fig. 4: multi-dimensional containers and access-pattern visualizations.

- **4a** — the 4-D convolution weight tensor rendered as a hierarchical
  grid: the two innermost dims (K_y × K_x) form 2-D blocks, C_in runs
  horizontally, C_out vertically.
- **4b** — flattened access counts of a convolution mapping 3-channel 9×9
  inputs to 2-channel 6×6 outputs: interior elements are accessed by all
  overlapping windows, borders by fewer.
- **4c** — related accesses: selecting C[3,0], C[3,1], C[3,2] in the
  outer product stacks the counts of A[3] (3 related accesses) and each
  B[j] (1 each).
"""

import xml.etree.ElementTree as ET

from repro.apps import conv, linalg
from repro.simulation import simulate_state
from repro.tool import Session
from repro.viz.containerview import ContainerGrid, render_container

from conftest import print_table


def test_fig4a_weight_tensor_grid(benchmark, artifacts_dir):
    shape = (2, 3, 4, 4)  # C_out, C_in, K_y, K_x

    grid = benchmark(ContainerGrid, shape)
    assert len(grid) == 96
    origin = grid.cell_origin((0, 0, 0, 0))
    # C_in advances horizontally, C_out vertically (alternating nesting).
    assert grid.cell_origin((0, 1, 0, 0))[0] > origin[0]
    assert grid.cell_origin((0, 1, 0, 0))[1] == origin[1]
    assert grid.cell_origin((1, 0, 0, 0))[1] > origin[1]
    assert grid.cell_origin((1, 0, 0, 0))[0] == origin[0]

    svg = render_container("w", shape)
    ET.fromstring(svg)
    (artifacts_dir / "fig4a_weights.svg").write_text(svg)


def test_fig4b_conv_access_distribution(benchmark, artifacts_dir):
    sdfg = conv.build_conv()

    result = benchmark(simulate_state, sdfg, conv.FIG4_SIZES)
    counts = result.access_counts("inp")

    cout = conv.FIG4_SIZES["Cout"]
    corner = counts[(0, 0, 0)]
    interior = counts[(0, 4, 4)]
    assert corner == cout  # one window per output channel
    assert interior == 16 * cout  # 4x4 windows overlap fully

    # The distribution is symmetric and saturates in the interior.
    assert counts[(0, 0, 8)] == corner
    assert counts[(0, 8, 8)] == corner
    assert counts[(1, 4, 4)] == interior

    rows = [["corner (0,0)", corner], ["edge (0,4)", counts[(0, 0, 4)]],
            ["interior (4,4)", interior]]
    print_table("Fig. 4b: input accesses by position", ["position", "count"], rows)

    svg = render_container("inp", result.shape("inp"), values=dict(counts))
    ET.fromstring(svg)
    (artifacts_dir / "fig4b_conv_accesses.svg").write_text(svg)


def test_fig4c_related_accesses(benchmark, artifacts_dir):
    session = Session(linalg.build_outer_product())
    lv = session.local_view({"M": 4, "N": 4})
    selections = [("C", (3, 0)), ("C", (3, 1)), ("C", (3, 2))]

    counts = benchmark(lv.related, selections)

    # A[3] participates in all three selected computations; each B[j] once.
    assert counts[("A", (3,))] == 3
    assert counts[("B", (0,))] == 1
    assert counts[("B", (1,))] == 1
    assert counts[("B", (2,))] == 1
    assert ("B", (3,)) not in counts
    assert ("A", (0,)) not in counts

    a_counts = {k[1]: v for k, v in counts.items() if k[0] == "A"}
    svg = render_container("A", (4,), values=a_counts,
                           value_label="related accesses")
    ET.fromstring(svg)
    (artifacts_dir / "fig4c_related.svg").write_text(svg)
