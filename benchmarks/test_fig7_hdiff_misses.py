"""Fig. 7: hdiff cache misses and physical movement through the tuning.

Four local-view snapshots at the 1/32-scale parameterization (I=J=8, K=5,
64-byte lines, 8-byte values): baseline layout, after the K-major reshape,
after the loop reorder, and after row padding.  The paper's observations,
asserted here:

- the reshape "almost halves the amount of data being requested from main
  memory for in_field";
- each subsequent step further reduces (never increases) both the miss
  count and the moved bytes.
"""

from repro.apps import hdiff
from repro.tool import Session

from conftest import print_table

ENV = hdiff.LOCAL_VIEW_SIZES
CACHE = hdiff.FIG7_CACHE


def _stages():
    base = hdiff.build_sdfg()
    reshaped = hdiff.build_sdfg()
    hdiff.apply_reshape(reshaped)
    reordered = hdiff.build_sdfg()
    hdiff.apply_reshape(reordered)
    hdiff.apply_reorder(reordered)
    padded = hdiff.build_sdfg()
    hdiff.apply_reshape(padded)
    hdiff.apply_reorder(padded)
    hdiff.apply_padding(padded)
    return [
        ("baseline", base),
        ("reshaped [K, I+4, J+4]", reshaped),
        ("+ k outermost", reordered),
        ("+ padded rows", padded),
    ]


def test_fig7_tuning_trajectory(benchmark, artifacts_dir):
    def measure_all():
        out = []
        for label, sdfg in _stages():
            lv = Session(sdfg).local_view(ENV, **CACHE)
            misses = lv.miss_counts()["in_field"]
            moved = lv.physical_movement()["in_field"]
            out.append((label, misses.cold, misses.capacity, moved))
        return out

    rows = benchmark(measure_all)
    print_table(
        "Fig. 7: in_field miss estimate per tuning stage",
        ["stage", "cold", "capacity", "moved bytes"],
        rows,
    )

    moved_series = [moved for _, _, _, moved in rows]
    baseline, reshaped, reordered, padded = moved_series
    # "almost halves":
    assert reshaped <= 0.55 * baseline
    # monotone improvement through the remaining steps:
    assert reordered <= reshaped
    assert padded <= reordered

    # Save the miss heatmap of each stage's in_field.
    for label, sdfg in _stages():
        lv = Session(sdfg).local_view(ENV, **CACHE)
        svg = lv.render_container(
            "in_field", values=lv.miss_heatmap("in_field"), value_label="misses"
        )
        safe = label.replace(" ", "_").replace("[", "").replace("]", "").replace("+", "p").replace(",", "")
        (artifacts_dir / f"fig7_{safe}.svg").write_text(svg)


def test_fig7_simulation_speed(benchmark):
    """The paper's interactivity claim: the small-scale simulation plus
    miss estimation completes in a fraction of a second."""
    sdfg = hdiff.build_sdfg()

    def simulate_and_estimate():
        lv = Session(sdfg).local_view(ENV, **CACHE)
        return lv.physical_movement()

    moved = benchmark(simulate_and_estimate)
    assert moved["in_field"] > 0
    assert benchmark.stats.stats.median < 1.0
