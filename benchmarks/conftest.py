"""Shared fixtures for the paper-reproduction benchmarks.

Every module regenerates one table or figure of the paper.  Artifacts
(SVGs, HTML tables) are written to ``benchmarks/artifacts/``; rows are
printed with the paper's reference values next to our measurements so the
*shape* (who wins, by roughly what factor) can be compared directly.

Set ``REPRO_PAPER_SIZES=1`` to run the BERT benchmark at the full
BERT-large sizes instead of the scaled-down defaults (slow on small
machines).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture(scope="session")
def paper_sizes_enabled() -> bool:
    return os.environ.get("REPRO_PAPER_SIZES", "0") == "1"


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a benchmark table in the same layout as the paper's."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
