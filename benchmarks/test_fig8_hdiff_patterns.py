"""Fig. 8: hdiff access patterns during the individual tuning steps.

- **8a** — one loop iteration's accesses on ``in_field`` spread across
  many cache lines in the baseline layout; the K-major reshape brings
  them close together (fewer distinct lines per iteration).
- **8b** — after the reshape, stepping the *innermost* loop jumps across
  non-contiguous memory; reordering k outermost makes consecutive
  innermost iterations touch adjacent addresses.
- **8c** — rows wrap across cache-line boundaries; padding the row stride
  to the line size makes every row start line-aligned and stops lines
  from straddling rows.
"""

from repro.apps import hdiff
from repro.tool import Session

from conftest import print_table

ENV = hdiff.LOCAL_VIEW_SIZES
LINE = 64


def _iteration_lines(sdfg, point: dict[str, int]) -> int:
    """Distinct in_field cache lines touched by one loop iteration."""
    lv = Session(sdfg).local_view(ENV, line_size=LINE)
    sliders = lv.sliders()
    for name, value in point.items():
        sliders.set(name, value)
    touched = sliders.highlighted_elements()["in_field"]
    memory = lv.memory
    return len({memory.line_of("in_field", idx) for idx in touched})


def test_fig8a_reshape_improves_iteration_spread(benchmark, artifacts_dir):
    point = {"i": 2, "j": 2, "k": 1}
    base = hdiff.build_sdfg()
    reshaped = hdiff.build_sdfg()
    hdiff.apply_reshape(reshaped)

    lines_before = benchmark(_iteration_lines, base, point)
    lines_after = _iteration_lines(reshaped, point)
    print_table(
        "Fig. 8a: cache lines touched by one iteration on in_field",
        ["layout", "distinct lines"],
        [["[I+4, J+4, K]", lines_before], ["[K, I+4, J+4]", lines_after]],
    )
    assert lines_after < lines_before

    # Artifact: the highlighted access footprint before/after.
    for label, sdfg in (("before", base), ("after", reshaped)):
        lv = Session(sdfg).local_view(ENV, line_size=LINE)
        sliders = lv.sliders()
        for name, value in point.items():
            sliders.set(name, value)
        marks = sliders.highlighted_elements()["in_field"]
        svg = lv.render_container("in_field", highlights=marks)
        (artifacts_dir / f"fig8a_{label}.svg").write_text(svg)


def test_fig8b_reorder_fixes_innermost_stride(benchmark):
    """Innermost-loop address deltas before/after the loop reorder."""
    reshaped = hdiff.build_sdfg()
    hdiff.apply_reshape(reshaped)
    reordered = hdiff.build_sdfg()
    hdiff.apply_reshape(reordered)
    hdiff.apply_reorder(reordered)

    def innermost_delta(sdfg) -> int:
        """Byte distance of the center access between two consecutive
        innermost-loop iterations."""
        lv = Session(sdfg).local_view(ENV, line_size=LINE)
        entry = sdfg.start_state.map_entries()[0]
        innermost = entry.map.params[-1]
        sliders = lv.sliders()
        memory = lv.memory

        def center_address() -> int:
            values = sliders.values()
            # The stencil center in_field[i+2, j+2, k] in the K-major
            # layout is in_field[k, i+2, j+2].
            i, j, k = values["i"], values["j"], values["k"]
            return memory.address_of("in_field", (k, i + 2, j + 2))

        sliders.set(innermost, 0)
        first = center_address()
        sliders.set(innermost, 1)
        second = center_address()
        return abs(second - first)

    delta_before = benchmark(innermost_delta, reshaped)
    delta_after = innermost_delta(reordered)
    plane_bytes = (ENV["I"] + 4) * (ENV["J"] + 4) * 8
    print_table(
        "Fig. 8b: innermost-loop center stride on in_field",
        ["order", "stride [bytes]"],
        [["i, j, k (k innermost)", delta_before], ["k, i, j (j innermost)", delta_after]],
    )
    # Before: k innermost jumps a whole (I+4)x(J+4) plane per step.
    assert delta_before == plane_bytes
    # After: j innermost steps one element (8 bytes) — same cache line.
    assert delta_after == 8


def test_fig8c_padding_aligns_rows(benchmark):
    """Row starts become line-aligned; no line straddles two rows."""
    reordered = hdiff.build_sdfg()
    hdiff.apply_reshape(reordered)
    hdiff.apply_reorder(reordered)
    padded = hdiff.build_sdfg()
    hdiff.apply_reshape(padded)
    hdiff.apply_reorder(padded)
    hdiff.apply_padding(padded, line_bytes=LINE)

    def straddling_lines(sdfg) -> int:
        lv = Session(sdfg).local_view(ENV, line_size=LINE)
        layout = lv.memory.layout("in_field")
        lines_per_row: dict[int, set[tuple[int, int]]] = {}
        for idx in layout.iter_elements():
            line = layout.cache_line_of(idx, LINE)
            lines_per_row.setdefault(line, set()).add((idx[0], idx[1]))
        # A straddling line holds elements of more than one (k, i) row.
        return sum(1 for rows in lines_per_row.values() if len(rows) > 1)

    before = benchmark(straddling_lines, reordered)
    after = straddling_lines(padded)
    print_table(
        "Fig. 8c: in_field cache lines straddling rows",
        ["layout", "straddling lines"],
        [["unpadded", before], ["padded", after]],
    )
    assert before > 0
    assert after == 0

    # And every row start is line-aligned after padding.
    lv = Session(padded).local_view(ENV, line_size=LINE)
    layout = lv.memory.layout("in_field")
    for k in range(ENV["K"]):
        for i in range(ENV["I"] + 4):
            assert layout.element_address((k, i, 0)) % LINE == 0
