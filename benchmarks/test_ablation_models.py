"""Ablations of the paper's modeling choices.

1. **Fully-associative assumption** (Section V-F): conflict misses are not
   counted, citing McKinley & Temam / Beyls & D'Hollander that capacity
   dominates.  We quantify it: on the case-study traces, the threshold
   model's miss count is compared against exact set-associative caches of
   the same capacity — the conflict share must be a small fraction.
2. **Olken/Fenwick stack distances**: the O(N log N) algorithm against the
   textbook O(N²) definition — the design choice that keeps the local
   view interactive.
3. **Green-yellow-red color scale** (Section IV-C): the inserted yellow
   mid-stop must yield more distinguishable colors on clustered
   mid-range distributions than the plain green-red ramp.
"""

import numpy as np

from repro.apps import hdiff, linalg
from repro.simulation import count_three_way, simulate_lru
from repro.simulation.stackdist import (
    line_trace,
    stack_distances,
    stack_distances_bruteforce,
)
from repro.tool import Session
from repro.viz.color import GREEN_RED, GREEN_YELLOW_RED
from repro.viz.heatmap import Heatmap

from conftest import print_table


def _case_study_lines():
    """Interleaved cache-line traces of the two case-study kernels."""
    traces = {}
    session = Session(hdiff.build_sdfg())
    lv = session.local_view(hdiff.LOCAL_VIEW_SIZES, line_size=64)
    traces["hdiff (1/32 scale)"] = line_trace(lv.result.events, lv.memory)
    session = Session(linalg.build_fig5_matmul())
    lv = session.local_view({"I": 9, "K": 10, "J": 15}, line_size=64)
    traces["matmul 9x10x15"] = line_trace(lv.result.events, lv.memory)
    return traces


def test_ablation_full_associativity(benchmark):
    """When is the fully-associative assumption safe?

    The paper (Section V-F, citing McKinley & Temam and Beyls &
    D'Hollander) assumes conflicts are a minority.  The sweep below shows
    the regime-dependence on the hdiff stencil trace: with a *starved*
    cache and low associativity the regular stencil strides conflict
    heavily, but as soon as capacity/associativity reach realistic values
    the conflict share collapses to zero and the fully-associative
    estimate becomes exact — the regime the paper's threshold model (and
    its user-adjustable threshold) targets.
    """
    traces = _case_study_lines()
    lines = traces["hdiff (1/32 scale)"]
    configs = [(8, 2), (16, 2), (16, 4), (32, 4)]

    def classify_all():
        return {cfg: count_three_way(lines, *cfg) for cfg in configs}

    results = benchmark(classify_all)
    rows = []
    shares = []
    for (sets, ways), counts in results.items():
        capacity_lines = sets * ways
        fa_misses = sum(simulate_lru(lines, capacity_lines))
        share = counts.conflict / counts.misses if counts.misses else 0.0
        shares.append(share)
        rows.append([
            f"{sets} sets x {ways} ways", counts.cold, counts.capacity,
            counts.conflict, f"{share:.1%}", fa_misses,
        ])
    print_table(
        "Ablation: conflict share vs cache configuration (hdiff trace)",
        ["configuration", "cold", "capacity", "conflict", "conflict share",
         "FA-model misses"],
        rows,
    )
    # The share decreases monotonically along the sweep and reaches zero —
    # at which point the fully-associative model is exact.
    assert all(a >= b - 1e-12 for a, b in zip(shares, shares[1:]))
    assert shares[-1] == 0.0
    last_counts = results[configs[-1]]
    assert last_counts.misses == sum(simulate_lru(lines, configs[-1][0] * configs[-1][1]))

    # The matmul trace conflicts barely at all even when small.
    mm = count_three_way(traces["matmul 9x10x15"], 4, 4)
    assert mm.conflict <= 0.05 * len(traces["matmul 9x10x15"])


def test_ablation_stackdist_algorithms(benchmark):
    """Fenwick-tree stack distances match brute force and scale better."""
    rng = np.random.default_rng(11)
    lines = list(rng.integers(0, 64, size=4000))

    fast = benchmark(stack_distances, lines)

    import time

    t0 = time.perf_counter()
    slow = stack_distances_bruteforce(lines)
    brute_time = time.perf_counter() - t0
    assert fast == slow
    fast_time = benchmark.stats.stats.median
    print_table(
        "Ablation: stack-distance algorithms (4000-access trace)",
        ["algorithm", "time [ms]"],
        [["Olken/Fenwick (O(N log N))", f"{fast_time * 1e3:.2f}"],
         ["brute force (O(N^2))", f"{brute_time * 1e3:.2f}"]],
    )
    assert fast_time < brute_time


def test_ablation_color_scale_separation(benchmark):
    """The yellow mid-stop separates clustered mid-range values."""
    # Values clustered around the middle of the scale.
    values = {i: 40.0 + i for i in range(20)}

    def perceptual_spread(scale):
        hm = Heatmap(values, method="linear", colors=scale)
        colors = [hm.color(k) for k in sorted(values)]
        # Sum of channel-space distances between consecutive colors: how
        # much visual change the ramp spends on this value range.
        total = 0.0
        for a, b in zip(colors, colors[1:]):
            total += abs(a.r - b.r) + abs(a.g - b.g) + abs(a.b - b.b)
        return total

    def measure():
        return perceptual_spread(GREEN_YELLOW_RED), perceptual_spread(GREEN_RED)

    gyr, gr = benchmark(measure)
    print_table(
        "Ablation: color-ramp spread over clustered mid-range values",
        ["scale", "channel-space spread"],
        [["green-yellow-red", f"{gyr:.0f}"], ["green-red", f"{gr:.0f}"]],
    )
    assert gyr > gr
