"""Fig. 5: physical layouts, reuse distances and estimated misses.

- **5a** — matmul with ``A ∈ R^{9×10}``, ``B ∈ R^{10×15}`` (column-major),
  4-byte values, 64-byte lines: selecting elements reveals A and C as
  row-major and B as column-major via the line overlay.
- **5b** — median reuse-distance heatmap on the inputs (32-byte lines);
  selecting A[3,6] plots a histogram listing exactly one cold miss.
- **5c** — estimated cache misses and physical movement for the
  convolution's input/weight tensors (64-byte lines, 8-byte values).
"""

import math
import xml.etree.ElementTree as ET

from repro.apps import conv, linalg
from repro.tool import Session

from conftest import print_table

MATMUL_SIZES = {"I": 9, "K": 10, "J": 15}


def test_fig5a_layout_overlay(benchmark, artifacts_dir):
    session = Session(linalg.build_fig5_matmul())
    lv = session.local_view(MATMUL_SIZES, line_size=64)

    def query_overlay():
        return {
            "A": lv.cache_line_neighbors("A", (0, 0)),
            "B": lv.cache_line_neighbors("B", (0, 1)),
            "C": lv.cache_line_neighbors("C", (8, 14)),
        }

    neighbors = benchmark(query_overlay)
    # A row-major: A[0,0]'s line covers its whole row (and wraps onward).
    assert [i for i in neighbors["A"] if i[0] == 0] == [(0, c) for c in range(10)]
    # B column-major: B[0,1]'s line covers all of column 0 and wraps into
    # column 1 — grouping runs down columns.
    assert [i for i in neighbors["B"] if i[1] == 0] == [(r, 0) for r in range(10)]
    # C row-major: the last element's line holds trailing row-14 elements.
    assert all(i[0] == 8 for i in neighbors["C"])

    for name, marks in neighbors.items():
        svg = lv.render_container(name, highlights=marks)
        ET.fromstring(svg)
        (artifacts_dir / f"fig5a_{name}.svg").write_text(svg)


def test_fig5b_reuse_distances(benchmark, artifacts_dir):
    session = Session(linalg.build_fig5_matmul())
    lv = session.local_view(MATMUL_SIZES, line_size=32)

    heat = benchmark(lv.reuse_heatmap, "A", "median")
    assert heat  # the matmul re-reads every A element J times

    all_distances = lv.reuse_distances("A")

    # The paper's selected element shows exactly one cold miss.  At line
    # granularity a cold miss belongs to the *first element touching the
    # line*; with 40-byte rows and the i-j-k playback order that is the
    # line's lowest-k element, so we assert the invariant on A[0,0] (the
    # first access of the whole trace) and the general per-element rule:
    # every element has at most one cold access, and every cache line of A
    # contributes exactly one cold access in total.
    first = all_distances[("A", (0, 0))]
    assert sum(1 for d in first if math.isinf(d)) == 1

    per_element_cold = {
        key[1]: sum(1 for d in ds if math.isinf(d))
        for key, ds in all_distances.items()
    }
    assert all(c <= 1 for c in per_element_cold.values())
    total_cold = sum(per_element_cold.values())
    layout = lv.memory.layout("A")
    lines_of_a = {
        layout.cache_line_of(idx, 32) for idx in layout.iter_elements()
    }
    # A shares boundary lines with neighboring containers, so the trace's
    # cold misses attributed to A cover at most one per line it spans.
    assert 1 <= total_cold <= len(lines_of_a)

    # A[3,6] itself: read once per j, distances finite after first touch.
    distances = all_distances[("A", (3, 6))]
    assert len(distances) == MATMUL_SIZES["J"]
    cold = sum(1 for d in distances if math.isinf(d))

    print_table(
        "Fig. 5b: A[3,6] stack distances",
        ["accesses", "cold", "min finite", "max finite"],
        [[
            len(distances), cold,
            min(d for d in distances if not math.isinf(d)),
            max(d for d in distances if not math.isinf(d)),
        ]],
    )

    svg = lv.render_container("A", values=heat, selections=[(3, 6)],
                              value_label="median reuse distance")
    ET.fromstring(svg)
    (artifacts_dir / "fig5b_reuse_heatmap.svg").write_text(svg)
    hist = lv.render_reuse_histogram("A", (3, 6))
    ET.fromstring(hist)
    (artifacts_dir / "fig5b_histogram.svg").write_text(hist)


def test_fig5c_conv_misses_and_movement(benchmark, artifacts_dir):
    session = Session(conv.build_conv())
    lv = session.local_view(conv.FIG4_SIZES, line_size=64, capacity_lines=8)

    def estimate():
        return lv.miss_counts(), lv.physical_movement(), lv.edge_movement()

    misses, moved, edge_moved = benchmark(estimate)

    rows = []
    for name in ("inp", "w", "out"):
        rows.append([
            name, misses[name].cold, misses[name].capacity, moved[name],
        ])
    print_table(
        "Fig. 5c: conv miss estimate (64B lines, 8B values, 8-line cache)",
        ["tensor", "cold", "capacity", "moved bytes"],
        rows,
    )

    # Every tensor's first line touch is a cold miss; physical movement is
    # misses x line size; edges carry consistent non-negative estimates.
    for name in ("inp", "w", "out"):
        assert misses[name].cold >= 1
        assert moved[name] == misses[name].misses * 64
    assert all(v >= 0 for v in edge_moved.values())

    # Bounds: at most one line fetch per access; under the tiny 8-line
    # cache, thrashing makes physical movement *exceed* the logical byte
    # volume (each miss fetches a full 64-byte line for one 8-byte use) —
    # exactly the effect the local view is built to expose.
    for name in ("inp", "w"):
        accesses = lv.result.total_accesses(name)
        assert moved[name] <= accesses * 64
        assert moved[name] > accesses * 8  # thrashing regime

    svg = lv.render_container("inp", values=lv.miss_heatmap("inp"),
                              value_label="misses")
    ET.fromstring(svg)
    (artifacts_dir / "fig5c_inp_misses.svg").write_text(svg)
