"""CI check: a second run over a shared ``--cache-dir`` is served from disk.

Runs the ``repro-view`` CLI twice on the same program with the same
persistent cache directory — two separate processes, like two CI steps
or two developer sessions — and asserts the storage-layer contract:

- the warm run's disk hit ratio is at least ``MIN_HIT_RATIO`` (nothing
  silently fell out of the cache or failed to persist);
- the warm run is faster than the cold run (the cache pays for itself);
- nothing was quarantined and the cache never degraded.

Exit code 0 on success; prints the numbers either way.  Run with::

    PYTHONPATH=src python benchmarks/check_warm_cache.py
"""

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

MIN_HIT_RATIO = 0.9

PROGRAM = """\
import repro
from repro.sdfg.dtypes import float64
from repro.symbolic import symbols

I, J, K = symbols("I J K")


@repro.program
def stencil(A: float64[I, J, K], B: float64[I, J, K]):
    for i, j, k in repro.pmap(I, J, K):
        B[i, j, k] = A[i, j, k] + 1.0
"""

ARGS = [
    "--params", "I=256,J=256,K=64",
    "--local", "I=64,J=64,K=24",
    "--sweep", "K=8,16,24,32",
]


def run_once(label: str, module: Path, cache: Path, out_dir: Path) -> dict:
    metrics_path = out_dir / f"{label}-metrics.json"
    start = time.perf_counter()
    subprocess.run(
        [
            sys.executable, "-m", "repro.tool.cli", str(module),
            *ARGS,
            "--cache-dir", str(cache),
            "--metrics-out", str(metrics_path),
            "-o", str(out_dir / f"{label}-report.html"),
        ],
        check=True,
    )
    seconds = time.perf_counter() - start
    counters = json.loads(metrics_path.read_text())["counters"]
    return {"seconds": seconds, "counters": counters}


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp)
        module = out_dir / "program.py"
        module.write_text(PROGRAM)
        cache = out_dir / "cache"

        cold = run_once("cold", module, cache, out_dir)
        warm = run_once("warm", module, cache, out_dir)

    failures = []
    for label, run in (("cold", cold), ("warm", warm)):
        counters = run["counters"]
        print(
            f"{label}: {run['seconds']:.2f}s, "
            f"hits={counters.get('disk.hits', 0)}, "
            f"misses={counters.get('disk.misses', 0)}, "
            f"writes={counters.get('disk.writes', 0)}, "
            f"corrupt={counters.get('disk.corrupt', 0)}, "
            f"degraded={counters.get('disk.degraded', 0)}"
        )
        if counters.get("disk.corrupt", 0):
            failures.append(f"{label} run quarantined entries")
        if counters.get("disk.degraded", 0):
            failures.append(f"{label} run degraded to memory-only")

    hits = warm["counters"].get("disk.hits", 0)
    misses = warm["counters"].get("disk.misses", 0)
    ratio = hits / (hits + misses) if hits + misses else 0.0
    print(f"warm disk hit ratio: {ratio:.2f} (minimum {MIN_HIT_RATIO})")
    if ratio < MIN_HIT_RATIO:
        failures.append(
            f"warm hit ratio {ratio:.2f} below {MIN_HIT_RATIO}"
        )
    if not warm["counters"].get("disk.hits", 0):
        failures.append("warm run hit the disk cache zero times")
    speedup = cold["seconds"] / warm["seconds"] if warm["seconds"] else 0.0
    print(f"cold/warm speedup: {speedup:.2f}x")
    if warm["seconds"] >= cold["seconds"]:
        failures.append(
            f"warm run ({warm['seconds']:.2f}s) not faster than "
            f"cold ({cold['seconds']:.2f}s)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: warm run served from the persistent cache")
    return 0


if __name__ == "__main__":
    sys.exit(main())
