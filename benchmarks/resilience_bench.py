"""Chaos benchmark of the resilience layer; writes ``BENCH_resilience.json``.

Injects deterministic faults (via :mod:`repro.resilience.chaos`) into a
live in-process service and measures the four operational guarantees the
resilience layer makes:

- **Load shedding is fast**: with an endpoint saturated, excess requests
  get their 429 + ``Retry-After`` at p50 < 10 ms — shed latency must
  stay flat exactly when the server is busiest.
- **Pool death degrades, never breaks**: with every worker SIGKILLed on
  entry, sweeps fall back to serial evaluation behind the pool circuit
  breaker; ≥ 99% of points still complete.
- **Disk faults degrade, never break**: with every cache read/write
  failing (EIO), interactive requests keep answering 200 while the disk
  breaker opens; ≥ 99% availability, transitions visible in
  ``/v1/metrics``.
- **Drain completes in-flight streams**: a sweep stream opened before
  drain begins runs to its normal ``end`` event; the drain then reports
  a clean (non-forced) completion.

Exit code 0 when every target is met, 1 otherwise.  Run with::

    PYTHONPATH=src python benchmarks/resilience_bench.py
"""

import http.client
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.hdiff import hdiff_program  # noqa: E402
from repro.resilience import chaos as chaos_mod  # noqa: E402
from repro.serve.app import AnalysisServer  # noqa: E402
from repro.tool.session import Session  # noqa: E402

SHED_P50_TARGET_SECONDS = 0.010
AVAILABILITY_TARGET = 0.99
SHED_SAMPLES = 40
DISK_SAMPLES = 30


def fetch(port: int, path: str, headers: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        start = time.perf_counter()
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        body = resp.read()
        return resp.status, dict(resp.getheaders()), body, time.perf_counter() - start
    finally:
        conn.close()


def post_stream(port: int, path: str, payload: dict):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            "POST", path, body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        body = resp.read()
        return resp.status, [
            json.loads(line) for line in body.decode("utf-8").splitlines() if line
        ]
    finally:
        conn.close()


def wait_for(predicate, timeout=10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def breaker_states(snapshot: dict) -> list[str]:
    return [t["state"] for t in snapshot.get("transitions", [])]


# -- scenario 1: shed latency under saturation --------------------------------


def scenario_shed(failures: list[str]) -> dict:
    server = AnalysisServer(
        Session(hdiff_program), port=0,
        admission_limits={"/v1/local/view": (1, 0)},
    ).start_background()
    try:
        chaos_mod.install("eval.slow:kind=sleep:delay=2")

        def hold() -> None:
            try:
                fetch(server.port, "/v1/local/view?I=11&J=11&K=3")
            except Exception:  # noqa: BLE001 - holder outcome is irrelevant
                pass

        holder = threading.Thread(target=hold, daemon=True)
        holder.start()
        assert wait_for(
            lambda: server.admission.snapshot()["/v1/local/view"]["active"] == 1
        ), "holder request never admitted"

        latencies, statuses, retry_after_ok = [], [], True
        for i in range(SHED_SAMPLES):
            status, headers, _, elapsed = fetch(
                server.port, f"/v1/local/view?I={12 + i}&J=4&K=2"
            )
            statuses.append(status)
            latencies.append(elapsed)
            retry_after_ok &= int(headers.get("Retry-After", 0)) >= 1
        latencies.sort()
        shed = {
            "samples": SHED_SAMPLES,
            "all_429": all(s == 429 for s in statuses),
            "retry_after_present": retry_after_ok,
            "p50_seconds": statistics.median(latencies),
            "p95_seconds": latencies[int(0.95 * (SHED_SAMPLES - 1))],
            "target_p50_seconds": SHED_P50_TARGET_SECONDS,
        }
        if not shed["all_429"]:
            failures.append("shed: not every excess request got a 429")
        if not retry_after_ok:
            failures.append("shed: missing/invalid Retry-After header")
        if shed["p50_seconds"] > SHED_P50_TARGET_SECONDS:
            failures.append(
                f"shed p50 {shed['p50_seconds'] * 1e3:.2f}ms exceeds "
                f"{SHED_P50_TARGET_SECONDS * 1e3:.0f}ms target"
            )
        holder.join(timeout=30)  # let the held slot finish before stopping
        return shed
    finally:
        chaos_mod.install(None)
        server.stop()


# -- scenario 2: pool death degrades to serial --------------------------------


def scenario_pool_death(failures: list[str]) -> dict:
    session = Session(hdiff_program)
    chaos_mod.install("worker.kill:kind=kill")
    try:
        # worker.kill reaches pool workers through the environment under
        # fork; install() covers them too, but set the env for spawn.
        import os

        os.environ["REPRO_CHAOS"] = "worker.kill:kind=kill"
        chaos_mod.uninstall()
        total = completed = 0
        sweeps = []
        for round_index in range(3):
            grid = {"I": [4 + round_index, 8], "J": [4, 8], "K": [2, 3]}
            start = time.perf_counter()
            # retries must cover the worst case of the same point being
            # in flight across every doomed pool generation, so that the
            # serial fallback still owns every unfinished point.
            run = session.sweep(
                grid, workers=2, adaptive=False, on_error="record", retries=4
            )
            sweeps.append(
                {
                    "points": len(run),
                    "completed": run.completed,
                    "seconds": time.perf_counter() - start,
                }
            )
            total += len(run)
            completed += run.completed
        del os.environ["REPRO_CHAOS"]
        chaos_mod.install(None)
        counters = session.metrics.to_dict()["counters"]
        result = {
            "points": total,
            "completed": completed,
            "availability": completed / total if total else 0.0,
            "target_availability": AVAILABILITY_TARGET,
            "serial_fallbacks": counters.get("sweep.serial_fallbacks", 0),
            "breaker_skips": counters.get("sweep.breaker.skipped_pool", 0),
            "pool_breaker_transitions": breaker_states(
                session.pool_breaker.snapshot()
            ),
            "sweeps": sweeps,
        }
        if result["availability"] < AVAILABILITY_TARGET:
            failures.append(
                f"pool death: availability {result['availability']:.3f} "
                f"below {AVAILABILITY_TARGET}"
            )
        if "open" not in result["pool_breaker_transitions"]:
            failures.append("pool death: breaker never opened")
        if result["serial_fallbacks"] < 1:
            failures.append("pool death: no serial fallback recorded")
        return result
    finally:
        chaos_mod.install(None)


# -- scenario 3: disk faults degrade to memory-only ---------------------------


def scenario_disk_faults(failures: list[str], cache_dir: Path) -> dict:
    server = AnalysisServer(
        Session(hdiff_program, cache_dir=cache_dir), port=0
    ).start_background()
    try:
        chaos_mod.install("disk.read;disk.write")
        ok = 0
        latencies = []
        for i in range(DISK_SAMPLES):
            status, _, _, elapsed = fetch(
                server.port, f"/v1/local/view?I={4 + i}&J=5&K=2"
            )
            ok += status == 200
            latencies.append(elapsed)
        status, _, body, _ = fetch(server.port, "/v1/metrics")
        assert status == 200
        metrics = json.loads(body)
        disk_breaker = metrics["resilience"]["breakers"]["disk"]
        result = {
            "requests": DISK_SAMPLES,
            "ok": ok,
            "availability": ok / DISK_SAMPLES,
            "target_availability": AVAILABILITY_TARGET,
            "p50_seconds": statistics.median(sorted(latencies)),
            "disk_breaker_state": disk_breaker["state"],
            "disk_breaker_transitions": breaker_states(disk_breaker),
            "io_errors": metrics["counters"].get("disk.io_errors", 0),
            "breaker_skips": metrics["counters"].get("disk.breaker_skips", 0),
            "chaos_sites": metrics["resilience"].get("chaos"),
        }
        if result["availability"] < AVAILABILITY_TARGET:
            failures.append(
                f"disk faults: availability {result['availability']:.3f} "
                f"below {AVAILABILITY_TARGET}"
            )
        if "open" not in result["disk_breaker_transitions"]:
            failures.append(
                "disk faults: breaker never opened (transitions not visible)"
            )
        return result
    finally:
        chaos_mod.install(None)
        server.stop()


# -- scenario 4: drain completes in-flight streams ----------------------------


def scenario_drain(failures: list[str]) -> dict:
    server = AnalysisServer(Session(hdiff_program), port=0).start_background()
    try:
        chaos_mod.install("eval.slow:kind=sleep:delay=0.05")
        stream_result: dict = {}

        def stream() -> None:
            stream_result["status"], stream_result["events"] = post_stream(
                server.port, "/v1/sweep",
                {"grid": {"I": [4, 5, 6, 7], "J": [4, 5], "K": [2]}},
            )

        client = threading.Thread(target=stream, daemon=True)
        client.start()
        assert wait_for(lambda: server.drain.inflight == 1), "stream never started"
        drain_begun = time.perf_counter()
        server.begin_drain()
        shed_status = fetch(server.port, "/v1/local/view?I=4&J=4&K=2")[0]
        client.join(timeout=60)
        clean = server.drain.wait_idle(timeout=10)
        drain_seconds = time.perf_counter() - drain_begun
        events = stream_result.get("events", [])
        result = {
            "stream_completed": bool(events) and events[-1].get("event") == "end",
            "stream_points": events[-1].get("points") if events else None,
            "new_work_status_during_drain": shed_status,
            "drain_clean": clean,
            "drain_seconds": drain_seconds,
        }
        if not result["stream_completed"]:
            failures.append("drain: in-flight stream did not reach its end event")
        if shed_status != 503:
            failures.append(
                f"drain: new work got {shed_status}, expected 503"
            )
        if not clean:
            failures.append("drain: in-flight work did not finish (forced)")
        return result
    finally:
        chaos_mod.install(None)
        server.stop()


def main() -> int:
    failures: list[str] = []
    report: dict = {"program": "hdiff"}
    report["shed"] = scenario_shed(failures)
    report["pool_death"] = scenario_pool_death(failures)
    with tempfile.TemporaryDirectory(prefix="repro-resilience-") as tmp:
        report["disk_faults"] = scenario_disk_faults(failures, Path(tmp))
    report["drain"] = scenario_drain(failures)
    report["ok"] = not failures
    report["failures"] = failures

    out = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    shed, pool, disk, drain = (
        report["shed"], report["pool_death"], report["disk_faults"], report["drain"]
    )
    print(
        f"shed p50:               {shed['p50_seconds'] * 1e3:8.2f} ms"
        f"  (target {SHED_P50_TARGET_SECONDS * 1e3:.0f} ms, all 429: "
        f"{shed['all_429']})"
    )
    print(
        f"pool-death availability:{pool['availability']:8.3f}"
        f"  (breaker: {' -> '.join(pool['pool_breaker_transitions'])})"
    )
    print(
        f"disk-fault availability:{disk['availability']:8.3f}"
        f"  (breaker: {' -> '.join(disk['disk_breaker_transitions'])})"
    )
    print(
        f"drain:                  stream end={drain['stream_completed']}"
        f"  clean={drain['drain_clean']}"
        f"  in {drain['drain_seconds']:.2f} s"
    )
    print(f"wrote {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("resilience benchmark targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
