"""Physical data-movement estimation (Section V-F).

Once per-access miss outcomes are known, the *physical* volume moved
between cache and main memory is ``misses × line size`` — the refinement
the local view applies to the logical volumes of the global view.  Edge
estimates combine the miss counts of the edge's source and destination
nodes with the line size (the paper's formulation; we sum the two nodes'
misses and document this reading in DESIGN.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sdfg.nodes import AccessNode
from repro.sdfg.state import SDFGState
from repro.simulation.cache import CacheModel, MissCounts, count_misses
from repro.simulation.layout import MemoryModel
from repro.simulation.stackdist import line_trace, stack_distances
from repro.simulation.trace import AccessEvent

__all__ = [
    "per_container_misses",
    "per_element_misses",
    "container_physical_movement",
    "edge_physical_movement",
]


def _distances_with_events(
    events: Sequence[AccessEvent],
    memory: MemoryModel,
    distances: Sequence[float] | None = None,
) -> list[tuple[AccessEvent, float]]:
    if distances is None:
        distances = stack_distances(line_trace(events, memory))
    return list(zip(events, distances))


def per_container_misses(
    events: Sequence[AccessEvent],
    memory: MemoryModel,
    model: CacheModel,
    distances: Sequence[float] | None = None,
) -> dict[str, MissCounts]:
    """Miss counts per container, from one interleaved trace.

    The stack distances are computed over the *full* trace (all containers
    share the cache); the outcomes are then attributed to each event's
    container.  Pass precomputed per-event *distances* to reuse work
    across queries.
    """
    out: dict[str, MissCounts] = {}
    for event, distance in _distances_with_events(events, memory, distances):
        counts = out.setdefault(event.data, MissCounts())
        kind = model.classify(distance)
        if kind.is_miss:
            if distance == float("inf"):
                counts.cold += 1
            else:
                counts.capacity += 1
        else:
            counts.hits += 1
    return out


def per_element_misses(
    events: Sequence[AccessEvent],
    memory: MemoryModel,
    model: CacheModel,
    data: str,
    distances: Sequence[float] | None = None,
) -> dict[tuple[int, ...], MissCounts]:
    """Miss counts per element of *data* — the Fig. 5c / Fig. 7 heatmap."""
    out: dict[tuple[int, ...], MissCounts] = {}
    for event, distance in _distances_with_events(events, memory, distances):
        if event.data != data:
            continue
        counts = out.setdefault(event.indices, MissCounts())
        kind = model.classify(distance)
        if kind.is_miss:
            if distance == float("inf"):
                counts.cold += 1
            else:
                counts.capacity += 1
        else:
            counts.hits += 1
    return out


def container_physical_movement(
    events: Sequence[AccessEvent],
    memory: MemoryModel,
    model: CacheModel,
    distances: Sequence[float] | None = None,
) -> dict[str, int]:
    """Estimated bytes moved between memory and cache, per container."""
    misses = per_container_misses(events, memory, model, distances)
    return {name: counts.misses * model.line_size for name, counts in misses.items()}


def edge_physical_movement(
    state: SDFGState,
    events: Sequence[AccessEvent] | None,
    memory: MemoryModel | None,
    model: CacheModel,
    distances: Sequence[float] | None = None,
    container_misses: Mapping[str, MissCounts] | None = None,
) -> dict[object, int]:
    """Physical-movement estimate per dataflow edge.

    Each container-adjacent edge gets ``misses(container at source or
    destination) × line size``; edges touching containers on both ends
    (copies) get the sum of both sides.  Edges whose containers never
    appear in the trace get zero.  Pass precomputed *container_misses*
    (e.g. from the array pipeline) to skip the per-event attribution;
    *events* and *memory* are unused in that case.
    """
    if container_misses is None:
        container_misses = per_container_misses(events, memory, model, distances)

    def node_misses(node) -> int:
        if isinstance(node, AccessNode) and node.data in container_misses:
            return container_misses[node.data].misses
        return 0

    out: dict[object, int] = {}
    for edge, memlet in state.all_memlets():
        total = node_misses(edge.src) + node_misses(edge.dst)
        if total == 0 and memlet.data in container_misses:
            # Inner edges (not touching the access node directly) inherit
            # their container's estimate.
            total = container_misses[memlet.data].misses
        out[edge] = total * model.line_size
    return out
