"""Access traces: the raw output of the pattern simulation."""

from __future__ import annotations

import enum
from typing import Iterable

__all__ = ["AccessKind", "AccessEvent"]


class AccessKind(enum.Enum):
    """Whether an access reads or writes its element."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AccessEvent:
    """One element access observed during simulation.

    Attributes
    ----------
    data:
        Container name.
    indices:
        Concrete element indices.
    kind:
        Read or write.
    step:
        Global ordinal of the *timestep* (map iteration) this access
        belongs to; the playback animation advances one step at a time and
        highlights all events sharing it.
    execution:
        Ordinal of the tasklet execution producing the access; related-
        access analysis groups events by this.
    tasklet:
        Name of the executing tasklet.
    point:
        The map iteration point (parameter values) of the execution.
    """

    __slots__ = ("data", "indices", "kind", "step", "execution", "tasklet", "point")

    def __init__(
        self,
        data: str,
        indices: tuple[int, ...],
        kind: AccessKind,
        step: int,
        execution: int,
        tasklet: str,
        point: tuple[int, ...],
    ):
        self.data = data
        self.indices = indices
        self.kind = kind
        self.step = step
        self.execution = execution
        self.tasklet = tasklet
        self.point = point

    def __repr__(self) -> str:
        idx = ", ".join(str(i) for i in self.indices)
        return (
            f"AccessEvent({self.kind.value} {self.data}[{idx}] @step {self.step})"
        )


def filter_events(
    events: Iterable[AccessEvent],
    data: str | None = None,
    kind: AccessKind | None = None,
) -> list[AccessEvent]:
    """Events restricted to one container and/or access kind."""
    out = []
    for e in events:
        if data is not None and e.data != data:
            continue
        if kind is not None and e.kind != kind:
            continue
        out.append(e)
    return out
