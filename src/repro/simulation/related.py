"""Related-access derivation (Section V-C, Fig. 4c).

"The same information can be used to derive and visualize data accesses
related to other accesses, based on whether they occur in the same
computations."  Two accesses are *related* when they belong to the same
tasklet execution.  Selecting one or more memory locations stacks the
related-access counts of all executions touching them into a heatmap that
exposes replication and tiling opportunities.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.simulation.simulator import SimulationResult
from repro.simulation.trace import AccessEvent

__all__ = ["related_access_counts", "related_events"]

Selection = tuple[str, tuple[int, ...]]


def related_events(
    result: SimulationResult, selections: Iterable[Selection]
) -> list[AccessEvent]:
    """All events related to any selected ``(container, indices)`` element.

    An event is related when its execution also accesses a selected
    element.  The selected elements' own accesses are included (they are
    trivially related to themselves), matching the tool's behaviour of
    highlighting the selection.
    """
    wanted = set(selections)
    out: list[AccessEvent] = []
    for _, events in result.executions():
        if any((e.data, e.indices) in wanted for e in events):
            out.extend(events)
    return out


def related_access_counts(
    result: SimulationResult,
    selections: Sequence[Selection],
    data: str | None = None,
) -> dict[Selection, int]:
    """Stacked related-access counts per element.

    Multiple selections stack (Fig. 4c selects C[3,0], C[3,1] and C[3,2]
    simultaneously); restrict the result to one container with *data*.
    """
    counts: dict[Selection, int] = {}
    for event in related_events(result, selections):
        if data is not None and event.data != data:
            continue
        key = (event.data, event.indices)
        counts[key] = counts.get(key, 0) + 1
    return counts
