"""Cache-miss classification and validation simulators (Section V-F).

Misses are predicted from stack distances under a fully-associative LRU
model:

- **cold miss** — first touch of a cache line (stack distance = ∞);
- **capacity miss** — stack distance ≥ threshold, where the threshold is
  the number of lines the modeled cache holds (user-adjustable, so the
  engineer can model different cache sizes or compensate for scaled-down
  simulation parameters);
- **conflict misses** are *not counted*: the model assumes full
  associativity, following McKinley & Temam and Beyls & D'Hollander, who
  show capacity misses dominate in low-associativity caches.

An exact LRU cache simulator (:func:`simulate_lru`) is included; for a
fully-associative LRU cache of C lines, an access misses **iff** its stack
distance is ≥ C or cold — the property tests pin this equivalence, which
is the correctness argument for the threshold model.
"""

from __future__ import annotations

import enum
import math
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "MissKind",
    "CacheModel",
    "classify_accesses",
    "classify_three_way",
    "count_misses",
    "count_misses_array",
    "count_three_way",
    "miss_masks",
    "MissCounts",
    "simulate_lru",
    "simulate_set_associative",
]


class MissKind(enum.Enum):
    """Outcome of one access in the cache model."""

    HIT = "hit"
    COLD = "cold"
    CAPACITY = "capacity"
    #: Only produced by the set-associative backend (see
    #: :func:`classify_three_way`): a miss that a fully-associative cache
    #: of the same total capacity would have avoided.
    CONFLICT = "conflict"

    @property
    def is_miss(self) -> bool:
        return self is not MissKind.HIT


class MissCounts:
    """Aggregated outcome counts for a trace (or a trace subset)."""

    __slots__ = ("hits", "cold", "capacity", "conflict")

    def __init__(
        self, hits: int = 0, cold: int = 0, capacity: int = 0, conflict: int = 0
    ):
        self.hits = hits
        self.cold = cold
        self.capacity = capacity
        #: Nonzero only under the set-associative backend.
        self.conflict = conflict

    @property
    def misses(self) -> int:
        return self.cold + self.capacity + self.conflict

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.total if self.total else 0.0

    def __iter__(self):
        yield from (self.hits, self.cold, self.capacity, self.conflict)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissCounts):
            return NotImplemented
        return tuple(self) == tuple(other)

    def __repr__(self) -> str:
        conflict = f", conflict={self.conflict}" if self.conflict else ""
        return (
            f"MissCounts(hits={self.hits}, cold={self.cold}, "
            f"capacity={self.capacity}{conflict})"
        )


class CacheModel:
    """A fully-associative LRU cache model parameterized by its capacity.

    Parameters
    ----------
    line_size:
        Cache line (block) size in bytes.
    capacity_lines:
        Number of lines the cache holds — the capacity-miss threshold.
        The UI exposes this directly so the user can adjust it on the fly.
    """

    def __init__(self, line_size: int = 64, capacity_lines: int = 512):
        if line_size <= 0 or capacity_lines <= 0:
            raise SimulationError("line size and capacity must be positive")
        self.line_size = int(line_size)
        self.capacity_lines = int(capacity_lines)

    @property
    def capacity_bytes(self) -> int:
        return self.line_size * self.capacity_lines

    def classify(self, distance: float) -> MissKind:
        """Outcome of an access with the given stack distance."""
        if math.isinf(distance):
            return MissKind.COLD
        if distance >= self.capacity_lines:
            return MissKind.CAPACITY
        return MissKind.HIT

    def __repr__(self) -> str:
        return (
            f"CacheModel(line_size={self.line_size}, "
            f"capacity_lines={self.capacity_lines})"
        )


def classify_accesses(
    distances: Sequence[float], model: CacheModel
) -> list[MissKind]:
    """Per-access outcomes from stack distances."""
    return [model.classify(d) for d in distances]


def count_misses(distances: Sequence[float], model: CacheModel) -> MissCounts:
    """Aggregate outcome counts from stack distances."""
    counts = MissCounts()
    for d in distances:
        kind = model.classify(d)
        if kind is MissKind.HIT:
            counts.hits += 1
        elif kind is MissKind.COLD:
            counts.cold += 1
        else:
            counts.capacity += 1
    return counts


def miss_masks(
    distances: np.ndarray, model: CacheModel
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`CacheModel.classify`: boolean (cold, capacity) masks.

    ``cold`` marks infinite distances; ``capacity`` marks finite distances
    at or above the capacity threshold (``hit`` is the complement of
    both).  Equals the per-access enum classification exactly.
    """
    d = np.asarray(distances, dtype=np.float64)
    cold = np.isinf(d)
    capacity = (d >= model.capacity_lines) & ~cold
    return cold, capacity


def count_misses_array(distances: np.ndarray, model: CacheModel) -> MissCounts:
    """Vectorized :func:`count_misses` over a distance array."""
    cold, capacity = miss_masks(distances, model)
    k = int(np.count_nonzero(cold))
    p = int(np.count_nonzero(capacity))
    return MissCounts(hits=int(cold.size) - k - p, cold=k, capacity=p)


def simulate_lru(lines: Sequence[int], capacity_lines: int) -> list[bool]:
    """Exact fully-associative LRU simulation: True per access = miss."""
    if capacity_lines <= 0:
        raise SimulationError("capacity must be positive")
    cache: OrderedDict[int, None] = OrderedDict()
    out: list[bool] = []
    for line in lines:
        if line in cache:
            cache.move_to_end(line)
            out.append(False)
        else:
            out.append(True)
            cache[line] = None
            if len(cache) > capacity_lines:
                cache.popitem(last=False)
    return out


def classify_three_way(
    lines: Sequence[int], num_sets: int, ways: int
) -> list[MissKind]:
    """Full three-way miss taxonomy under a set-associative LRU cache.

    This is the "hardware-specific back-end" extension the paper's
    Discussion sketches: instead of assuming full associativity, simulate
    the actual set-associative cache and attribute each miss:

    - **cold** — first-ever touch of the line;
    - **capacity** — a fully-associative LRU cache of the same total
      capacity (``num_sets × ways`` lines) would also miss;
    - **conflict** — only the set-associative cache misses (the line was
      evicted by a set conflict).

    Note that set-associative caches can occasionally *hit* where the
    global-LRU cache misses; such accesses are plain hits here.
    """
    sa_miss = simulate_set_associative(lines, num_sets, ways)
    fa_miss = simulate_lru(lines, num_sets * ways)
    seen: set[int] = set()
    out: list[MissKind] = []
    for line, sa, fa in zip(lines, sa_miss, fa_miss):
        if not sa:
            out.append(MissKind.HIT)
        elif line not in seen:
            out.append(MissKind.COLD)
        elif fa:
            out.append(MissKind.CAPACITY)
        else:
            out.append(MissKind.CONFLICT)
        seen.add(line)
    return out


def count_three_way(lines: Sequence[int], num_sets: int, ways: int) -> MissCounts:
    """Aggregate :func:`classify_three_way` outcomes."""
    counts = MissCounts()
    for kind in classify_three_way(lines, num_sets, ways):
        if kind is MissKind.HIT:
            counts.hits += 1
        elif kind is MissKind.COLD:
            counts.cold += 1
        elif kind is MissKind.CAPACITY:
            counts.capacity += 1
        else:
            counts.conflict += 1
    return counts


def simulate_set_associative(
    lines: Sequence[int], num_sets: int, ways: int
) -> list[bool]:
    """Exact set-associative LRU simulation (True per access = miss).

    Included to quantify how far the fully-associative assumption is from
    a realistic cache on a given trace (conflict misses show up as extra
    ``True`` entries relative to :func:`simulate_lru` with
    ``num_sets * ways`` lines).
    """
    if num_sets <= 0 or ways <= 0:
        raise SimulationError("sets and ways must be positive")
    sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(num_sets)]
    out: list[bool] = []
    for line in lines:
        target = sets[line % num_sets]
        if line in target:
            target.move_to_end(line)
            out.append(False)
        else:
            out.append(True)
            target[line] = None
            if len(target) > ways:
                target.popitem(last=False)
    return out
