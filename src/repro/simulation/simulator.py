"""The access-pattern simulator (paper Section V-C).

"In the parameterized graph, where parallel regions have their bounds
fixed, we can perform an iteration space simulation to evaluate these
symbolic expressions and derive the exact data accesses performed by each
computation in the graph."

The simulator walks a state's scopes in topological order, enumerates every
map's concrete iteration space and evaluates each memlet subset at each
point, producing an ordered trace of :class:`AccessEvent` objects.  Symbolic
index expressions are compiled to Python code objects once per memlet, so
the per-iteration cost is a handful of ``eval`` calls.

With ``fast=True`` (the default), flat map scopes whose memlet subsets are
affine in the map parameters bypass the per-iteration loop entirely: the
whole scope trace is materialized with NumPy broadcast arithmetic
(:mod:`~repro.simulation.vectorized`), which is what makes the "fraction
of a second" interactive loop of the paper feasible at realistic sizes.
The two paths are differentially tested to produce identical traces.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.sdfg.data import Array
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, NestedSDFG, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.simulation.iterspace import iteration_points
from repro.simulation.trace import AccessEvent, AccessKind

__all__ = [
    "AccessPatternSimulator",
    "SimulationResult",
    "simulate_state",
    "simulate_region",
]

#: Helper globals available when evaluating compiled index expressions.
_EVAL_GLOBALS = {"__builtins__": {}, "Min": min, "Max": max}


class _CompiledSubset:
    """A memlet subset pre-compiled for fast repeated evaluation."""

    __slots__ = ("dims",)

    def __init__(self, memlet: Memlet):
        self.dims = []
        for r in memlet.subset.ranges:
            begin = compile(str(r.begin), "<memlet>", "eval")
            if r.is_point:
                self.dims.append((begin, None, None))
            else:
                end = compile(str(r.end), "<memlet>", "eval")
                step = compile(str(r.step), "<memlet>", "eval")
                self.dims.append((begin, end, step))

    def points(self, env: dict) -> Iterator[tuple[int, ...]]:
        """Concrete element indices covered under *env* (row-major order)."""
        axes: list[list[int]] = []
        for begin, end, step in self.dims:
            b = eval(begin, _EVAL_GLOBALS, env)  # noqa: S307
            if end is None:
                axes.append([int(b)])
                continue
            e = eval(end, _EVAL_GLOBALS, env)  # noqa: S307
            s = eval(step, _EVAL_GLOBALS, env)  # noqa: S307
            if s == 0:
                raise SimulationError("memlet subset step evaluated to zero")
            if s > 0:
                axes.append(list(range(int(b), int(e) + 1, int(s))))
            else:
                axes.append(list(range(int(b), int(e) - 1, int(s))))
        if not axes:
            yield ()
            return
        pos = [0] * len(axes)
        while True:
            yield tuple(a[p] for a, p in zip(axes, pos))
            axis = len(axes) - 1
            while axis >= 0:
                pos[axis] += 1
                if pos[axis] < len(axes[axis]):
                    break
                pos[axis] = 0
                axis -= 1
            if axis < 0:
                return


class SimulationResult:
    """The ordered access trace plus convenient aggregate views.

    Events are stored as a sequence of *segments*.  The interpreter
    appends :class:`AccessEvent` objects eagerly; the vectorized fast
    path registers *lazy* segments (deferred event blocks holding only
    index matrices) so that no per-event Python object exists until a
    consumer explicitly reads :attr:`events`.  Aggregate queries that
    can be answered from the matrices (:meth:`containers`,
    :meth:`access_counts`, :meth:`total_accesses`) never materialize.
    """

    def __init__(self, sdfg: SDFG, env: dict[str, int]):
        self.sdfg = sdfg
        self.env = dict(env)
        self.num_events = 0
        self.num_steps = 0
        self.num_executions = 0
        #: Index matrices recorded by the vectorized fast path; when they
        #: cover the whole trace, line ids can be computed by broadcast
        #: (see :func:`~repro.simulation.vectorized.fast_line_trace`).
        self.vector_blocks: list = []
        self._segments: list = []  # sealed eager lists or lazy segments
        self._tail: list[AccessEvent] = []  # open eager segment
        self._flat: list[AccessEvent] | None = None

    # -- trace construction ----------------------------------------------------
    def append_event(self, event: AccessEvent) -> None:
        """Append one eagerly-built event (the interpreter path)."""
        self._flat = None
        self._tail.append(event)
        self.num_events += 1

    def extend_events(self, events: Sequence[AccessEvent]) -> None:
        """Append a batch of eagerly-built events."""
        self._flat = None
        self._tail.extend(events)
        self.num_events += len(events)

    def add_lazy_segment(self, segment) -> None:
        """Append a deferred event block (``num_events`` + ``materialize()``)."""
        self._flat = None
        if self._tail:
            self._segments.append(self._tail)
            self._tail = []
        self._segments.append(segment)
        self.num_events += segment.num_events

    def _iter_segments(self):
        yield from self._segments
        if self._tail:
            yield self._tail

    def events_materialized(self) -> bool:
        """Whether the object trace exists (no pending lazy segments)."""
        return not any(hasattr(seg, "materialize") for seg in self._segments)

    @property
    def events(self) -> list[AccessEvent]:
        """The ordered object trace; materializes lazy segments on first use."""
        if self._flat is None:
            if self._segments:
                flat: list[AccessEvent] = []
                for seg in self._segments:
                    if hasattr(seg, "materialize"):
                        flat.extend(seg.materialize())
                    else:
                        flat.extend(seg)
                flat.extend(self._tail)
                self._segments = []
                self._tail = flat
            self._flat = self._tail
        return self._flat

    # -- shapes --------------------------------------------------------------
    def shape(self, data: str) -> tuple[int, ...]:
        """Concrete shape of *data* under the simulation parameters."""
        desc = self.sdfg.arrays[data]
        return tuple(int(s.evaluate(self.env)) for s in desc.shape)

    def containers(self) -> list[str]:
        """Containers that appear in the trace, in first-access order."""
        seen: dict[str, None] = {}
        for seg in self._iter_segments():
            if hasattr(seg, "container_order"):
                for name in seg.container_order():
                    seen.setdefault(name)
            else:
                for e in seg:
                    seen.setdefault(e.data)
        return list(seen)

    # -- aggregate views ---------------------------------------------------------
    def container_events(self, data: str) -> list[AccessEvent]:
        return [e for e in self.events if e.data == data]

    def access_counts(
        self, data: str, kind: AccessKind | None = None
    ) -> dict[tuple[int, ...], int]:
        """Flattened time dimension: access count per element (Fig. 4b)."""
        counts: dict[tuple[int, ...], int] = {}
        for seg in self._iter_segments():
            if hasattr(seg, "accumulate_counts"):
                seg.accumulate_counts(data, kind, counts)
                continue
            for e in seg:
                if e.data != data:
                    continue
                if kind is not None and e.kind != kind:
                    continue
                counts[e.indices] = counts.get(e.indices, 0) + 1
        return counts

    def total_accesses(self, data: str | None = None) -> int:
        if data is None:
            return self.num_events
        total = 0
        for seg in self._iter_segments():
            if hasattr(seg, "count_for"):
                total += seg.count_for(data)
            else:
                total += sum(1 for e in seg if e.data == data)
        return total

    def events_at_step(self, step: int) -> list[AccessEvent]:
        """Playback frame: all accesses of one timestep (Section V-C)."""
        return [e for e in self.events if e.step == step]

    def steps(self) -> Iterator[list[AccessEvent]]:
        """Iterate playback frames in order."""
        frame: list[AccessEvent] = []
        current = 0
        for e in self.events:
            if e.step != current:
                yield frame
                frame = []
                current = e.step
            frame.append(e)
        if frame:
            yield frame

    def executions(self) -> Iterator[tuple[int, list[AccessEvent]]]:
        """Iterate (execution id, events) groups — one tasklet firing each."""
        group: list[AccessEvent] = []
        current: int | None = None
        for e in self.events:
            if current is None:
                current = e.execution
            if e.execution != current:
                yield current, group
                group = []
                current = e.execution
            group.append(e)
        if group:
            yield current if current is not None else 0, group

    def per_element_events(self, data: str) -> dict[tuple[int, ...], list[AccessEvent]]:
        out: dict[tuple[int, ...], list[AccessEvent]] = {}
        for e in self.events:
            if e.data == data:
                out.setdefault(e.indices, []).append(e)
        return out

    def __repr__(self) -> str:
        return (
            f"SimulationResult(events={self.num_events}, steps={self.num_steps}, "
            f"containers={self.containers()})"
        )


class AccessPatternSimulator:
    """Simulates the access pattern of a parameterized state.

    Parameters
    ----------
    sdfg:
        The program.
    symbols:
        Concrete values for every free symbol of the simulated region —
        the small "parameterization" sizes of the local view.
    state:
        The state to simulate (default: every state in order).
    include_transients:
        When False (default), accesses to scalar transients (tasklet
        locals) are excluded — they live in registers, not memory.
    fast:
        When True (default), flat map scopes with affine memlet subsets
        are simulated by the vectorized fast path
        (:mod:`~repro.simulation.vectorized`); pass False to force the
        per-iteration interpreter everywhere (the differential-testing
        reference).  Both paths produce identical traces.
    timings:
        Optional :class:`~repro.analysis.timing.StageTimings` collector
        recording enumerate/evaluate wall-time spans.
    """

    def __init__(
        self,
        sdfg: SDFG,
        symbols: Mapping[str, int] | None = None,
        state: SDFGState | None = None,
        include_transients: bool = False,
        fast: bool = True,
        timings=None,
    ):
        self.sdfg = sdfg
        self.symbols = {k: int(v) for k, v in (symbols or {}).items()}
        self.state = state
        self.include_transients = include_transients
        self.fast = fast
        self.timings = timings
        missing = sorted(
            s for s in sdfg.free_symbols() if s not in self.symbols
        )
        if missing:
            raise SimulationError(
                f"simulation requires concrete values for symbols {missing}"
            )

    # -- public API ---------------------------------------------------------
    def run(self) -> SimulationResult:
        result = SimulationResult(self.sdfg, self.symbols)
        states = [self.state] if self.state is not None else self.sdfg.all_states_topological()
        for state in states:
            self._simulate_state(state, result)
        return result

    # -- internals -------------------------------------------------------------
    def _tracked(self, data: str) -> bool:
        if self.include_transients:
            return True
        desc = self.sdfg.arrays.get(data)
        return desc is None or isinstance(desc, Array)

    def _simulate_state(self, state: SDFGState, result: SimulationResult) -> None:
        children = state.scope_children()
        sdict = state.scope_dict()
        env: dict[str, int] = dict(self.symbols)
        for node in state.topological_nodes():
            if sdict[node] is not None:
                continue  # handled by its scope
            if isinstance(node, MapEntry):
                self._simulate_scope(state, node, children, env, result, outer_point=())
            elif isinstance(node, Tasklet):
                step = self._next_step(result)
                self._execute_tasklet(state, node, env, result, point=(), step=step)
            elif isinstance(node, NestedSDFG):
                self._simulate_nested(state, node, env, result, outer_point=())
            elif isinstance(node, AccessNode):
                self._simulate_copies(state, node, env, result)

    def _simulate_scope(
        self,
        state: SDFGState,
        entry: MapEntry,
        children: dict,
        env: dict[str, int],
        result: SimulationResult,
        outer_point: tuple[int, ...],
    ) -> None:
        scope_nodes = children.get(entry, [])
        order = [n for n in state.topological_nodes() if n in scope_nodes]
        tasklets = [n for n in order if isinstance(n, Tasklet)]
        nested = [n for n in order if isinstance(n, MapEntry)]
        nested_sdfgs = [n for n in order if isinstance(n, NestedSDFG)]
        params = entry.map.params

        if self.fast and not nested and not nested_sdfgs:
            from repro.simulation.vectorized import simulate_scope_vectorized

            if simulate_scope_vectorized(
                state, entry, tasklets, env, result, outer_point,
                self._tracked, self._compiled, timings=self.timings,
            ):
                return

        from repro.analysis.timing import maybe_span

        # Only the outermost scope records a span: recursive calls for
        # nested maps run inside it and must not double-count.
        events_before = result.num_events
        with maybe_span(self.timings if not outer_point else None, "evaluate") as span:
            for point in iteration_points(entry.map, env):
                for name, value in zip(params, point):
                    env[name] = value
                step = self._next_step(result)
                for tasklet in tasklets:
                    self._execute_tasklet(
                        state, tasklet, env, result, point=outer_point + point, step=step
                    )
                for nested_node in nested_sdfgs:
                    self._simulate_nested(
                        state, nested_node, env, result, outer_point=outer_point + point
                    )
                for inner in nested:
                    self._simulate_scope(
                        state, inner, children, env, result, outer_point=outer_point + point
                    )
            for name in params:
                env.pop(name, None)
            span.set(scope=entry.map.label, events=result.num_events - events_before)

    def _next_step(self, result: SimulationResult) -> int:
        step = result.num_steps
        result.num_steps += 1
        return step

    def _execute_tasklet(
        self,
        state: SDFGState,
        tasklet: Tasklet,
        env: dict[str, int],
        result: SimulationResult,
        point: tuple[int, ...],
        step: int,
    ) -> None:
        execution = result.num_executions
        result.num_executions += 1
        for edge in state.in_edges(tasklet):
            memlet = edge.data.memlet
            if memlet is None or not self._tracked(memlet.data):
                continue
            for indices in self._compiled(memlet).points(env):
                result.append_event(
                    AccessEvent(
                        memlet.data, indices, AccessKind.READ, step, execution,
                        tasklet.name, point,
                    )
                )
        for edge in state.out_edges(tasklet):
            memlet = edge.data.memlet
            if memlet is None or not self._tracked(memlet.data):
                continue
            for indices in self._compiled(memlet).points(env):
                result.append_event(
                    AccessEvent(
                        memlet.data, indices, AccessKind.WRITE, step, execution,
                        tasklet.name, point,
                    )
                )

    def _simulate_nested(
        self,
        state: SDFGState,
        node: NestedSDFG,
        env: dict[str, int],
        result: SimulationResult,
        outer_point: tuple[int, ...],
    ) -> None:
        """Simulate a NestedSDFG node: recurse and translate the events.

        Connector memlets bind inner container names to outer containers
        at a per-dimension offset (the subset's begin); inner transients
        are private and excluded like tasklet locals.
        """
        from repro.symbolic.expr import sympify

        inner = node.sdfg
        inner_env: dict[str, int] = {}
        for name, value in node.symbol_mapping.items():
            inner_env[name] = int(sympify(value).evaluate(env))
        for symbol in inner.free_symbols():
            if symbol not in inner_env and symbol in env:
                inner_env[symbol] = env[symbol]

        bindings: dict[str, tuple[str, tuple[int, ...]]] = {}

        def bind(conn: str, memlet) -> None:
            offsets = tuple(
                int(r.begin.evaluate(env)) for r in memlet.subset.ranges
            )
            bindings[conn] = (memlet.data, offsets)

        for edge in state.in_edges(node):
            if edge.data.memlet is not None and edge.data.dst_conn is not None:
                bind(edge.data.dst_conn, edge.data.memlet)
        for edge in state.out_edges(node):
            if edge.data.memlet is not None and edge.data.src_conn is not None:
                if edge.data.src_conn not in bindings:
                    bind(edge.data.src_conn, edge.data.memlet)

        sub_result = AccessPatternSimulator(
            inner, inner_env, include_transients=False
        ).run()
        step_base = result.num_steps
        execution_base = result.num_executions
        for event in sub_result.events:
            binding = bindings.get(event.data)
            if binding is None:
                continue  # inner transient: private, like tasklet locals
            data, offsets = binding
            if len(offsets) != len(event.indices):
                raise SimulationError(
                    f"nested connector {event.data!r} rank mismatch"
                )
            indices = tuple(i + o for i, o in zip(event.indices, offsets))
            result.append_event(
                AccessEvent(
                    data, indices, event.kind, step_base + event.step,
                    execution_base + event.execution, event.tasklet,
                    outer_point + event.point,
                )
            )
        result.num_steps += sub_result.num_steps
        result.num_executions += sub_result.num_executions

    def _simulate_copies(
        self,
        state: SDFGState,
        node: AccessNode,
        env: dict[str, int],
        result: SimulationResult,
    ) -> None:
        """Access-node-to-access-node edges are whole-subset copies."""
        for edge in state.out_edges(node):
            if not isinstance(edge.dst, AccessNode) or edge.data.memlet is None:
                continue
            memlet = edge.data.memlet
            if not (self._tracked(node.data) and self._tracked(edge.dst.data)):
                continue
            step = self._next_step(result)
            execution = result.num_executions
            result.num_executions += 1
            src_points = list(self._compiled(memlet).points(dict(self.symbols)))
            for indices in src_points:
                result.append_event(
                    AccessEvent(
                        memlet.data, indices, AccessKind.READ, step, execution,
                        f"copy_{node.data}_{edge.dst.data}", (),
                    )
                )
            # Destination side: same shape, destination container; assume an
            # aligned (identical-subset) copy when ranks match.
            if edge.dst.data != memlet.data:
                dst_desc = self.sdfg.arrays.get(edge.dst.data)
                if dst_desc is not None and len(dst_desc.shape) == len(
                    self.sdfg.arrays[memlet.data].shape
                ):
                    for indices in src_points:
                        result.append_event(
                            AccessEvent(
                                edge.dst.data, indices, AccessKind.WRITE, step,
                                execution, f"copy_{node.data}_{edge.dst.data}", (),
                            )
                        )

    # -- compiled memlet cache -----------------------------------------------------
    _cache_attr = "_compiled_subsets"

    def _compiled(self, memlet: Memlet) -> _CompiledSubset:
        cache: dict[int, _CompiledSubset] = getattr(self, "_subset_cache", None) or {}
        if not hasattr(self, "_subset_cache"):
            self._subset_cache = cache
        key = id(memlet)
        compiled = cache.get(key)
        if compiled is None:
            compiled = _CompiledSubset(memlet)
            cache[key] = compiled
        return compiled


def simulate_state(
    sdfg: SDFG,
    symbols: Mapping[str, int],
    state: SDFGState | None = None,
    include_transients: bool = False,
    fast: bool = True,
    timings=None,
) -> SimulationResult:
    """Convenience wrapper: build a simulator and run it."""
    return AccessPatternSimulator(
        sdfg, symbols=symbols, state=state, include_transients=include_transients,
        fast=fast, timings=timings,
    ).run()


class _ConcreteIndices:
    """A map range stand-in holding an explicit list of concrete indices.

    :func:`simulate_region` temporarily replaces the outermost map range
    with one of these to restrict simulation to a window of iterations.
    Only the protocol the simulation paths actually exercise is provided:
    ``concretize`` (both the interpreter's ``iteration_points`` and the
    vectorized ``_iteration_grids`` go through it), ``size`` and
    ``free_symbols``.
    """

    __slots__ = ("indices",)

    def __init__(self, indices: Sequence[int]):
        self.indices = list(indices)

    def concretize(self, env: Mapping[str, int]) -> list[int]:
        return list(self.indices)

    def size(self, env: Mapping[str, int]) -> int:
        return len(self.indices)

    def free_symbols(self) -> frozenset[str]:
        return frozenset()


def simulate_region(
    sdfg: SDFG,
    symbols: Mapping[str, int],
    state: SDFGState,
    node: Node,
    include_transients: bool = False,
    fast: bool = True,
    timings=None,
    outer_slice: tuple[int, int] | None = None,
) -> SimulationResult:
    """Simulate a single top-level region (one node's scope) of a state.

    The analytic locality engine (:mod:`repro.locality`) decomposes a
    state into per-region traces; regions it cannot fold analytically are
    enumerated here through the regular simulator, so a stitched sequence
    of region traces is event-for-event identical to
    :func:`simulate_state` on the whole state.

    ``outer_slice=(lo, hi)`` restricts the *outermost* map dimension of a
    map region to the half-open window ``[lo, hi)`` of its iteration
    list — the window-fold path simulates a few representative blocks of
    the outer loop instead of its whole extent.
    """
    sim = AccessPatternSimulator(
        sdfg, symbols=symbols, state=state,
        include_transients=include_transients, fast=fast, timings=timings,
    )
    result = SimulationResult(sdfg, sim.symbols)
    env: dict[str, int] = dict(sim.symbols)
    if isinstance(node, MapEntry):
        old_ranges = node.map.ranges
        try:
            if outer_slice is not None:
                lo, hi = outer_slice
                indices = list(old_ranges[0].concretize(env))[lo:hi]
                node.map.ranges = [_ConcreteIndices(indices)] + list(old_ranges[1:])
            sim._simulate_scope(
                state, node, state.scope_children(), env, result, outer_point=()
            )
        finally:
            node.map.ranges = old_ranges
    elif isinstance(node, Tasklet):
        step = sim._next_step(result)
        sim._execute_tasklet(state, node, env, result, point=(), step=step)
    elif isinstance(node, NestedSDFG):
        sim._simulate_nested(state, node, env, result, outer_point=())
    elif isinstance(node, AccessNode):
        sim._simulate_copies(state, node, env, result)
    else:
        raise SimulationError(
            f"cannot simulate a region rooted at {type(node).__name__}"
        )
    return result
