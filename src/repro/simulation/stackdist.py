"""Stack (reuse) distance computation at cache-line granularity.

"We calculate a metric called the stack distance for each data element,
which is defined as the number of accesses to unique addresses made since
the last reference to the requested data element.  We use the stack
distance at a cache line granularity ...  If an element has not been
referenced yet, its stack distance is set to infinity." (Section V-E)

Two implementations are provided:

- :func:`stack_distances` — Olken's algorithm with a Fenwick (binary
  indexed) tree over trace positions, O(N log N);
- :func:`stack_distances_bruteforce` — the textbook O(N²) definition, kept
  as the property-test oracle.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.simulation.layout import MemoryModel
from repro.simulation.trace import AccessEvent

__all__ = [
    "stack_distances",
    "stack_distances_bruteforce",
    "line_trace",
    "element_stack_distances",
]

INF = math.inf


class _Fenwick:
    """Binary indexed tree over 1-based positions with prefix sums."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, pos: int, delta: int) -> None:
        pos += 1
        while pos <= self.size:
            self.tree[pos] += delta
            pos += pos & (-pos)

    def prefix_sum(self, pos: int) -> int:
        """Sum of entries at positions 0..pos (inclusive)."""
        pos += 1
        total = 0
        while pos > 0:
            total += self.tree[pos]
            pos -= pos & (-pos)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of entries at positions lo..hi (inclusive)."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def line_trace(
    events: Sequence[AccessEvent], memory: MemoryModel
) -> list[int]:
    """Project an access trace onto cache-line ids."""
    line_size = memory.line_size
    return [
        memory.address_of(e.data, e.indices) // line_size for e in events
    ]


def stack_distances(lines: Sequence[int]) -> list[float]:
    """Per-access stack distances for a cache-line reference trace.

    The distance of access *t* to line *L* is the number of **distinct**
    lines referenced since the previous access to *L* (exclusive), or
    ``inf`` for the first access (a cold reference).

    Olken's algorithm: a Fenwick tree marks, for each trace position, 1 if
    that position is the *most recent* access to its line.  The number of
    distinct lines between the previous access to L and now is the range
    sum over the marked positions strictly between them.
    """
    n = len(lines)
    tree = _Fenwick(n)
    last_position: dict[int, int] = {}
    out: list[float] = []
    for t, line in enumerate(lines):
        prev = last_position.get(line)
        if prev is None:
            out.append(INF)
        else:
            out.append(float(tree.range_sum(prev + 1, t - 1)))
            tree.add(prev, -1)
        tree.add(t, 1)
        last_position[line] = t
    return out


def stack_distances_bruteforce(lines: Sequence[int]) -> list[float]:
    """O(N²) reference implementation of :func:`stack_distances`."""
    out: list[float] = []
    for t, line in enumerate(lines):
        prev = None
        for s in range(t - 1, -1, -1):
            if lines[s] == line:
                prev = s
                break
        if prev is None:
            out.append(INF)
        else:
            out.append(float(len(set(lines[prev + 1 : t]))))
    return out


def element_stack_distances(
    events: Sequence[AccessEvent],
    memory: MemoryModel,
    data: str | None = None,
    distances: Sequence[float] | None = None,
) -> dict[tuple[str, tuple[int, ...]], list[float]]:
    """Distances grouped per element: ``(container, indices) -> [d, ...]``.

    The heatmap of Fig. 5b visualizes, per element, the min / median / max
    of this list; the histogram panel plots the full list for a selected
    element.  Restrict to one container with *data*.  Pass precomputed
    *distances* (one per event) to reuse work across queries.
    """
    if distances is None:
        distances = stack_distances(line_trace(events, memory))
    out: dict[tuple[str, tuple[int, ...]], list[float]] = {}
    for event, dist in zip(events, distances):
        if data is not None and event.data != data:
            continue
        out.setdefault((event.data, event.indices), []).append(dist)
    return out
