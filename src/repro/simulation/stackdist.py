"""Stack (reuse) distance computation at cache-line granularity.

"We calculate a metric called the stack distance for each data element,
which is defined as the number of accesses to unique addresses made since
the last reference to the requested data element.  We use the stack
distance at a cache line granularity ...  If an element has not been
referenced yet, its stack distance is set to infinity." (Section V-E)

Three implementations are provided:

- :func:`stack_distances_array` — the array-native production kernel:
  Olken's counting argument reformulated as an offline prefix-dominance
  count over ``np.unique``-factorized line ids, evaluated with a
  binary-indexed merge tree held in one contiguous NumPy ``int64``
  buffer (a chunk-batched Fenwick variant with ``np.add.at`` updates is
  kept alongside for differential testing).  O(N log N) with all
  per-event work inside NumPy;
- :func:`stack_distances` — Olken's algorithm with a pure-Python Fenwick
  (binary indexed) tree over trace positions, O(N log N); retained as the
  differential oracle for the array kernel;
- :func:`stack_distances_bruteforce` — the textbook O(N²) definition, kept
  as the property-test oracle.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.simulation.layout import MemoryModel
from repro.simulation.trace import AccessEvent

__all__ = [
    "stack_distances",
    "stack_distances_array",
    "stack_distances_bruteforce",
    "line_trace",
    "element_stack_distances",
]

INF = math.inf


class _Fenwick:
    """Binary indexed tree over 1-based positions with prefix sums."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, pos: int, delta: int) -> None:
        pos += 1
        while pos <= self.size:
            self.tree[pos] += delta
            pos += pos & (-pos)

    def prefix_sum(self, pos: int) -> int:
        """Sum of entries at positions 0..pos (inclusive)."""
        pos += 1
        total = 0
        while pos > 0:
            total += self.tree[pos]
            pos -= pos & (-pos)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of entries at positions lo..hi (inclusive)."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def line_trace(
    events: Sequence[AccessEvent], memory: MemoryModel
) -> list[int]:
    """Project an access trace onto cache-line ids.

    Events are grouped per container and projected through the batched
    :meth:`~repro.simulation.layout.PhysicalLayout.cache_lines_of` path
    (one matrix product per container) instead of one
    ``memory.address_of`` call per event; trace order is preserved.
    """
    n = len(events)
    if n == 0:
        return []
    positions_by_data: dict[str, list[int]] = {}
    for t, e in enumerate(events):
        positions_by_data.setdefault(e.data, []).append(t)
    out = np.empty(n, dtype=np.int64)
    for data, positions in positions_by_data.items():
        ndims = len(events[positions[0]].indices)
        if ndims:
            matrix = np.array(
                [events[t].indices for t in positions], dtype=np.int64
            )
        else:
            matrix = np.empty((len(positions), 0), dtype=np.int64)
        out[np.asarray(positions, dtype=np.int64)] = memory.lines_of_matrix(
            data, matrix
        )
    return out.tolist()


def stack_distances(lines: Sequence[int]) -> list[float]:
    """Per-access stack distances for a cache-line reference trace.

    The distance of access *t* to line *L* is the number of **distinct**
    lines referenced since the previous access to *L* (exclusive), or
    ``inf`` for the first access (a cold reference).

    Olken's algorithm: a Fenwick tree marks, for each trace position, 1 if
    that position is the *most recent* access to its line.  The number of
    distinct lines between the previous access to L and now is the range
    sum over the marked positions strictly between them.
    """
    n = len(lines)
    tree = _Fenwick(n)
    last_position: dict[int, int] = {}
    out: list[float] = []
    for t, line in enumerate(lines):
        prev = last_position.get(line)
        if prev is None:
            out.append(INF)
        else:
            out.append(float(tree.range_sum(prev + 1, t - 1)))
            tree.add(prev, -1)
        tree.add(t, 1)
        last_position[line] = t
    return out


def _previous_occurrences(ids: np.ndarray) -> np.ndarray:
    """Position of the previous access to each position's line (-1 = none).

    A stable argsort groups positions by line id while preserving trace
    order inside each group, so each position's predecessor in its group
    is exactly its previous occurrence.
    """
    n = ids.size
    order = np.argsort(ids, kind="stable")
    prev_sorted = np.full(n, -1, dtype=np.int64)
    if n > 1:
        grouped = ids[order]
        same = grouped[1:] == grouped[:-1]
        prev_sorted[1:][same] = order[:-1][same]
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    return prev


def _prefix_dominance_counts(prev: np.ndarray) -> np.ndarray:
    """``F[t] = #{s < t : 0 <= prev[s] <= prev[t]}`` for every position.

    The counting core of the array kernel: a binary-indexed merge tree
    over one contiguous ``int64`` buffer.  Level by level, adjacent
    sorted runs of length ``h`` are merged (runs cover contiguous trace
    ranges, so every left-run element *precedes* every right-run element
    in trace order); the number of left-run values ``<=`` each right-run
    value — one batched ``np.searchsorted`` over all runs at once, using
    per-run key offsets — is exactly the pair count that run pair
    contributes to ``F``.  Each ``(s, t)`` pair is counted at the unique
    level where the two positions share a parent run, so the total is
    exact.  Cold positions (``prev < 0``) are mapped to a sentinel above
    every real value so they never count as sources; their own query
    counts are discarded by the caller (positions whose count matters are
    exactly those with ``prev >= 0``).

    Counts are accumulated per *value* rather than per position: non-cold
    ``prev`` values are distinct (two positions sharing a previous
    occurrence would be two next-occurrences of one access), so a plain
    fancy-indexed add is collision-free on every slot the caller reads,
    and the slot permutation never has to be tracked through the merges.
    The lowest four levels are collapsed into one dense broadcast
    comparison over aligned runs of 16.
    """
    n = prev.size
    sentinel = n  # > any real prev value, excluded by the <= comparison
    size = 1 << max(int(n - 1).bit_length(), 0) if n > 1 else 1
    buf = np.full(size, sentinel, dtype=np.int64)
    np.copyto(buf[:n], prev)
    buf[:n][prev < 0] = sentinel
    # Slot `v` accumulates F for the position whose prev-value is v; slot
    # `sentinel` (reached as index -1 by cold queries) absorbs the
    # garbage counts of cold and padding positions.
    counts_val = np.zeros(n + 1, dtype=np.int64)
    # Dense base case: all in-run pairs for aligned runs of length `base`.
    base = 16 if size >= 16 else size
    if base > 1:
        blocks = buf.reshape(-1, base)
        cmp = blocks[:, :, None] <= blocks[:, None, :]
        cmp &= np.arange(base)[:, None] < np.arange(base)[None, :]
        counts_val[buf] += cmp.sum(axis=1).ravel()
        buf = np.sort(blocks, axis=1).ravel()
    segbits = int(sentinel + 1).bit_length()  # distinct key range per run
    half = np.arange(size // 2, dtype=np.int64)
    h = base
    while h < size:
        runs = buf.reshape(-1, 2, h)
        left = runs[:, 0, :].ravel()
        right = runs[:, 1, :].ravel()
        # Per-run key offsets make the concatenated runs globally sorted,
        # so one batched searchsorted ranks every run pair at once.
        offsets = (half >> (h.bit_length() - 1)) << segbits
        key_left = left + offsets
        key_right = right + offsets
        run_start = half & ~(h - 1)  # run index * h
        # Left-run values <= each right-run value: the pair count this
        # run pair contributes to F, and the right values' merge rank.
        le_right = np.searchsorted(key_left, key_right, side="right") - run_start
        # Right-run values strictly < each left value: left merge rank.
        lt_left = np.searchsorted(key_right, key_left, side="left") - run_start
        counts_val[right] += le_right
        dest = half + run_start  # run base in the merged buffer + within
        merged = np.empty_like(buf)
        merged[dest + lt_left] = left
        merged[dest + le_right] = right
        buf = merged
        h *= 2
    # prev == -1 (cold) gathers the garbage slot `sentinel` as index -1.
    return counts_val[prev]


def _prefix_dominance_counts_fenwick(prev: np.ndarray, chunk: int = 1024) -> np.ndarray:
    """Chunked-Fenwick reference implementation of :func:`_prefix_dominance_counts`.

    A Fenwick tree over the value space of ``prev`` stored in one
    contiguous ``int64`` buffer.  The trace is processed in chunks — each
    chunk first answers its queries against the tree (batched prefix
    sums: one gather per Fenwick level, all queries at once), resolves
    pairs *inside* the chunk with a dense triangular comparison, and
    finally inserts its own values in one batched update per level
    (``np.add.at`` handles duplicate paths).  Slower than the merge tree
    on small traces (per-chunk dispatch overhead); kept as a second,
    structurally different implementation for differential testing.
    """
    n = prev.size
    tree = np.zeros(n + 1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    for a in range(0, n, chunk):
        b = min(a + chunk, n)
        block = prev[a:b]
        valid = block >= 0
        if a and valid.any():
            pos = block[valid] + 1
            total = np.zeros(pos.size, dtype=np.int64)
            live = np.arange(pos.size)
            while pos.size:
                total[live] += tree[pos]
                pos = pos - (pos & -pos)
                keep = pos > 0
                pos, live = pos[keep], live[keep]
            counts[a:b][valid] = total
        m = b - a
        if m > 1:
            inside = (block[:, None] >= 0) & (block[:, None] <= block[None, :])
            inside &= np.arange(m)[:, None] < np.arange(m)[None, :]
            counts[a:b] += inside.sum(axis=0)
        pos = block[valid] + 1
        while pos.size:
            np.add.at(tree, pos, 1)
            pos = pos + (pos & -pos)
            pos = pos[pos <= n]
    return counts


def stack_distances_array(
    lines: Sequence[int] | np.ndarray, chunk: int | None = None
) -> np.ndarray:
    """Array-native stack distances — equals :func:`stack_distances`.

    Olken's query "distinct lines since the previous access" is recast as
    a fully offline counting problem.  With ``prev[t]`` the previous
    occurrence of position *t*'s line and ``D[t]`` the number of distinct
    lines in the prefix ``[0..t]``::

        distance(t) = D[t] - prev[t] - 1 + F[t]
        F[t] = #{s < t : 0 <= prev[s] <= prev[t]}

    (the ``D`` term counts lines whose first occurrence falls inside the
    reuse window; ``F`` corrects for lines re-entering the window from
    before it).  All three arrays are computed with NumPy primitives:
    line ids are factorized via ``np.unique``, ``prev`` comes from a
    stable argsort, ``D`` is a cumulative sum, and ``F`` runs through a
    binary-indexed merge tree (:func:`_prefix_dominance_counts`).  Pass
    *chunk* to route ``F`` through the chunk-batched Fenwick tree
    (:func:`_prefix_dominance_counts_fenwick`) instead — slower, kept as
    a structurally independent implementation for differential tests.

    Returns a ``float64`` array with ``inf`` for cold references.  The
    pure-Python :func:`stack_distances` is the differential oracle; the
    two must agree exactly on every trace.
    """
    arr = np.asarray(lines, dtype=np.int64).ravel()
    n = arr.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    _, ids = np.unique(arr, return_inverse=True)
    prev = _previous_occurrences(ids.astype(np.int64, copy=False))
    distinct = np.cumsum(prev < 0)
    if chunk is None:
        dominated = _prefix_dominance_counts(prev)
    else:
        dominated = _prefix_dominance_counts_fenwick(prev, max(1, int(chunk)))
    out = (distinct - prev - 1 + dominated).astype(np.float64)
    out[prev < 0] = np.inf
    return out


def stack_distances_bruteforce(lines: Sequence[int]) -> list[float]:
    """O(N²) reference implementation of :func:`stack_distances`."""
    out: list[float] = []
    for t, line in enumerate(lines):
        prev = None
        for s in range(t - 1, -1, -1):
            if lines[s] == line:
                prev = s
                break
        if prev is None:
            out.append(INF)
        else:
            out.append(float(len(set(lines[prev + 1 : t]))))
    return out


def element_stack_distances(
    events: Sequence[AccessEvent],
    memory: MemoryModel,
    data: str | None = None,
    distances: Sequence[float] | None = None,
) -> dict[tuple[str, tuple[int, ...]], list[float]]:
    """Distances grouped per element: ``(container, indices) -> [d, ...]``.

    The heatmap of Fig. 5b visualizes, per element, the min / median / max
    of this list; the histogram panel plots the full list for a selected
    element.  Restrict to one container with *data*.  Pass precomputed
    *distances* (one per event) to reuse work across queries.
    """
    if distances is None:
        distances = stack_distances(line_trace(events, memory))
    out: dict[tuple[str, tuple[int, ...]], list[float]] = {}
    for event, dist in zip(events, distances):
        if data is not None and event.data != data:
            continue
        out.setdefault((event.data, event.indices), []).append(dist)
    return out
