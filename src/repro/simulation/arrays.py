"""Array-native access trace and locality aggregation (the fast pipeline).

The object pipeline walks per-event :class:`~repro.simulation.trace.AccessEvent`
objects through line projection, stack distances, miss classification and
per-element aggregation — a Python loop per stage.  When a trace was
produced entirely by the vectorized fast path, the
:class:`~repro.simulation.vectorized.VectorBlock` index matrices carry the
same information in columnar form; :func:`build_array_trace` assembles them
into an :class:`ArrayTrace` — parallel ``int64`` columns of container ids,
flattened element keys and global cache-line ids — and every downstream
stage runs as NumPy kernels:

- stack distances via
  :func:`~repro.simulation.stackdist.stack_distances_array` on
  :attr:`ArrayTrace.lines`;
- miss classification via boolean masks
  (:func:`~repro.simulation.cache.miss_masks`);
- per-container / per-element aggregation via ``np.bincount`` over the id
  columns.

Each function is differentially tested to produce results exactly equal
to its object-pipeline counterpart; traces with interpreted portions
return ``None`` from :func:`build_array_trace` and fall back to the
object pipeline.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.simulation.cache import CacheModel, MissCounts, MissKind, miss_masks
from repro.simulation.layout import MemoryModel
from repro.simulation.simulator import SimulationResult

__all__ = [
    "ArrayTrace",
    "build_array_trace",
    "element_distance_lists",
    "per_container_misses_array",
    "per_element_misses_array",
    "container_physical_movement_array",
    "per_container_outcomes",
]


class ArrayTrace:
    """Column-oriented view of a simulated access trace.

    One row per access event, in trace order:

    - ``container_ids[t]`` — index into :attr:`containers` (which lists
      containers in first-access order);
    - ``element_keys[t]`` — the accessed element, flattened row-major
      under the container's :attr:`key_shapes` entry (the per-dimension
      maximum index + 1; a private keying shape, not the array shape);
    - ``lines[t]`` — the global cache-line id of the accessed address.
    """

    __slots__ = ("containers", "container_ids", "element_keys", "key_shapes", "lines")

    def __init__(
        self,
        containers: list[str],
        container_ids: np.ndarray,
        element_keys: np.ndarray,
        key_shapes: list[tuple[int, ...]],
        lines: np.ndarray,
    ):
        self.containers = containers
        self.container_ids = container_ids
        self.element_keys = element_keys
        self.key_shapes = key_shapes
        self.lines = lines

    @property
    def num_events(self) -> int:
        return self.lines.size

    def container_index(self, data: str) -> int | None:
        try:
            return self.containers.index(data)
        except ValueError:
            return None

    def unflatten_keys(self, container: int, keys: np.ndarray) -> list[tuple[int, ...]]:
        """Element index tuples for a batch of flattened keys."""
        shape = self.key_shapes[container]
        if not shape:
            return [()] * int(np.asarray(keys).size)
        cols = np.unravel_index(np.asarray(keys), shape)
        return list(zip(*(col.tolist() for col in cols)))

    def __repr__(self) -> str:
        return (
            f"ArrayTrace(events={self.num_events}, containers={self.containers})"
        )


def build_array_trace(
    result: SimulationResult, memory: MemoryModel
) -> ArrayTrace | None:
    """Assemble the columnar trace from the result's vector blocks.

    Returns ``None`` when the blocks do not cover the whole trace (some
    scope ran through the interpreter) or an index is negative — the
    caller then uses the object pipeline.
    """
    blocks = getattr(result, "vector_blocks", None)
    n = result.num_events
    if not blocks or sum(b.count for b in blocks) != n:
        return None
    containers: list[str] = []
    index_of: dict[str, int] = {}
    grouped: dict[str, list] = {}
    for block in blocks:
        if block.data not in index_of:
            index_of[block.data] = len(containers)
            containers.append(block.data)
        grouped.setdefault(block.data, []).append(block)
    key_shapes: list[tuple[int, ...]] = []
    for name in containers:
        ndims = grouped[name][0].matrix.shape[1]
        if ndims == 0:
            key_shapes.append(())
            continue
        high = np.zeros(ndims, dtype=np.int64)
        for block in grouped[name]:
            if block.matrix.size:
                if block.matrix.min() < 0:
                    return None
                np.maximum(high, block.matrix.max(axis=0), out=high)
        key_shapes.append(tuple(int(h) + 1 for h in high))
    container_ids = np.empty(n, dtype=np.int64)
    element_keys = np.empty(n, dtype=np.int64)
    lines = np.empty(n, dtype=np.int64)
    for block in blocks:
        container = index_of[block.data]
        layout = memory.layout(block.data)
        dest = slice(block.start, block.start + block.stride * block.count, block.stride)
        container_ids[dest] = container
        shape = key_shapes[container]
        if shape:
            multipliers = np.ones(len(shape), dtype=np.int64)
            for d in range(len(shape) - 2, -1, -1):
                multipliers[d] = multipliers[d + 1] * shape[d + 1]
            element_keys[dest] = block.matrix @ multipliers
        else:
            element_keys[dest] = 0
        lines[dest] = layout.cache_lines_of(block.matrix, memory.line_size)
    return ArrayTrace(containers, container_ids, element_keys, key_shapes, lines)


def element_distance_lists(
    trace: ArrayTrace,
    distances: np.ndarray,
    data: str | None = None,
) -> dict[tuple[str, tuple[int, ...]], list[float]]:
    """Distances grouped per element — equals
    :func:`~repro.simulation.stackdist.element_stack_distances`.

    One stable lexsort groups rows by (container, element); distances
    within a group keep trace order, matching the dict-of-list loop.
    """
    n = trace.num_events
    if n == 0:
        return {}
    order = np.lexsort((trace.element_keys, trace.container_ids))
    cids = trace.container_ids[order]
    keys = trace.element_keys[order]
    dist = np.asarray(distances, dtype=np.float64)[order]
    changed = np.flatnonzero((cids[1:] != cids[:-1]) | (keys[1:] != keys[:-1])) + 1
    starts = np.concatenate(([0], changed))
    ends = np.concatenate((changed, [n]))
    rep_cids = cids[starts]
    rep_keys = keys[starts]
    rep_indices: list = [None] * starts.size
    for container, _ in enumerate(trace.containers):
        members = np.flatnonzero(rep_cids == container)
        if not members.size:
            continue
        for group, indices in zip(
            members.tolist(), trace.unflatten_keys(container, rep_keys[members])
        ):
            rep_indices[group] = indices
    out: dict[tuple[str, tuple[int, ...]], list[float]] = {}
    for group, (start, end) in enumerate(zip(starts.tolist(), ends.tolist())):
        name = trace.containers[int(rep_cids[group])]
        if data is not None and name != data:
            continue
        out[(name, rep_indices[group])] = dist[start:end].tolist()
    return out


def per_container_misses_array(
    trace: ArrayTrace, distances: np.ndarray, model: CacheModel
) -> dict[str, MissCounts]:
    """Miss counts per container — equals
    :func:`~repro.simulation.movement.per_container_misses`."""
    cold, capacity = miss_masks(distances, model)
    ncontainers = len(trace.containers)
    total = np.bincount(trace.container_ids, minlength=ncontainers)
    cold_per = np.bincount(trace.container_ids[cold], minlength=ncontainers)
    capacity_per = np.bincount(trace.container_ids[capacity], minlength=ncontainers)
    out: dict[str, MissCounts] = {}
    for container, name in enumerate(trace.containers):
        k = int(cold_per[container])
        p = int(capacity_per[container])
        out[name] = MissCounts(
            hits=int(total[container]) - k - p, cold=k, capacity=p
        )
    return out


def per_element_misses_array(
    trace: ArrayTrace,
    distances: np.ndarray,
    model: CacheModel,
    data: str,
) -> dict[tuple[int, ...], MissCounts]:
    """Per-element miss counts of one container — equals
    :func:`~repro.simulation.movement.per_element_misses`."""
    container = trace.container_index(data)
    if container is None:
        return {}
    member = trace.container_ids == container
    keys = trace.element_keys[member]
    cold, capacity = miss_masks(np.asarray(distances, dtype=np.float64)[member], model)
    size = 1
    for extent in trace.key_shapes[container]:
        size *= extent
    total = np.bincount(keys, minlength=size)
    cold_per = np.bincount(keys[cold], minlength=size)
    capacity_per = np.bincount(keys[capacity], minlength=size)
    present = np.flatnonzero(total)
    out: dict[tuple[int, ...], MissCounts] = {}
    for indices, t, k, p in zip(
        trace.unflatten_keys(container, present),
        total[present].tolist(),
        cold_per[present].tolist(),
        capacity_per[present].tolist(),
    ):
        out[indices] = MissCounts(hits=t - k - p, cold=k, capacity=p)
    return out


def container_physical_movement_array(
    trace: ArrayTrace, distances: np.ndarray, model: CacheModel
) -> dict[str, int]:
    """Estimated bytes moved per container — equals
    :func:`~repro.simulation.movement.container_physical_movement`."""
    misses = per_container_misses_array(trace, distances, model)
    return {name: counts.misses * model.line_size for name, counts in misses.items()}


#: Outcome-code layout used by :func:`per_container_outcomes`.
_OUTCOME_CODES = {
    MissKind.HIT: 0,
    MissKind.COLD: 1,
    MissKind.CAPACITY: 2,
    MissKind.CONFLICT: 3,
}


def per_container_outcomes(
    trace: ArrayTrace, kinds: Sequence[MissKind]
) -> dict[str, MissCounts]:
    """Attribute per-access outcomes (e.g. from a set-associative
    simulation) to containers without materializing events."""
    codes = np.fromiter(
        (_OUTCOME_CODES[k] for k in kinds), dtype=np.int64, count=len(kinds)
    )
    combined = np.bincount(
        trace.container_ids * 4 + codes, minlength=4 * len(trace.containers)
    )
    out: dict[str, MissCounts] = {}
    for container, name in enumerate(trace.containers):
        hits, cold, capacity, conflict = (
            int(x) for x in combined[4 * container : 4 * container + 4]
        )
        out[name] = MissCounts(
            hits=hits, cold=cold, capacity=capacity, conflict=conflict
        )
    return out
