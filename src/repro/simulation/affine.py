"""Affine-form analysis of memlet subsets over map parameters.

The vectorized simulation fast path (:mod:`~repro.simulation.vectorized`)
applies to memlets whose subset expressions are *affine* in the enclosing
map's parameters: every index is of the form ``c0 + c1*p1 + ... + cn*pn``
where the ``ci`` are expressions free of the parameters (they may still
reference size symbols, which are concrete at simulation time).  For such
subsets the full access trace over an iteration space can be materialized
with broadcast array arithmetic instead of per-iteration ``eval`` calls.

AutoLALA-style locality analyses exploit the same structure analytically;
here we only need the decomposition itself, which this module provides:

- :func:`affine_form` — decompose one expression into offset + integer
  combination of parameters (or report that it is not affine);
- :class:`AffineSubset` — the per-dimension decomposition of a whole
  memlet subset, with the constraints that make an aggressive rewrite of
  the hot loop safe (range extents and steps must not depend on the
  parameters, so the number of points per iteration is constant).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.sdfg.memlet import Memlet
from repro.symbolic.expr import (
    Add,
    Expr,
    Mul,
    Symbol,
    add,
    evaluate_int,
    mul,
    sub,
)

__all__ = ["AffineForm", "AffineDim", "AffineSubset", "affine_form"]

_ZERO = add()  # Integer(0) via the canonical constructor
_ONE = mul()  # Integer(1)


class AffineForm:
    """``offset + Σ coeffs[p]·p`` with parameter-free offset/coefficients.

    Both the offset and the coefficients are symbolic expressions that do
    not mention any map parameter; they are evaluated once per simulated
    scope (under the concrete symbol environment), not once per iteration.
    """

    __slots__ = ("offset", "coeffs")

    def __init__(self, offset: Expr, coeffs: Mapping[str, Expr]):
        self.offset = offset
        self.coeffs = dict(coeffs)

    def concretize(self, env: Mapping[str, int]) -> tuple[int, dict[str, int]]:
        """Evaluate offset and coefficients to concrete integers."""
        return (
            evaluate_int(self.offset, env),
            {p: evaluate_int(c, env) for p, c in self.coeffs.items()},
        )

    def __repr__(self) -> str:
        terms = " + ".join(f"({c})*{p}" for p, c in self.coeffs.items())
        return f"AffineForm({self.offset}{' + ' + terms if terms else ''})"


def affine_form(expr: Expr, params: frozenset[str]) -> AffineForm | None:
    """Decompose *expr* as affine in *params*, or return ``None``.

    Any expression whose free symbols are disjoint from *params* is
    trivially affine (it is its own offset).  Sums and products with at
    most one parameter-dependent factor recurse; everything else —
    ``i*j``, ``i**2``, ``i // 2``, ``Min(i, j)`` — is non-affine and
    handled by the interpreter fallback.
    """
    if not (expr.free_symbols() & params):
        return AffineForm(expr, {})
    if isinstance(expr, Symbol):
        return AffineForm(_ZERO, {expr.name: _ONE})
    if isinstance(expr, Add):
        offset = _ZERO
        coeffs: dict[str, Expr] = {}
        for arg in expr.args:
            part = affine_form(arg, params)
            if part is None:
                return None
            offset = add(offset, part.offset)
            for p, c in part.coeffs.items():
                coeffs[p] = add(coeffs.get(p, _ZERO), c)
        return AffineForm(offset, {p: c for p, c in coeffs.items() if c != _ZERO})
    if isinstance(expr, Mul):
        dependent = [a for a in expr.args if a.free_symbols() & params]
        if len(dependent) != 1:
            return None
        factor = mul(*(a for a in expr.args if not (a.free_symbols() & params)))
        inner = affine_form(dependent[0], params)
        if inner is None:
            return None
        return AffineForm(
            mul(factor, inner.offset),
            {p: mul(factor, c) for p, c in inner.coeffs.items()},
        )
    return None


class AffineDim:
    """One subset dimension: affine begin, parameter-free extent and step.

    ``extent`` (``end - begin``) and ``step`` are ``None`` for point
    dimensions.  For range dimensions they must be parameter-free, which
    guarantees a fixed number of covered indices per iteration — the
    property the vectorized trace layout relies on.
    """

    __slots__ = ("begin", "extent", "step")

    def __init__(self, begin: AffineForm, extent: Expr | None, step: Expr | None):
        self.begin = begin
        self.extent = extent
        self.step = step

    @property
    def is_point(self) -> bool:
        return self.extent is None

    def local_offsets(self, env: Mapping[str, int]) -> list[int]:
        """Concrete offsets of the covered indices relative to ``begin``.

        Mirrors the interpreter's inclusive-end semantics: a positive step
        covers ``0..extent`` and a negative step ``0..extent`` downward.
        A zero step is rejected, matching the interpreter's guard.
        """
        if self.extent is None:
            return [0]
        extent = evaluate_int(self.extent, env)
        step = evaluate_int(self.step, env)
        if step == 0:
            raise SimulationError("memlet subset step evaluated to zero")
        if step > 0:
            return list(range(0, extent + 1, step))
        return list(range(0, extent - 1, step))


class AffineSubset:
    """A memlet subset decomposed dimension-by-dimension.

    Build with :meth:`from_memlet`, which returns ``None`` when any
    dimension falls outside the affine class (those memlets take the
    interpreter path instead).
    """

    __slots__ = ("dims",)

    def __init__(self, dims: list[AffineDim]):
        self.dims = dims

    @classmethod
    def from_memlet(cls, memlet: Memlet, params: frozenset[str]) -> "AffineSubset | None":
        dims: list[AffineDim] = []
        for r in memlet.subset.ranges:
            begin = affine_form(r.begin, params)
            if begin is None:
                return None
            if r.is_point:
                dims.append(AffineDim(begin, None, None))
                continue
            extent = sub(r.end, r.begin)
            if extent.free_symbols() & params:
                return None
            if r.step.free_symbols() & params:
                return None
            dims.append(AffineDim(begin, extent, r.step))
        return cls(dims)

    def __repr__(self) -> str:
        return f"AffineSubset({len(self.dims)} dims)"
