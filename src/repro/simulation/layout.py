"""Physical data layout: elements → byte addresses → cache lines.

"The remaining information, like individual element sizes, alignment,
offset, and padding, can all be extracted from the program's intermediate
representation" (paper Section V-D).  A :class:`PhysicalLayout` concretizes
one container's descriptor under the simulation parameters; a
:class:`MemoryModel` places several containers in one address space so
cache lines are shared and disambiguated exactly as on real hardware.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.sdfg.data import Array, Data, Scalar
from repro.sdfg.sdfg import SDFG

__all__ = ["PhysicalLayout", "MemoryModel"]


def _align_up(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


class PhysicalLayout:
    """Concrete physical layout of one container.

    Parameters
    ----------
    desc:
        The data descriptor (shape/strides/offset evaluated under *env*).
    env:
        Symbol values used to concretize the symbolic layout.
    base_address:
        Byte address of the allocation base.
    """

    def __init__(
        self,
        desc: Data,
        env: Mapping[str, int] | None = None,
        base_address: int = 0,
    ):
        self.desc = desc
        self.env = dict(env or {})
        self.base_address = int(base_address)
        self.itemsize = desc.dtype.itemsize
        if isinstance(desc, Scalar):
            self.shape: tuple[int, ...] = ()
            self.strides: tuple[int, ...] = ()
            self.start_offset = 0
        elif isinstance(desc, Array):
            try:
                self.shape = tuple(int(s.evaluate(self.env)) for s in desc.shape)
                self.strides = tuple(int(s.evaluate(self.env)) for s in desc.strides)
                self.start_offset = int(desc.start_offset.evaluate(self.env))
            except Exception as exc:
                raise SimulationError(
                    f"cannot concretize layout: {exc}"
                ) from exc
        else:  # pragma: no cover - descriptors are Scalar or Array
            raise SimulationError(f"unsupported descriptor {desc!r}")

    # -- addressing ------------------------------------------------------------
    def element_address(self, indices: Sequence[int]) -> int:
        """Byte address of an element."""
        if len(indices) != len(self.shape):
            raise SimulationError(
                f"expected {len(self.shape)} indices, got {len(indices)}"
            )
        offset = self.start_offset
        for i, stride in zip(indices, self.strides):
            offset += i * stride
        return self.base_address + offset * self.itemsize

    def cache_line_of(self, indices: Sequence[int], line_size: int) -> int:
        """Cache-line id (global, address // line size) of an element."""
        return self.element_address(indices) // line_size

    def size_bytes(self) -> int:
        """Allocated extent in bytes (including stride padding)."""
        if not self.shape:
            return self.itemsize
        extent = 1
        for size, stride in zip(self.shape, self.strides):
            extent += (size - 1) * stride
        return (self.start_offset + extent) * self.itemsize

    def end_address(self) -> int:
        return self.base_address + self.size_bytes()

    # -- reverse mapping -----------------------------------------------------------
    def iter_elements(self) -> Iterator[tuple[int, ...]]:
        """All element indices in row-major order."""
        if not self.shape:
            yield ()
            return
        pos = [0] * len(self.shape)
        while True:
            yield tuple(pos)
            axis = len(self.shape) - 1
            while axis >= 0:
                pos[axis] += 1
                if pos[axis] < self.shape[axis]:
                    break
                pos[axis] = 0
                axis -= 1
            if axis < 0:
                return

    def elements_on_line(
        self, line: int, line_size: int
    ) -> list[tuple[int, ...]]:
        """Elements of *this container* that live on cache line *line*.

        This is the spatial-locality overlay of Fig. 5a: selecting an
        element highlights everything pulled into the cache with it.
        """
        return [
            idx
            for idx in self.iter_elements()
            if self.cache_line_of(idx, line_size) == line
        ]

    def neighbors_in_line(
        self, indices: Sequence[int], line_size: int
    ) -> list[tuple[int, ...]]:
        """Elements sharing the cache line of ``indices`` (including it)."""
        return self.elements_on_line(self.cache_line_of(indices, line_size), line_size)


class MemoryModel:
    """Lays out a program's containers in one linear address space.

    Containers are placed in registration order, each aligned to its
    descriptor's requested alignment (default: the element size).  The
    model answers element→line queries across containers, so false sharing
    between adjacent containers and row wrap-around (Fig. 8c) are modeled.
    """

    def __init__(
        self,
        sdfg: SDFG,
        env: Mapping[str, int] | None = None,
        line_size: int = 64,
        include: Sequence[str] | None = None,
        base_address: int = 0,
    ):
        if line_size <= 0:
            raise SimulationError("line size must be positive")
        self.sdfg = sdfg
        self.env = dict(env or {})
        self.line_size = int(line_size)
        self.layouts: dict[str, PhysicalLayout] = {}
        cursor = int(base_address)
        names = list(include) if include is not None else list(sdfg.arrays)
        for name in names:
            desc = sdfg.arrays[name]
            alignment = getattr(desc, "alignment", 0) or desc.dtype.itemsize
            cursor = _align_up(cursor, alignment)
            layout = PhysicalLayout(desc, self.env, base_address=cursor)
            self.layouts[name] = layout
            cursor = layout.end_address()

    def layout(self, data: str) -> PhysicalLayout:
        try:
            return self.layouts[data]
        except KeyError:
            raise SimulationError(f"container {data!r} is not in the memory model") from None

    def address_of(self, data: str, indices: Sequence[int]) -> int:
        return self.layout(data).element_address(indices)

    def line_of(self, data: str, indices: Sequence[int]) -> int:
        return self.address_of(data, indices) // self.line_size

    def elements_on_line(self, line: int) -> dict[str, list[tuple[int, ...]]]:
        """All elements (of any container) on a cache line."""
        out: dict[str, list[tuple[int, ...]]] = {}
        for name, layout in self.layouts.items():
            start_line = layout.base_address // self.line_size
            end_line = (layout.end_address() - 1) // self.line_size
            if not (start_line <= line <= end_line):
                continue
            elements = layout.elements_on_line(line, self.line_size)
            if elements:
                out[name] = elements
        return out

    def total_lines(self) -> int:
        """Number of distinct cache lines spanned by all containers."""
        lines: set[int] = set()
        for layout in self.layouts.values():
            first = layout.base_address // self.line_size
            last = (layout.end_address() - 1) // self.line_size
            lines.update(range(first, last + 1))
        return len(lines)
