"""Physical data layout: elements → byte addresses → cache lines.

"The remaining information, like individual element sizes, alignment,
offset, and padding, can all be extracted from the program's intermediate
representation" (paper Section V-D).  A :class:`PhysicalLayout` concretizes
one container's descriptor under the simulation parameters; a
:class:`MemoryModel` places several containers in one address space so
cache lines are shared and disambiguated exactly as on real hardware.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sdfg.data import Array, Data, Scalar
from repro.sdfg.sdfg import SDFG

__all__ = ["PhysicalLayout", "MemoryModel"]


def _align_up(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


class PhysicalLayout:
    """Concrete physical layout of one container.

    Parameters
    ----------
    desc:
        The data descriptor (shape/strides/offset evaluated under *env*).
    env:
        Symbol values used to concretize the symbolic layout.
    base_address:
        Byte address of the allocation base.
    """

    def __init__(
        self,
        desc: Data,
        env: Mapping[str, int] | None = None,
        base_address: int = 0,
    ):
        self.desc = desc
        self.env = dict(env or {})
        self.base_address = int(base_address)
        self.itemsize = desc.dtype.itemsize
        if isinstance(desc, Scalar):
            self.shape: tuple[int, ...] = ()
            self.strides: tuple[int, ...] = ()
            self.start_offset = 0
        elif isinstance(desc, Array):
            try:
                self.shape = tuple(int(s.evaluate(self.env)) for s in desc.shape)
                self.strides = tuple(int(s.evaluate(self.env)) for s in desc.strides)
                self.start_offset = int(desc.start_offset.evaluate(self.env))
            except Exception as exc:  # noqa: BLE001 — converted to SimulationError
                raise SimulationError(
                    f"cannot concretize layout: {exc}"
                ) from exc
        else:  # pragma: no cover - descriptors are Scalar or Array
            raise SimulationError(f"unsupported descriptor {desc!r}")
        # Element offsets span [start_offset + min_span, start_offset + max_span]
        # where each dimension contributes (size-1)*stride of either sign.
        # Negative strides walk *down* from the start offset, so the extent
        # must grow by the |stride| span, not shrink (reversed layouts would
        # otherwise overlap their neighbors in a MemoryModel).
        min_span = sum(
            min(0, (max(size, 1) - 1) * stride)
            for size, stride in zip(self.shape, self.strides)
        )
        max_span = sum(
            max(0, (max(size, 1) - 1) * stride)
            for size, stride in zip(self.shape, self.strides)
        )
        self.min_offset = self.start_offset + min_span
        self.max_offset = self.start_offset + max_span
        if self.shape and self.min_offset < 0:
            raise SimulationError(
                f"layout places elements {-self.min_offset} elements before "
                f"the allocation base (start offset {self.start_offset} does "
                f"not compensate for negative strides {self.strides})"
            )

    # -- addressing ------------------------------------------------------------
    def element_address(self, indices: Sequence[int]) -> int:
        """Byte address of an element."""
        if len(indices) != len(self.shape):
            raise SimulationError(
                f"expected {len(self.shape)} indices, got {len(indices)}"
            )
        offset = self.start_offset
        for i, stride in zip(indices, self.strides):
            offset += i * stride
        return self.base_address + offset * self.itemsize

    def element_addresses(self, indices: np.ndarray) -> np.ndarray:
        """Byte addresses of a batch of elements (vectorized).

        *indices* is an ``(n, ndims)`` integer matrix — one row per
        element.  This is the array-native counterpart of
        :meth:`element_address`; the locality pipeline projects whole
        index matrices through it in one broadcast.
        """
        matrix = np.asarray(indices, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.shape):
            raise SimulationError(
                f"expected an (n, {len(self.shape)}) index matrix, "
                f"got shape {matrix.shape}"
            )
        if matrix.shape[1]:
            offsets = self.start_offset + matrix @ np.asarray(
                self.strides, dtype=np.int64
            )
        else:
            offsets = np.full(matrix.shape[0], self.start_offset, dtype=np.int64)
        return self.base_address + offsets * self.itemsize

    def cache_line_of(self, indices: Sequence[int], line_size: int) -> int:
        """Cache-line id (global, address // line size) of an element."""
        return self.element_address(indices) // line_size

    def cache_lines_of(self, indices: np.ndarray, line_size: int) -> np.ndarray:
        """Cache-line ids of a batch of elements (vectorized)."""
        return self.element_addresses(indices) // line_size

    def size_bytes(self) -> int:
        """Allocated extent in bytes (including stride padding).

        Computed from the minimum and maximum element byte offsets, so
        layouts with negative strides (reversed dimensions) claim their
        full span instead of collapsing.
        """
        if not self.shape:
            return self.itemsize
        return (self.max_offset + 1) * self.itemsize

    def end_address(self) -> int:
        return self.base_address + self.size_bytes()

    # -- reverse mapping -----------------------------------------------------------
    def iter_elements(self) -> Iterator[tuple[int, ...]]:
        """All element indices in row-major order."""
        if not self.shape:
            yield ()
            return
        pos = [0] * len(self.shape)
        while True:
            yield tuple(pos)
            axis = len(self.shape) - 1
            while axis >= 0:
                pos[axis] += 1
                if pos[axis] < self.shape[axis]:
                    break
                pos[axis] = 0
                axis -= 1
            if axis < 0:
                return

    def elements_on_line(
        self, line: int, line_size: int
    ) -> list[tuple[int, ...]]:
        """Elements of *this container* that live on cache line *line*.

        This is the spatial-locality overlay of Fig. 5a: selecting an
        element highlights everything pulled into the cache with it.

        Solved by direct address-range arithmetic: the line's byte range
        is converted to an element-offset interval, and per dimension the
        feasible index range is computed from the remaining dimensions'
        minimum/maximum offset contributions — no scan over the whole
        container.  Results are in row-major index order, exactly as the
        old full scan produced them.
        """
        lo = line * line_size - self.base_address
        hi = lo + line_size - 1
        # Element offsets whose *starting* byte falls inside the line.
        lo_off = -((-lo) // self.itemsize)
        hi_off = hi // self.itemsize
        if hi_off < lo_off:
            return []
        if not self.shape:
            return [()] if lo_off <= 0 <= hi_off else []
        if any(s == 0 for s in self.shape):
            return []
        ndims = len(self.shape)
        # Suffix min/max offset contributions of dimensions k..ndims-1.
        rem_min = [0] * (ndims + 1)
        rem_max = [0] * (ndims + 1)
        for k in range(ndims - 1, -1, -1):
            span = (self.shape[k] - 1) * self.strides[k]
            rem_min[k] = rem_min[k + 1] + min(0, span)
            rem_max[k] = rem_max[k + 1] + max(0, span)
        out: list[tuple[int, ...]] = []
        idx = [0] * ndims

        def descend(k: int, cur: int) -> None:
            if k == ndims:
                out.append(tuple(idx))
                return
            stride = self.strides[k]
            # Need cur + i*stride + [rem_min, rem_max] to meet [lo_off, hi_off].
            a = lo_off - cur - rem_max[k + 1]
            b = hi_off - cur - rem_min[k + 1]
            if stride > 0:
                i_min, i_max = -((-a) // stride), b // stride
            elif stride < 0:
                i_min, i_max = -((-b) // stride), a // stride
            elif a <= 0 <= b:
                i_min, i_max = 0, self.shape[k] - 1
            else:
                return
            for i in range(max(i_min, 0), min(i_max, self.shape[k] - 1) + 1):
                idx[k] = i
                descend(k + 1, cur + i * stride)

        descend(0, self.start_offset)
        return out

    def neighbors_in_line(
        self, indices: Sequence[int], line_size: int
    ) -> list[tuple[int, ...]]:
        """Elements sharing the cache line of ``indices`` (including it)."""
        return self.elements_on_line(self.cache_line_of(indices, line_size), line_size)


class MemoryModel:
    """Lays out a program's containers in one linear address space.

    Containers are placed in registration order, each aligned to its
    descriptor's requested alignment (default: the element size).  The
    model answers element→line queries across containers, so false sharing
    between adjacent containers and row wrap-around (Fig. 8c) are modeled.
    """

    def __init__(
        self,
        sdfg: SDFG,
        env: Mapping[str, int] | None = None,
        line_size: int = 64,
        include: Sequence[str] | None = None,
        base_address: int = 0,
    ):
        if line_size <= 0:
            raise SimulationError("line size must be positive")
        self.sdfg = sdfg
        self.env = dict(env or {})
        self.line_size = int(line_size)
        self.layouts: dict[str, PhysicalLayout] = {}
        self._line_cache: dict[int, dict[str, list[tuple[int, ...]]]] = {}
        cursor = int(base_address)
        names = list(include) if include is not None else list(sdfg.arrays)
        for name in names:
            desc = sdfg.arrays[name]
            alignment = getattr(desc, "alignment", 0) or desc.dtype.itemsize
            cursor = _align_up(cursor, alignment)
            layout = PhysicalLayout(desc, self.env, base_address=cursor)
            self.layouts[name] = layout
            cursor = layout.end_address()

    def layout(self, data: str) -> PhysicalLayout:
        try:
            return self.layouts[data]
        except KeyError:
            raise SimulationError(f"container {data!r} is not in the memory model") from None

    def address_of(self, data: str, indices: Sequence[int]) -> int:
        return self.layout(data).element_address(indices)

    def line_of(self, data: str, indices: Sequence[int]) -> int:
        return self.address_of(data, indices) // self.line_size

    def elements_on_line(self, line: int) -> dict[str, list[tuple[int, ...]]]:
        """All elements (of any container) on a cache line.

        Memoized per line: the spatial-locality overlay queries the same
        line on every hover, and layouts are immutable once the model is
        built.  Treat the returned mapping as read-only.
        """
        cached = self._line_cache.get(line)
        if cached is not None:
            return cached
        out: dict[str, list[tuple[int, ...]]] = {}
        for name, layout in self.layouts.items():
            start_line = layout.base_address // self.line_size
            end_line = (layout.end_address() - 1) // self.line_size
            if not (start_line <= line <= end_line):
                continue
            elements = layout.elements_on_line(line, self.line_size)
            if elements:
                out[name] = elements
        self._line_cache[line] = out
        return out

    def lines_of_matrix(self, data: str, indices: np.ndarray) -> np.ndarray:
        """Cache-line ids for a batch of one container's elements."""
        return self.layout(data).cache_lines_of(indices, self.line_size)

    def total_lines(self) -> int:
        """Number of distinct cache lines spanned by all containers."""
        lines: set[int] = set()
        for layout in self.layouts.values():
            first = layout.base_address // self.line_size
            last = (layout.end_address() - 1) // self.line_size
            lines.update(range(first, last + 1))
        return len(lines)
