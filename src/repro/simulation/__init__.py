"""Parameterized access-pattern simulation (the local view backend).

This subpackage implements the paper's Section V: given a program region
parameterized with small concrete sizes, it

1. enumerates the iteration spaces of the region's map scopes
   (:mod:`~repro.simulation.iterspace`),
2. evaluates every memlet's symbolic subset at every iteration to obtain
   the *exact access pattern* per data container
   (:mod:`~repro.simulation.simulator`, producing
   :mod:`~repro.simulation.trace` events),
3. maps logical elements to physical bytes and cache lines from the data
   descriptors' strides/alignment (:mod:`~repro.simulation.layout`),
4. computes stack (reuse) distances at cache-line granularity
   (:mod:`~repro.simulation.stackdist`),
5. classifies cold and capacity misses under a fully-associative LRU model
   (:mod:`~repro.simulation.cache`), and
6. estimates the resulting *physical* data movement
   (:mod:`~repro.simulation.movement`).

Related-access derivation (which elements are touched by the same
computations, Section V-C) lives in :mod:`~repro.simulation.related`.

Stages 3–6 exist twice: as the per-event *object pipeline* (the modules
above) and as the NumPy *array pipeline*
(:mod:`~repro.simulation.arrays`), which runs whenever the trace was
produced entirely by the vectorized fast path.  The two are
differentially tested to agree exactly.
"""

from repro.simulation.arrays import (
    ArrayTrace,
    build_array_trace,
    container_physical_movement_array,
    element_distance_lists,
    per_container_misses_array,
    per_element_misses_array,
)
from repro.simulation.cache import (
    CacheModel,
    MissKind,
    classify_accesses,
    classify_three_way,
    count_misses,
    count_misses_array,
    count_three_way,
    miss_masks,
    simulate_lru,
    simulate_set_associative,
)
from repro.simulation.iterspace import iteration_points
from repro.simulation.layout import MemoryModel, PhysicalLayout
from repro.simulation.movement import (
    container_physical_movement,
    edge_physical_movement,
    per_container_misses,
    per_element_misses,
)
from repro.simulation.related import related_access_counts
from repro.simulation.simulator import AccessPatternSimulator, SimulationResult, simulate_state
from repro.simulation.stackdist import (
    element_stack_distances,
    stack_distances,
    stack_distances_array,
    stack_distances_bruteforce,
)
from repro.simulation.trace import AccessEvent, AccessKind
from repro.simulation.affine import AffineForm, AffineSubset, affine_form
from repro.simulation.vectorized import fast_line_trace, simulate_scope_vectorized

__all__ = [
    "AffineForm",
    "AffineSubset",
    "affine_form",
    "fast_line_trace",
    "simulate_scope_vectorized",
    "AccessEvent",
    "AccessKind",
    "AccessPatternSimulator",
    "SimulationResult",
    "simulate_state",
    "iteration_points",
    "PhysicalLayout",
    "MemoryModel",
    "stack_distances",
    "stack_distances_array",
    "stack_distances_bruteforce",
    "element_stack_distances",
    "CacheModel",
    "MissKind",
    "classify_accesses",
    "classify_three_way",
    "count_misses",
    "count_misses_array",
    "count_three_way",
    "miss_masks",
    "simulate_lru",
    "simulate_set_associative",
    "container_physical_movement",
    "edge_physical_movement",
    "per_container_misses",
    "per_element_misses",
    "ArrayTrace",
    "build_array_trace",
    "container_physical_movement_array",
    "element_distance_lists",
    "per_container_misses_array",
    "per_element_misses_array",
    "related_access_counts",
]
