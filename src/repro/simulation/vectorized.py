"""NumPy-vectorized fast path for access-trace generation.

The interpreter in :mod:`~repro.simulation.simulator` evaluates every
memlet subset with per-iteration ``eval`` calls — a handful of Python-VM
round trips per access event.  For memlets whose subsets are *affine* in
the map parameters (:mod:`~repro.simulation.affine`), the whole trace of
a map scope can instead be materialized with array arithmetic:

1. broadcast the scope's concrete parameter ranges into flat index grids
   (one ``int64`` column per parameter, row-major / last-parameter-fastest
   order — exactly the interpreter's iteration order);
2. combine the grids with each memlet's affine offsets and coefficients
   into per-dimension index columns (one matrix per memlet);
3. assemble :class:`~repro.simulation.trace.AccessEvent` objects in bulk
   with strided slice assignment, so the per-event Python cost is one
   constructor call instead of several ``eval`` s.

Memlets that are *not* affine fall back to the interpreter's compiled
subsets per memlet, inside the same scope walk, so mixed scopes still
produce byte-identical traces.

The index matrices are additionally kept on the result (as
:class:`VectorBlock` records) so the element→address→cache-line
projection of the locality pipeline can run as a single broadcast
(:func:`fast_line_trace`) instead of a per-event Python loop.
"""

from __future__ import annotations

import gc
from itertools import repeat
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import MapEntry, Tasklet
from repro.sdfg.state import SDFGState
from repro.simulation.affine import AffineSubset
from repro.simulation.trace import AccessEvent, AccessKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.timing import StageTimings
    from repro.simulation.layout import MemoryModel
    from repro.simulation.simulator import SimulationResult

__all__ = ["VectorBlock", "simulate_scope_vectorized", "fast_line_trace"]


class VectorBlock:
    """Index matrix of one vectorized memlet, with its trace positions.

    The events of one (tasklet, edge, subset-point) column occupy
    positions ``start, start + stride, ...`` in the global event list
    (``stride`` is the scope's events-per-iteration).  ``matrix`` holds
    the per-event element indices, shape ``(count, ndims)``.
    """

    __slots__ = ("data", "matrix", "start", "stride", "count")

    def __init__(self, data: str, matrix: np.ndarray, start: int, stride: int, count: int):
        self.data = data
        self.matrix = matrix
        self.start = start
        self.stride = stride
        self.count = count

    def __repr__(self) -> str:
        return (
            f"VectorBlock({self.data}, count={self.count}, "
            f"start={self.start}, stride={self.stride})"
        )


class _VecPlan:
    """A vectorized edge: the scope-wide index matrix, tuples on demand.

    The index tuples back the object trace only; they are built lazily
    (first access) so the array pipeline, which consumes ``matrix``
    directly, never pays the per-event tuple cost.
    """

    __slots__ = ("data", "kind", "width", "matrix", "_tuples")

    def __init__(self, data: str, kind: AccessKind, width: int, matrix: np.ndarray):
        self.data = data
        self.kind = kind
        self.width = width
        self.matrix = matrix
        self._tuples: list | None = None

    @property
    def tuples(self) -> list:
        if self._tuples is None:
            matrix = self.matrix
            if matrix.shape[1] == 0:
                self._tuples = [()] * matrix.shape[0]
            else:
                self._tuples = list(
                    zip(*(matrix[:, d].tolist() for d in range(matrix.shape[1])))
                )
        return self._tuples


class _InterpPlan:
    """A non-affine edge: evaluated per iteration via the compiled subset."""

    __slots__ = ("data", "kind", "compiled")

    def __init__(self, data: str, kind: AccessKind, compiled):
        self.data = data
        self.kind = kind
        self.compiled = compiled


def _iteration_grids(
    entry: MapEntry, env: dict
) -> tuple[list[np.ndarray], int, list[tuple[int, ...]]] | None:
    """Flat parameter columns + iteration points, in interpreter order.

    Returns ``None`` for an empty iteration space (any dimension with no
    indices), matching the interpreter's "loop body never runs" case.
    """
    map_obj = entry.map
    try:
        concrete = [r.concretize(env) for r in map_obj.ranges]
    except Exception as exc:  # noqa: BLE001 — converted to SimulationError
        raise SimulationError(
            f"cannot concretize map {map_obj.label!r}: {exc}; provide values "
            f"for {sorted(set().union(*(r.free_symbols() for r in map_obj.ranges)))}"
        ) from exc
    dims = [np.fromiter(c, dtype=np.int64, count=len(c)) for c in concrete]
    if not dims:
        return [], 1, [()]
    if any(d.size == 0 for d in dims):
        return None
    shape = tuple(d.size for d in dims)
    niter = 1
    for s in shape:
        niter *= s
    cols: list[np.ndarray] = []
    for axis, arr in enumerate(dims):
        view = arr.reshape(tuple(-1 if i == axis else 1 for i in range(len(dims))))
        cols.append(np.ascontiguousarray(np.broadcast_to(view, shape).reshape(-1)))
    points = list(zip(*(c.tolist() for c in cols)))
    return cols, niter, points


def _materialize(
    affine: AffineSubset,
    cols: Sequence[np.ndarray],
    niter: int,
    env: dict,
    param_index: dict[str, int],
) -> tuple[int, np.ndarray]:
    """Index matrix (iteration-major, subset-point-minor) for one memlet."""
    ndims = len(affine.dims)
    bases: list[np.ndarray] = []
    locals_per_dim: list[list[int]] = []
    for dim in affine.dims:
        offset, coeffs = dim.begin.concretize(env)
        base = np.full(niter, offset, dtype=np.int64)
        for p, c in coeffs.items():
            if c:
                base = base + c * cols[param_index[p]]
        bases.append(base)
        locals_per_dim.append(dim.local_offsets(env))

    width = 1
    for offsets in locals_per_dim:
        width *= len(offsets)
    if width == 0:
        return 0, np.empty((0, ndims), dtype=np.int64)
    if ndims == 0:
        return 1, np.empty((niter, 0), dtype=np.int64)

    flats: list[np.ndarray] = []
    suffix = width
    prefix = 1
    for d, offsets in enumerate(locals_per_dim):
        suffix //= len(offsets)
        pattern = np.tile(np.repeat(np.asarray(offsets, dtype=np.int64), suffix), prefix)
        prefix *= len(offsets)
        flats.append((bases[d][:, None] + pattern[None, :]).reshape(-1))
    matrix = np.stack(flats, axis=1)
    return width, matrix


def simulate_scope_vectorized(
    state: SDFGState,
    entry: MapEntry,
    tasklets: Sequence[Tasklet],
    env: dict,
    result: "SimulationResult",
    outer_point: tuple[int, ...],
    tracked: Callable[[str], bool],
    compile_subset: Callable[[Memlet], object],
    timings: "StageTimings | None" = None,
) -> bool:
    """Vectorized simulation of one flat map scope.

    Returns ``True`` when the scope was fully handled (events appended,
    step/execution counters advanced — trace-identical to the
    interpreter), or ``False`` to decline (no memlet vectorizes), in
    which case the caller runs the interpreter unchanged.
    """
    from repro.analysis.timing import maybe_span

    map_obj = entry.map
    params = frozenset(map_obj.params)
    param_index = {p: i for i, p in enumerate(map_obj.params)}

    with maybe_span(timings, "enumerate"):
        grids = _iteration_grids(entry, env)
    if grids is None:
        return True  # empty iteration space: no events, no steps
    cols, niter, points = grids

    with maybe_span(timings, "enumerate"):
        plans: list[tuple[str, list]] = []
        any_affine = False
        has_fallback = False
        for tasklet in tasklets:
            edge_plans: list = []
            for kind, edges in (
                (AccessKind.READ, state.in_edges(tasklet)),
                (AccessKind.WRITE, state.out_edges(tasklet)),
            ):
                for edge in edges:
                    memlet = edge.data.memlet
                    if memlet is None or not tracked(memlet.data):
                        continue
                    affine = AffineSubset.from_memlet(memlet, params)
                    if affine is None:
                        edge_plans.append(
                            _InterpPlan(memlet.data, kind, compile_subset(memlet))
                        )
                        has_fallback = True
                    else:
                        width, matrix = _materialize(
                            affine, cols, niter, env, param_index
                        )
                        edge_plans.append(
                            _VecPlan(memlet.data, kind, width, matrix)
                        )
                        any_affine = True
            plans.append((tasklet.name, edge_plans))

    if has_fallback and not any_affine:
        return False  # nothing vectorizes; the plain interpreter is faster

    full_points = [outer_point + p for p in points] if outer_point else points
    ntasklets = len(tasklets)
    step_base = result.num_steps
    exec_base = result.num_executions

    events_before = result.num_events
    with maybe_span(timings, "evaluate") as span:
        if has_fallback:
            # Bulk-allocating hundreds of thousands of events triggers the
            # cyclic collector over and over even though AccessEvent objects
            # (ints, strings, tuples of ints) cannot form cycles; pausing it
            # during assembly is worth ~8x on large scopes.
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                _assemble_mixed(
                    plans, map_obj.params, points, full_points, env, result,
                    step_base, exec_base, niter, ntasklets,
                )
            finally:
                if gc_was_enabled:
                    gc.enable()
        else:
            _assemble_pure(
                plans, full_points, result, step_base, exec_base, niter, ntasklets,
            )
        span.set(
            scope=map_obj.label,
            events=result.num_events - events_before,
            vectorized=not has_fallback,
        )
    result.num_steps += niter
    result.num_executions += niter * ntasklets
    return True


class _LazyScopeEvents:
    """Deferred event block of one fully-vectorized map scope.

    Registered on the result instead of real events: the array pipeline
    answers every locality query from the index matrices, so the
    per-event :class:`AccessEvent` objects are only built if a consumer
    reads the object trace (``result.events``).
    """

    __slots__ = (
        "plans", "full_points", "step_base", "exec_base",
        "niter", "ntasklets", "events_per_iter", "num_events",
    )

    def __init__(
        self,
        plans: list,
        full_points: list,
        step_base: int,
        exec_base: int,
        niter: int,
        ntasklets: int,
        events_per_iter: int,
    ):
        self.plans = plans
        self.full_points = full_points
        self.step_base = step_base
        self.exec_base = exec_base
        self.niter = niter
        self.ntasklets = ntasklets
        self.events_per_iter = events_per_iter
        self.num_events = niter * events_per_iter

    def materialize(self) -> list:
        """Build the event block — identical to eager assembly.

        Events per iteration are constant, so each (edge, subset-point)
        column occupies a strided slice of the scope's event block — one
        bulk ``map()`` per column, no per-iteration Python loop.
        """
        niter = self.niter
        events_per_iter = self.events_per_iter
        block = [None] * self.num_events
        steps = range(self.step_base, self.step_base + niter)
        full_points = self.full_points
        # Bulk-allocating hundreds of thousands of events triggers the
        # cyclic collector over and over even though AccessEvent objects
        # (ints, strings, tuples of ints) cannot form cycles; pausing it
        # during assembly is worth ~8x on large scopes.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            offset = 0
            for t_idx, (tname, edge_plans) in enumerate(self.plans):
                execs = range(
                    self.exec_base + t_idx,
                    self.exec_base + niter * self.ntasklets,
                    self.ntasklets,
                )
                for plan in edge_plans:
                    data, kind, width = plan.data, plan.kind, plan.width
                    tuples = plan.tuples if width else []
                    for r in range(width):
                        # map() + repeat() keeps the per-event Python work
                        # down to the AccessEvent constructor itself.
                        block[offset::events_per_iter] = list(
                            map(
                                AccessEvent,
                                repeat(data),
                                tuples[r::width] if width > 1 else tuples,
                                repeat(kind), steps, execs, repeat(tname),
                                full_points,
                            )
                        )
                        offset += 1
        finally:
            if gc_was_enabled:
                gc.enable()
        return block

    # -- matrix-answerable aggregates (no materialization) -------------------
    def container_order(self) -> list:
        """Containers in first-access order within this block."""
        return [
            p.data for _, edge_plans in self.plans for p in edge_plans if p.width
        ]

    def count_for(self, data: str) -> int:
        """Number of events touching *data* in this block."""
        return sum(
            p.width * self.niter
            for _, edge_plans in self.plans
            for p in edge_plans
            if p.data == data
        )

    def accumulate_counts(self, data: str, kind, counts: dict) -> None:
        """Add this block's per-element access counts for *data*."""
        for _, edge_plans in self.plans:
            for plan in edge_plans:
                if plan.data != data or not plan.width:
                    continue
                if kind is not None and plan.kind != kind:
                    continue
                matrix = plan.matrix
                if matrix.shape[1] == 0:
                    counts[()] = counts.get((), 0) + matrix.shape[0]
                    continue
                unique, freq = np.unique(matrix, axis=0, return_counts=True)
                for row, count in zip(unique.tolist(), freq.tolist()):
                    key = tuple(row)
                    counts[key] = counts.get(key, 0) + count


def _assemble_pure(
    plans: list,
    full_points: list,
    result: "SimulationResult",
    step_base: int,
    exec_base: int,
    niter: int,
    ntasklets: int,
) -> None:
    """Register the scope's events lazily when every memlet vectorized.

    Only the :class:`VectorBlock` index matrices and a deferred
    :class:`_LazyScopeEvents` segment are recorded; no per-event Python
    object is created here.
    """
    events_per_iter = sum(p.width for _, edge_plans in plans for p in edge_plans)
    if events_per_iter == 0:
        return
    base_pos = result.num_events
    offset = 0
    for _, edge_plans in plans:
        for plan in edge_plans:
            for r in range(plan.width):
                result.vector_blocks.append(
                    VectorBlock(
                        plan.data,
                        plan.matrix[r::plan.width],
                        base_pos + offset,
                        events_per_iter,
                        niter,
                    )
                )
                offset += 1
    result.add_lazy_segment(
        _LazyScopeEvents(
            plans, full_points, step_base, exec_base, niter, ntasklets,
            events_per_iter,
        )
    )


def _assemble_mixed(
    plans: list,
    params: Sequence[str],
    points: list,
    full_points: list,
    env: dict,
    result: "SimulationResult",
    step_base: int,
    exec_base: int,
    niter: int,
    ntasklets: int,
) -> None:
    """Per-iteration assembly when some memlets need the interpreter.

    Non-affine subsets may cover a varying number of points per
    iteration, so event positions are not strided; walk iterations in
    order, emitting prebuilt tuples for vectorized edges and evaluating
    compiled subsets for the rest.
    """
    local_env = dict(env)
    block: list[AccessEvent] = []
    append = block.append
    for it in range(niter):
        for name, value in zip(params, points[it]):
            local_env[name] = value
        step = step_base + it
        point = full_points[it]
        for t_idx, (tname, edge_plans) in enumerate(plans):
            execution = exec_base + it * ntasklets + t_idx
            for plan in edge_plans:
                if isinstance(plan, _VecPlan):
                    base = it * plan.width
                    for r in range(plan.width):
                        append(
                            AccessEvent(
                                plan.data, plan.tuples[base + r], plan.kind,
                                step, execution, tname, point,
                            )
                        )
                else:
                    for indices in plan.compiled.points(local_env):
                        append(
                            AccessEvent(
                                plan.data, indices, plan.kind,
                                step, execution, tname, point,
                            )
                        )
    result.extend_events(block)


def fast_line_trace(result: "SimulationResult", memory: "MemoryModel") -> list[int]:
    """Project a trace onto cache-line ids, vectorized where possible.

    When the whole trace was produced by the vectorized fast path, the
    element→address→line projection runs as one broadcast per
    :class:`VectorBlock` (index grid · strides → addresses → line ids).
    Traces with interpreted portions fall back to the per-event
    projection of :func:`~repro.simulation.stackdist.line_trace`.
    """
    from repro.simulation.stackdist import line_trace

    blocks = getattr(result, "vector_blocks", None)
    n = result.num_events
    if not blocks or sum(b.count for b in blocks) != n:
        return line_trace(result.events, memory)
    out = np.empty(n, dtype=np.int64)
    for b in blocks:
        layout = memory.layout(b.data)
        if b.matrix.shape[1]:
            strides = np.asarray(layout.strides, dtype=np.int64)
            offsets = layout.start_offset + b.matrix @ strides
        else:
            offsets = np.full(b.count, layout.start_offset, dtype=np.int64)
        addresses = layout.base_address + offsets * layout.itemsize
        stop = b.start + b.stride * b.count
        out[b.start:stop:b.stride] = addresses // memory.line_size
    return out.tolist()
