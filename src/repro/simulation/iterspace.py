"""Iteration-space enumeration for parameterized map scopes.

The enumeration order is the *parameter order of the map*: the first
parameter is the outermost loop, the last the innermost.  This order is
what gives reuse distances their meaning — the paper's hdiff case study
improves locality purely by reordering the map parameters (Fig. 8b), which
changes nothing about the set of points, only their sequence.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import SimulationError
from repro.sdfg.nodes import Map

__all__ = ["iteration_points", "iteration_count"]


def iteration_points(
    map_obj: Map, env: Mapping[str, int | float] | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield concrete iteration points in loop-nest order (last param fastest)."""
    try:
        concrete = [r.concretize(env) for r in map_obj.ranges]
    except Exception as exc:  # noqa: BLE001 — converted to SimulationError
        raise SimulationError(
            f"cannot concretize map {map_obj.label!r}: {exc}; provide values "
            f"for {sorted(set().union(*(r.free_symbols() for r in map_obj.ranges)))}"
        ) from exc
    dims = [list(c) for c in concrete]
    if not dims:
        yield ()
        return
    if any(not d for d in dims):
        return
    pos = [0] * len(dims)
    while True:
        yield tuple(d[p] for d, p in zip(dims, pos))
        axis = len(dims) - 1
        while axis >= 0:
            pos[axis] += 1
            if pos[axis] < len(dims[axis]):
                break
            pos[axis] = 0
            axis -= 1
        if axis < 0:
            return


def iteration_count(map_obj: Map, env: Mapping[str, int | float] | None = None) -> int:
    """Concrete number of iterations of *map_obj* under *env*."""
    total = 1
    for r in map_obj.ranges:
        total *= r.size(env)
    return total
