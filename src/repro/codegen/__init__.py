"""Execution backends for SDFGs.

The paper compiles SDFGs to C through DaCe and GCC; this library's
substitute is NumPy:

- :mod:`repro.codegen.interpreter` — a straightforward element-wise
  reference interpreter (the semantics oracle; slow).
- :mod:`repro.codegen.numpy_gen` — a code generator emitting vectorized
  NumPy source for map scopes (falling back to explicit loop nests where
  vectorization rules don't apply), compiled with ``exec`` and cached.

Both execute the same IR, so optimization stages (fusion, layout changes)
can be run and benchmarked end-to-end.
"""

from repro.codegen.interpreter import interpret_sdfg
from repro.codegen.numpy_gen import CompiledSDFG, call_sdfg, compile_sdfg, generate_source

__all__ = [
    "interpret_sdfg",
    "compile_sdfg",
    "call_sdfg",
    "generate_source",
    "CompiledSDFG",
]
