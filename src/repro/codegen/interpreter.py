"""Element-wise reference interpreter for SDFGs.

Executes the IR exactly as written — every map iteration runs its tasklets
one element at a time.  Slow by design; it is the semantics oracle that
the vectorizing code generator is property-tested against.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.errors import CodegenError
from repro.sdfg.data import Array, Scalar
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, NestedSDFG, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.simulation.iterspace import iteration_points

__all__ = ["interpret_sdfg"]

#: Intrinsics available inside tasklet code.
_TASKLET_GLOBALS = {
    "__builtins__": {},
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tanh": math.tanh,
    "erf": math.erf,
    "floor": math.floor,
    "ceil": math.ceil,
    "Min": min,
    "Max": max,
}

_WCR_FOLD = {
    "sum": lambda old, new: old + new,
    "product": lambda old, new: old * new,
    "min": min,
    "max": max,
}


def interpret_sdfg(
    sdfg: SDFG,
    arrays: Mapping[str, np.ndarray],
    symbols: Mapping[str, int] | None = None,
    on_tasklet=None,
) -> None:
    """Execute *sdfg* in place on the provided NumPy *arrays*.

    Non-transient containers must all be present in *arrays* (outputs are
    written in place); *symbols* provides every free size symbol.

    *on_tasklet*, when given, is invoked as ``on_tasklet(state, tasklet,
    env)`` before every tasklet execution — the hook the profiling overlay
    uses to gather *measured* metrics from real executions.
    """
    env = {k: int(v) for k, v in (symbols or {}).items()}
    storage: dict[str, object] = {}
    for name, desc in sdfg.arrays.items():
        if not desc.transient:
            if name not in arrays:
                raise CodegenError(f"missing argument for container {name!r}")
            storage[name] = arrays[name]
        elif isinstance(desc, Array):
            shape = tuple(int(s.evaluate(env)) for s in desc.shape)
            storage[name] = np.zeros(shape, dtype=desc.dtype.as_numpy)
        else:
            storage[name] = 0.0

    _run_with_storage(sdfg, storage, env, on_tasklet)


def _run_with_storage(sdfg: SDFG, storage: dict, env: dict[str, int], on_tasklet=None) -> None:
    for state in sdfg.all_states_topological():
        _run_state(sdfg, state, storage, env, on_tasklet)


def _run_state(
    sdfg: SDFG, state: SDFGState, storage: dict, env: dict[str, int], on_tasklet=None
) -> None:
    children = state.scope_children()
    sdict = state.scope_dict()
    local_env = dict(env)
    for node in state.topological_nodes():
        if sdict[node] is not None:
            continue
        if isinstance(node, MapEntry):
            _run_scope(sdfg, state, node, children, storage, local_env, on_tasklet)
        elif isinstance(node, Tasklet):
            _run_tasklet(sdfg, state, node, storage, local_env, on_tasklet)
        elif isinstance(node, NestedSDFG):
            _run_nested(sdfg, state, node, storage, local_env, on_tasklet)
        elif isinstance(node, AccessNode):
            _run_copies(sdfg, state, node, storage, local_env)


def _run_scope(
    sdfg: SDFG,
    state: SDFGState,
    entry: MapEntry,
    children: dict,
    storage: dict,
    env: dict[str, int],
    on_tasklet=None,
) -> None:
    scope_nodes = children.get(entry, [])
    order = [n for n in state.topological_nodes() if n in scope_nodes]
    tasklets = [n for n in order if isinstance(n, Tasklet)]
    nested = [n for n in order if isinstance(n, MapEntry)]
    nested_sdfgs = [n for n in order if isinstance(n, NestedSDFG)]
    params = entry.map.params
    for point in iteration_points(entry.map, env):
        for name, value in zip(params, point):
            env[name] = value
        for tasklet in tasklets:
            _run_tasklet(sdfg, state, tasklet, storage, env, on_tasklet)
        for nested_node in nested_sdfgs:
            _run_nested(sdfg, state, nested_node, storage, env, on_tasklet)
        for inner in nested:
            _run_scope(sdfg, state, inner, children, storage, env, on_tasklet)
    for name in params:
        env.pop(name, None)


def _read(sdfg: SDFG, memlet: Memlet, storage: dict, env: dict[str, int]):
    value = storage[memlet.data]
    desc = sdfg.arrays[memlet.data]
    if isinstance(desc, Scalar):
        arr = value
        if isinstance(arr, np.ndarray):
            return arr.item() if arr.ndim == 0 else arr[0]
        return arr
    indices = tuple(
        int(r.begin.evaluate(env)) for r in memlet.subset.ranges
    )
    return value[indices]


def _write(
    sdfg: SDFG, memlet: Memlet, storage: dict, env: dict[str, int], result
) -> None:
    desc = sdfg.arrays[memlet.data]
    if isinstance(desc, Scalar):
        if memlet.wcr is not None:
            storage[memlet.data] = _WCR_FOLD[memlet.wcr](storage[memlet.data], result)
        else:
            storage[memlet.data] = result
        return
    target = storage[memlet.data]
    indices = tuple(int(r.begin.evaluate(env)) for r in memlet.subset.ranges)
    if memlet.wcr is not None:
        target[indices] = _WCR_FOLD[memlet.wcr](target[indices], result)
    else:
        target[indices] = result


def _run_tasklet(
    sdfg: SDFG, state: SDFGState, tasklet: Tasklet, storage: dict, env: dict[str, int],
    on_tasklet=None,
) -> None:
    if on_tasklet is not None:
        on_tasklet(state, tasklet, env)
    namespace: dict[str, object] = dict(env)
    for edge in state.in_edges(tasklet):
        memlet = edge.data.memlet
        if memlet is None or edge.data.dst_conn is None:
            continue
        namespace[edge.data.dst_conn] = _read(sdfg, memlet, storage, env)
    try:
        exec(tasklet.code, _TASKLET_GLOBALS, namespace)  # noqa: S102
    except Exception as exc:  # noqa: BLE001 — converted to CodegenError
        raise CodegenError(
            f"tasklet {tasklet.name!r} failed: {exc} (code: {tasklet.code!r})"
        ) from exc
    for edge in state.out_edges(tasklet):
        memlet = edge.data.memlet
        if memlet is None or edge.data.src_conn is None:
            continue
        if edge.data.src_conn not in namespace:
            raise CodegenError(
                f"tasklet {tasklet.name!r} did not produce output "
                f"{edge.data.src_conn!r}"
            )
        _write(sdfg, memlet, storage, env, namespace[edge.data.src_conn])


def _run_copies(
    sdfg: SDFG, state: SDFGState, node: AccessNode, storage: dict, env: dict[str, int]
) -> None:
    for edge in state.out_edges(node):
        if not isinstance(edge.dst, AccessNode) or edge.data.memlet is None:
            continue
        memlet = edge.data.memlet
        src = storage[memlet.data]
        dst = storage[edge.dst.data]
        slices = tuple(
            slice(int(r.begin.evaluate(env)), int(r.end.evaluate(env)) + 1,
                  int(r.step.evaluate(env)))
            for r in memlet.subset.ranges
        )
        if isinstance(dst, np.ndarray) and isinstance(src, np.ndarray):
            dst[slices] = src[slices]
        else:
            storage[edge.dst.data] = src


def _subset_view(array: np.ndarray, memlet: Memlet, env: dict[str, int]) -> np.ndarray:
    """A NumPy view of the outer array restricted to the memlet subset."""
    slices = tuple(
        slice(
            int(r.begin.evaluate(env)),
            int(r.end.evaluate(env)) + 1,
            int(r.step.evaluate(env)),
        )
        for r in memlet.subset.ranges
    )
    return array[slices]


def _run_nested(
    sdfg: SDFG,
    state: SDFGState,
    node,
    storage: dict,
    env: dict[str, int],
    on_tasklet=None,
) -> None:
    """Execute a NestedSDFG node.

    Each connector binds an inner container name to a view of the outer
    container's memlet subset, so inner writes land in the outer arrays
    directly.  Inner symbols come from the node's symbol mapping
    (evaluated in the outer environment) plus same-name pass-through.
    """
    from repro.symbolic.expr import sympify

    inner = node.sdfg
    inner_env: dict[str, int] = {}
    for name, value in node.symbol_mapping.items():
        inner_env[name] = int(sympify(value).evaluate(env))
    for symbol in inner.free_symbols():
        if symbol not in inner_env and symbol in env:
            inner_env[symbol] = env[symbol]

    inner_storage: dict[str, object] = {}

    def bind(conn: str, memlet: Memlet) -> None:
        desc = inner.arrays.get(conn)
        if not isinstance(desc, Array):
            raise CodegenError(
                f"nested SDFG connector {conn!r} must bind an inner array"
            )
        outer = storage[memlet.data]
        if not isinstance(outer, np.ndarray):
            raise CodegenError(
                f"nested SDFG connector {conn!r} binds a non-array container"
            )
        view = _subset_view(outer, memlet, env)
        expected = tuple(int(s.evaluate(inner_env)) for s in desc.shape)
        inner_storage[conn] = view.reshape(expected)

    for edge in state.in_edges(node):
        if edge.data.memlet is not None and edge.data.dst_conn is not None:
            bind(edge.data.dst_conn, edge.data.memlet)
    for edge in state.out_edges(node):
        if edge.data.memlet is not None and edge.data.src_conn is not None:
            if edge.data.src_conn not in inner_storage:
                bind(edge.data.src_conn, edge.data.memlet)

    for name, desc in inner.arrays.items():
        if name in inner_storage:
            continue
        if not desc.transient:
            raise CodegenError(
                f"nested SDFG input {name!r} has no connector binding"
            )
        if isinstance(desc, Array):
            shape = tuple(int(s.evaluate(inner_env)) for s in desc.shape)
            inner_storage[name] = np.zeros(shape, dtype=desc.dtype.as_numpy)
        else:
            inner_storage[name] = 0.0

    _run_with_storage(inner, inner_storage, inner_env, on_tasklet)
