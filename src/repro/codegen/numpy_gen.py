"""Vectorizing NumPy code generator for SDFGs.

Generates a Python module with one ``run(...)`` function per SDFG: every
map scope whose accesses fit the vectorization rules (unit-coefficient
affine indices, each parameter addressing at most one axis per access)
becomes a single broadcast NumPy statement; anything else falls back to an
explicit loop nest.  This substitutes for DaCe's C code generation in the
benchmarks: the *relative* effect of data-movement optimizations (fusion
removes whole intermediate arrays; fewer passes over memory) is preserved.
"""

from __future__ import annotations

import ast
from typing import Mapping

import numpy as np

from repro.errors import CodegenError
from repro.sdfg.data import Array, Scalar
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.expr import Expr, Integer, Symbol, add, sub

__all__ = ["generate_source", "compile_sdfg", "call_sdfg", "CompiledSDFG"]

_NUMPY_FUNCS = {
    "sqrt": "np.sqrt",
    "exp": "np.exp",
    "log": "np.log",
    "sin": "np.sin",
    "cos": "np.cos",
    "tanh": "np.tanh",
    "erf": "_np_erf",
    "abs": "np.abs",
    "floor": "np.floor",
    "ceil": "np.ceil",
    "min": "np.minimum",
    "max": "np.maximum",
}

_PRELUDE = '''\
import math
import numpy as np

def _np_erf(x):
    if isinstance(x, np.ndarray):
        # Vectorized erf via the complementary error function identity on
        # tanh-based approximation is inaccurate; use math.erf elementwise
        # only for small arrays, else the vectorized rational approximation.
        return _erf_vec(x)
    return math.erf(x)

def _erf_vec(x):
    # Abramowitz & Stegun 7.1.26 rational approximation (vectorized).
    sign = np.sign(x)
    x = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    y = 1.0 - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t
                - 0.284496736) * t + 0.254829592) * t * np.exp(-x * x)
    return sign * y

def Min(*args):
    return min(*args)

def Max(*args):
    return max(*args)
'''


class _Unvectorizable(Exception):
    """Internal: scope cannot be vectorized, fall back to loops."""


def _py(expr: Expr) -> str:
    """Python source form of a symbolic expression."""
    return str(expr)


# ---------------------------------------------------------------------------
# Access classification
# ---------------------------------------------------------------------------


class _AccessPlan:
    """How one array access vectorizes: slices plus axis alignment."""

    def __init__(self, data: str, slices: list[str], dim_params: list[str | None]):
        self.data = data
        self.slices = slices  # per-dimension python index source
        self.dim_params = dim_params  # param addressing each dim (or None)

    def used_params(self) -> list[str]:
        return [p for p in self.dim_params if p is not None]

    def aligned_source(self, params: list[str]) -> str:
        """Source of the access aligned to the canonical param axes."""
        base = f"{self.data}[{', '.join(self.slices)}]"
        present = self.used_params()
        if not present:
            return base  # scalar value broadcasts everywhere
        # Transpose the sliced axes into canonical order if needed.
        canonical = [p for p in params if p in present]
        if present != canonical:
            perm = [present.index(p) for p in canonical]
            base = f"np.transpose({base}, {tuple(perm)})"
        # Expand to one axis per canonical param.
        index = ", ".join(":" if p in present else "None" for p in params)
        return f"{base}[{index}]"


def _classify_access(
    memlet: Memlet, entry: MapEntry, sdfg: SDFG
) -> _AccessPlan:
    """Build the vectorization plan of one point access, or raise."""
    params = entry.map.params
    ranges = {p: r for p, r in zip(params, entry.map.ranges)}
    if not memlet.subset.is_point:
        raise _Unvectorizable(f"non-point subset {memlet.subset}")
    slices: list[str] = []
    dim_params: list[str | None] = []
    seen: set[str] = set()
    for index in memlet.subset.indices():
        used = [p for p in params if p in index.free_symbols()]
        if len(used) > 1:
            raise _Unvectorizable(f"index {index} uses several parameters")
        if not used:
            slices.append(_py(index))
            dim_params.append(None)
            continue
        (param,) = used
        if param in seen:
            raise _Unvectorizable(f"parameter {param} addresses two dimensions")
        seen.add(param)
        offset = index.subs({param: 0})
        # Unit coefficient check: index must equal param + offset.
        if index != add(Symbol(param), offset):
            raise _Unvectorizable(f"non-unit coefficient in index {index}")
        rng = ranges[param]
        if rng.step != Integer(1):
            raise _Unvectorizable(f"strided map range for {param}")
        lo = add(rng.begin, offset)
        hi = add(add(rng.end, offset), 1)
        slices.append(f"{_py(lo)}:{_py(hi)}")
        dim_params.append(param)
    return _AccessPlan(memlet.data, slices, dim_params)


# ---------------------------------------------------------------------------
# Tasklet code rewriting
# ---------------------------------------------------------------------------


class _CodeRewriter(ast.NodeTransformer):
    """Substitute connector names and intrinsics in tasklet code."""

    def __init__(self, replacements: Mapping[str, str], vectorized: bool):
        self.replacements = dict(replacements)
        self.vectorized = vectorized

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id in self.replacements:
            return ast.parse(self.replacements[node.id], mode="eval").body
        return node

    def visit_Call(self, node: ast.Call) -> ast.AST:
        node.args = [self.visit(a) for a in node.args]
        if self.vectorized and isinstance(node.func, ast.Name):
            mapped = _NUMPY_FUNCS.get(node.func.id)
            if mapped:
                node.func = ast.parse(mapped, mode="eval").body
        return node

    def visit_IfExp(self, node: ast.IfExp) -> ast.AST:
        # Conditional expressions over arrays are ill-defined; translate to
        # np.where in the vectorized backend.
        node.test = self.visit(node.test)
        node.body = self.visit(node.body)
        node.orelse = self.visit(node.orelse)
        if not self.vectorized:
            return node
        return ast.copy_location(
            ast.Call(
                func=ast.parse("np.where", mode="eval").body,
                args=[node.test, node.body, node.orelse],
                keywords=[],
            ),
            node,
        )


def _rewrite_code(code: str, replacements: Mapping[str, str], vectorized: bool) -> str:
    tree = ast.parse(code)
    tree = _CodeRewriter(replacements, vectorized).visit(tree)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)


def _tasklet_rhs(code: str) -> tuple[str, str]:
    """Split single-assignment tasklet code into (output name, rhs source)."""
    tree = ast.parse(code)
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.Assign):
        raise _Unvectorizable(f"tasklet code is not a single assignment: {code!r}")
    assign = tree.body[0]
    if len(assign.targets) != 1 or not isinstance(assign.targets[0], ast.Name):
        raise _Unvectorizable(f"unsupported tasklet target in {code!r}")
    return assign.targets[0].id, ast.unparse(assign.value)


# ---------------------------------------------------------------------------
# Scope code generation
# ---------------------------------------------------------------------------


def _scope_tasklets(state: SDFGState, entry: MapEntry) -> list[Tasklet]:
    children = state.scope_children()
    members = children.get(entry, [])
    if any(isinstance(n, MapEntry) for n in members):
        raise _Unvectorizable("nested map scope")
    order = [n for n in state.topological_nodes() if n in members]
    return [n for n in order if isinstance(n, Tasklet)]


def _vectorize_scope(
    sdfg: SDFG, state: SDFGState, entry: MapEntry, temp_prefix: str
) -> list[str]:
    """Emit vectorized statements for one map scope (or raise)."""
    params = entry.map.params
    tasklets = _scope_tasklets(state, entry)
    if not tasklets:
        raise _Unvectorizable("empty scope")
    lines: list[str] = [f"# scope {entry.label} (vectorized)"]
    local_vars: dict[str, str] = {}  # scalar-transient container -> temp var

    for t_index, tasklet in enumerate(tasklets):
        if any(p in _code_names(tasklet.code) for p in params):
            raise _Unvectorizable("tasklet uses loop parameters as values")
        replacements: dict[str, str] = {}
        for edge in state.in_edges(tasklet):
            memlet = edge.data.memlet
            conn = edge.data.dst_conn
            if memlet is None or conn is None:
                continue
            desc = sdfg.arrays[memlet.data]
            if isinstance(desc, Scalar):
                if desc.transient:
                    replacements[conn] = local_vars[memlet.data]
                else:
                    replacements[conn] = memlet.data
                continue
            plan = _classify_access(memlet, entry, sdfg)
            replacements[conn] = plan.aligned_source(params)

        out_name, rhs = _tasklet_rhs(tasklet.code)
        rhs = _rewrite_code(rhs, replacements, vectorized=True)

        out_edges = [
            e for e in state.out_edges(tasklet)
            if e.data.memlet is not None and e.data.src_conn == out_name
        ]
        if not out_edges:
            raise _Unvectorizable("tasklet without a memlet-bearing output")
        for edge in out_edges:
            memlet = edge.data.memlet
            desc = sdfg.arrays[memlet.data]
            if isinstance(desc, Scalar) and desc.transient:
                var = f"{temp_prefix}_{t_index}"
                local_vars[memlet.data] = var
                lines.append(f"{var} = {rhs}")
                continue
            if isinstance(desc, Scalar):
                raise _Unvectorizable("vectorized write to a non-transient scalar")
            plan = _classify_access(memlet, entry, sdfg)
            present = plan.used_params()
            missing = [p for p in params if p not in present]
            target = f"{memlet.data}[{', '.join(plan.slices)}]"
            # The rhs is aligned to all params; writes must reduce away
            # axes the output does not index.
            value = rhs
            if missing:
                axes = tuple(params.index(p) for p in missing)
                if memlet.wcr == "sum":
                    value = f"np.sum(np.broadcast_to({rhs}, ({_shape_tuple(entry)})), axis={axes})"
                elif memlet.wcr == "product":
                    value = f"np.prod(np.broadcast_to({rhs}, ({_shape_tuple(entry)})), axis={axes})"
                else:
                    raise _Unvectorizable(
                        "output misses parameters without a reduction"
                    )
            # Align the (reduced) value's axes to the target slice axes.
            canonical_present = [p for p in params if p in present]
            if present != canonical_present:
                perm = [canonical_present.index(p) for p in present]
                value = f"np.transpose({value}, {tuple(perm)})"
            if memlet.wcr == "sum":
                lines.append(f"{target} += {value}")
            elif memlet.wcr == "product":
                lines.append(f"{target} *= {value}")
            elif memlet.wcr is None:
                lines.append(f"{target} = {value}")
            else:
                raise _Unvectorizable(f"unsupported WCR {memlet.wcr}")
    return lines


def _shape_tuple(entry: MapEntry) -> str:
    sizes = [_py(r.num_elements()) for r in entry.map.ranges]
    return ", ".join(sizes) + ("," if len(sizes) == 1 else "")


def _code_names(code: str) -> set[str]:
    return {
        node.id for node in ast.walk(ast.parse(code)) if isinstance(node, ast.Name)
    }


def _loop_scope(
    sdfg: SDFG, state: SDFGState, entry: MapEntry, indent: str = ""
) -> list[str]:
    """Fallback: explicit loop nest, one line per tasklet statement."""
    lines = [f"# scope {entry.label} (loop nest)"]
    children = state.scope_children()
    members = children.get(entry, [])
    order = [n for n in state.topological_nodes() if n in members]
    params = entry.map.params

    depth = 0
    for param, rng in zip(params, entry.map.ranges):
        begin, end, step = _py(rng.begin), _py(add(rng.end, 1)), _py(rng.step)
        lines.append(
            "    " * depth + f"for {param} in range({begin}, {end}, {step}):"
        )
        depth += 1

    body: list[str] = []
    for node in order:
        if isinstance(node, MapEntry):
            inner = _loop_scope(sdfg, state, node)
            body.extend(inner)
        elif isinstance(node, Tasklet):
            body.extend(_loop_tasklet(sdfg, state, node))
    if not body:
        body = ["pass"]
    lines.extend("    " * depth + line for line in body)
    return lines


def _loop_tasklet(sdfg: SDFG, state: SDFGState, tasklet: Tasklet) -> list[str]:
    replacements: dict[str, str] = {}
    for edge in state.in_edges(tasklet):
        memlet = edge.data.memlet
        conn = edge.data.dst_conn
        if memlet is None or conn is None:
            continue
        replacements[conn] = _element_ref(sdfg, memlet)
    out_name, rhs = _tasklet_rhs_or_exec(tasklet.code)
    rhs = _rewrite_code(rhs, replacements, vectorized=False)
    lines: list[str] = []
    for edge in state.out_edges(tasklet):
        memlet = edge.data.memlet
        if memlet is None or edge.data.src_conn != out_name:
            continue
        target = _element_ref(sdfg, memlet)
        if memlet.wcr == "sum":
            lines.append(f"{target} += {rhs}")
        elif memlet.wcr == "product":
            lines.append(f"{target} *= {rhs}")
        elif memlet.wcr == "min":
            lines.append(f"{target} = min({target}, {rhs})")
        elif memlet.wcr == "max":
            lines.append(f"{target} = max({target}, {rhs})")
        else:
            lines.append(f"{target} = {rhs}")
    if not lines:
        raise CodegenError(f"tasklet {tasklet.name!r} has no outputs to emit")
    return lines


def _tasklet_rhs_or_exec(code: str) -> tuple[str, str]:
    try:
        return _tasklet_rhs(code)
    except _Unvectorizable as exc:
        raise CodegenError(f"cannot generate code for tasklet: {exc}") from exc


def _element_ref(sdfg: SDFG, memlet: Memlet) -> str:
    desc = sdfg.arrays[memlet.data]
    if isinstance(desc, Scalar):
        return memlet.data if not desc.transient else f"_loc_{memlet.data}"
    indices = ", ".join(_py(i) for i in memlet.subset.indices())
    return f"{memlet.data}[{indices}]"


# ---------------------------------------------------------------------------
# Whole-program generation
# ---------------------------------------------------------------------------


def generate_source(sdfg: SDFG, function_name: str = "run") -> str:
    """Generate the Python module source executing *sdfg*."""
    args = [n for n, d in sdfg.arrays.items() if not d.transient]
    symbols = sorted(sdfg.free_symbols())
    sig = ", ".join(args + [f"{s}" for s in symbols])
    lines: list[str] = [_PRELUDE, f"def {function_name}({sig}):"]

    body: list[str] = []
    for name, desc in sdfg.arrays.items():
        if not desc.transient:
            continue
        if isinstance(desc, Array):
            shape = ", ".join(_py(s) for s in desc.shape)
            body.append(
                f"{name} = np.zeros(({shape},), dtype=np.{desc.dtype.as_numpy.name})"
            )
        else:
            body.append(f"_loc_{name} = 0.0")

    temp_counter = 0
    for state in sdfg.all_states_topological():
        sdict = state.scope_dict()
        for node in state.topological_nodes():
            if sdict[node] is not None:
                continue
            if isinstance(node, MapEntry):
                try:
                    body.extend(
                        _vectorize_scope(sdfg, state, node, f"_tmp{temp_counter}")
                    )
                except _Unvectorizable:
                    body.extend(_loop_scope(sdfg, state, node))
                temp_counter += 1
            elif isinstance(node, Tasklet):
                body.extend(_loop_tasklet(sdfg, state, node))
            elif isinstance(node, AccessNode):
                body.extend(_copy_lines(sdfg, state, node))
    if not body:
        body = ["pass"]
    lines.extend("    " + line for line in body)
    lines.append("    return None")
    return "\n".join(lines) + "\n"


def _copy_lines(sdfg: SDFG, state: SDFGState, node: AccessNode) -> list[str]:
    lines = []
    for edge in state.out_edges(node):
        if not isinstance(edge.dst, AccessNode) or edge.data.memlet is None:
            continue
        memlet = edge.data.memlet
        slices = ", ".join(
            f"{_py(r.begin)}:{_py(add(r.end, 1))}:{_py(r.step)}"
            for r in memlet.subset.ranges
        )
        lines.append(f"{edge.dst.data}[{slices}] = {memlet.data}[{slices}]")
    return lines


class CompiledSDFG:
    """A compiled, callable SDFG."""

    def __init__(self, sdfg: SDFG):
        self.sdfg = sdfg
        self.source = generate_source(sdfg)
        namespace: dict[str, object] = {}
        exec(compile(self.source, f"<sdfg:{sdfg.name}>", "exec"), namespace)  # noqa: S102
        self._func = namespace["run"]
        self.arg_names = [n for n, d in sdfg.arrays.items() if not d.transient]
        self.symbol_names = sorted(sdfg.free_symbols())

    def __call__(self, *args: np.ndarray, **kwargs) -> None:
        """Execute on NumPy arrays; size symbols are inferred when possible.

        Positional arguments bind to the SDFG's non-transient containers in
        declaration order; keyword arguments bind containers or symbols by
        name.
        """
        bound: dict[str, object] = {}
        if len(args) > len(self.arg_names):
            raise CodegenError(
                f"too many positional arguments ({len(args)} > "
                f"{len(self.arg_names)})"
            )
        for name, value in zip(self.arg_names, args):
            bound[name] = value
        for key, value in kwargs.items():
            if key in bound:
                raise CodegenError(f"duplicate argument {key!r}")
            if key not in self.arg_names and key not in self.symbol_names:
                raise CodegenError(f"unknown argument {key!r}")
            bound[key] = value
        missing = [n for n in self.arg_names if n not in bound]
        if missing:
            raise CodegenError(f"missing container arguments: {missing}")
        env = self._infer_symbols(bound)
        return self._func(*[bound[n] for n in self.arg_names],
                          *[env[s] for s in self.symbol_names])

    def _infer_symbols(self, bound: Mapping[str, object]) -> dict[str, int]:
        env: dict[str, int] = {
            k: int(v)  # type: ignore[arg-type]
            for k, v in bound.items()
            if k in self.symbol_names
        }
        for name in self.arg_names:
            desc = self.sdfg.arrays[name]
            if not isinstance(desc, Array):
                continue
            value = bound[name]
            if not isinstance(value, np.ndarray):
                raise CodegenError(f"argument {name!r} must be a NumPy array")
            for dim, extent in zip(desc.shape, value.shape):
                if isinstance(dim, Symbol):
                    prev = env.get(dim.name)
                    if prev is not None and prev != extent:
                        raise CodegenError(
                            f"inconsistent value for symbol {dim.name}: "
                            f"{prev} vs {extent}"
                        )
                    env[dim.name] = int(extent)
        unresolved = [s for s in self.symbol_names if s not in env]
        if unresolved:
            # Last resort: solve simple "shape dim == symbol + const" forms.
            for name in self.arg_names:
                desc = self.sdfg.arrays[name]
                if not isinstance(desc, Array):
                    continue
                value = bound[name]
                for dim, extent in zip(desc.shape, value.shape):
                    free = dim.free_symbols()
                    if len(free) == 1:
                        (sym,) = free
                        if sym in env or sym not in unresolved:
                            continue
                        # dim = sym + c  =>  sym = extent - c
                        const = dim.subs({sym: 0})
                        candidate = sub(Integer(int(extent)), const)
                        if dim.subs({sym: candidate}) == Integer(int(extent)):
                            env[sym] = int(candidate.evaluate())
            unresolved = [s for s in self.symbol_names if s not in env]
        if unresolved:
            raise CodegenError(
                f"cannot infer symbols {unresolved}; pass them as keyword "
                "arguments"
            )
        return env


_COMPILED_CACHE: dict[int, CompiledSDFG] = {}


def compile_sdfg(sdfg: SDFG, symbols: Mapping[str, int] | None = None) -> CompiledSDFG:
    """Compile *sdfg* (cached per SDFG object identity)."""
    key = id(sdfg)
    compiled = _COMPILED_CACHE.get(key)
    if compiled is None or compiled.sdfg is not sdfg:
        compiled = CompiledSDFG(sdfg)
        _COMPILED_CACHE[key] = compiled
    return compiled


def call_sdfg(sdfg: SDFG, *args: np.ndarray, **kwargs) -> None:
    """Compile (cached) and execute *sdfg* in one call."""
    return compile_sdfg(sdfg)(*args, **kwargs)
