"""``python -m repro`` — alias for the report-generator CLI."""

import sys

from repro.tool.cli import main

sys.exit(main())
