"""Measured-metric overlays from instrumented executions.

"The proposed visualization is not directly tied to static analysis.
Profiling data could orthogonally be used as metrics, which would be
crucial for bottleneck analysis of data-dependent programs." (paper
Section IV-B; the Discussion's limitation item echoes this.)

This module gathers *measured* metrics by executing a program through the
reference interpreter with an instrumentation hook: per-tasklet execution
counts, per-edge access counts and per-tasklet wall time.  The resulting
:class:`ProfileReport` produces heatmap-ready value maps, so the exact
same overlays (movement, op counts) can be driven by measurements instead
of static expressions — the workflow for programs whose behaviour the
static analysis cannot capture.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from repro.analysis.opcount import tasklet_ops
from repro.errors import EvaluationError
from repro.sdfg.nodes import Node, Tasklet
from repro.sdfg.sdfg import SDFG

__all__ = ["ProfileReport", "profile_execution"]


class ProfileReport:
    """Measured metrics from one instrumented execution."""

    def __init__(self, sdfg: SDFG):
        self.sdfg = sdfg
        #: Executions per tasklet.
        self.tasklet_executions: dict[Tasklet, int] = {}
        #: Wall time attributed to each tasklet (seconds, cumulative).
        self.tasklet_seconds: dict[Tasklet, float] = {}

    # -- heatmap-ready views -----------------------------------------------------
    def execution_counts(self) -> dict[Node, float]:
        """Per-tasklet execution counts (node heatmap values)."""
        return {t: float(n) for t, n in self.tasklet_executions.items()}

    def measured_ops(self) -> dict[Node, float]:
        """Measured operation counts: executions × per-execution ops.

        The measured analogue of the static op-count overlay — identical
        for regular programs, but correct for data-dependent ones too.
        """
        return {
            t: float(n * tasklet_ops(t)) for t, n in self.tasklet_executions.items()
        }

    def measured_edge_accesses(self, state) -> dict[object, float]:
        """Per-edge measured access volumes (edge heatmap values).

        Each tasklet-adjacent edge moved its memlet's per-execution volume
        once per recorded execution.
        """
        out: dict[object, float] = {}
        for edge, memlet in state.all_memlets():
            tasklet = None
            if isinstance(edge.dst, Tasklet):
                tasklet = edge.dst
            elif isinstance(edge.src, Tasklet):
                tasklet = edge.src
            if tasklet is None or tasklet not in self.tasklet_executions:
                continue
            per_execution = memlet.subset.num_elements()
            try:
                volume = float(per_execution.evaluate({}))
            except EvaluationError:
                continue  # symbolic per-execution subsets need env context
            out[edge] = volume * self.tasklet_executions[tasklet]
        return out

    def time_heatmap(self) -> dict[Node, float]:
        """Per-tasklet measured wall time (the classic profiler overlay)."""
        return dict(self.tasklet_seconds)

    def total_executions(self) -> int:
        return sum(self.tasklet_executions.values())

    def __repr__(self) -> str:
        return (
            f"ProfileReport({len(self.tasklet_executions)} tasklets, "
            f"{self.total_executions()} executions)"
        )


def profile_execution(
    sdfg: SDFG,
    arrays: Mapping[str, np.ndarray],
    symbols: Mapping[str, int] | None = None,
) -> ProfileReport:
    """Run *sdfg* through the instrumented interpreter, collecting metrics.

    The arrays are modified in place exactly as by
    :func:`repro.codegen.interpret_sdfg`; the report carries the gathered
    per-tasklet counts and timings.
    """
    from repro.codegen.interpreter import interpret_sdfg

    report = ProfileReport(sdfg)
    last: dict[str, object] = {"tasklet": None, "start": None}

    def hook(state, tasklet, env):
        now = time.perf_counter()
        prev = last["tasklet"]
        if prev is not None:
            report.tasklet_seconds[prev] = report.tasklet_seconds.get(prev, 0.0) + (
                now - last["start"]  # type: ignore[operator]
            )
        report.tasklet_executions[tasklet] = (
            report.tasklet_executions.get(tasklet, 0) + 1
        )
        last["tasklet"] = tasklet
        last["start"] = now

    start = time.perf_counter()
    interpret_sdfg(sdfg, arrays, symbols, on_tasklet=hook)
    end = time.perf_counter()
    prev = last["tasklet"]
    if prev is not None:
        report.tasklet_seconds[prev] = report.tasklet_seconds.get(prev, 0.0) + (
            end - last["start"]  # type: ignore[operator]
        )
    del start
    return report
