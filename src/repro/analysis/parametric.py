"""Parametric scaling analysis (paper Section IV-D) and local-view sweeps.

Symbolic metrics become concrete numbers under a symbol assignment; the
global view "adapt[s] the heatmap visualizations on the fly by
re-evaluating symbolic expressions with the new values".  A
:class:`ParameterSweep` automates the interactive what-if loop: vary one
(or more) parameters and collect how a metric responds, exposing which
input parameters dominate performance.

:func:`sweep_local_views` extends the what-if loop to the *local* view:
every point of a parameter grid runs the full simulation → layout →
stack-distance → miss-classification pipeline and yields a
:class:`LocalSweepPoint`.  Points are independent, so the sweep fans out
over worker processes via the fault-tolerant
:class:`~repro.analysis.executor.SweepExecutor` (the SDFG travels as its
JSON serialization, each worker deserializes once); a serial path
remains both as the narrow pool-cannot-spawn fallback and for
``workers<=1``.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Callable, Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

from repro.errors import AnalysisError, EvaluationError
from repro.symbolic.expr import Expr

__all__ = [
    "evaluate_metrics",
    "evaluate_metrics_grid",
    "ParameterSweep",
    "SweepResult",
    "LocalSweepPoint",
    "parameter_grid",
    "sweep_local_views",
]

K = TypeVar("K", bound=Hashable)


def evaluate_metrics(
    metrics: Mapping[K, Expr], env: Mapping[str, int | float]
) -> dict[K, float]:
    """Evaluate a symbolic metric map under the parameter values *env*.

    Raises :class:`~repro.errors.AnalysisError` naming the first metric
    whose expression still contains unassigned symbols.
    """
    out: dict[K, float] = {}
    for key, expr in metrics.items():
        try:
            out[key] = float(expr.evaluate(env))
        except EvaluationError as exc:
            raise AnalysisError(
                f"metric for {key!r} cannot be evaluated: {exc}"
            ) from exc
    return out


def evaluate_metrics_grid(
    metrics: Mapping[K, Expr],
    envs: Sequence[Mapping[str, int | float]],
    *,
    metrics_registry=None,
    tracer=None,
) -> dict[K, list[float]]:
    """Batched :func:`evaluate_metrics`: all of *envs* in one compiled call.

    Each metric expression is compiled once (hash-consed and cached
    process-wide, see :mod:`repro.symbolic.compiled`) and evaluated over
    the whole grid as vectorized array ops.  Returns one value list per
    metric, ordered like *envs*.  Raises
    :class:`~repro.errors.AnalysisError` naming the first metric that
    cannot be evaluated, matching :func:`evaluate_metrics`.
    """
    from repro.symbolic.compiled import compile_expr
    from repro.symbolic.expr import Number

    out: dict[K, list[float]] = {}
    for key, expr in metrics.items():
        # Constant metrics (common: fixed-size edges) skip the compile
        # machinery entirely — a broadcast beats any program.
        if isinstance(expr, Number):
            out[key] = [float(expr.value)] * len(envs)
            continue
        try:
            fn = compile_expr(expr, metrics=metrics_registry, tracer=tracer)
            out[key] = [float(v) for v in fn.eval_points(envs)]
        except (EvaluationError, KeyError) as exc:
            raise AnalysisError(
                f"metric for {key!r} cannot be evaluated: {exc}"
            ) from exc
    return out


class SweepResult(Generic[K]):
    """Series data from a parameter sweep: one metric value per point."""

    def __init__(self, parameter: str, points: Sequence[int | float]):
        self.parameter = parameter
        self.points: list[int | float] = list(points)
        self.values: list[float] = []

    def growth_factors(self) -> list[float]:
        """Ratio between consecutive metric values (scaling behaviour)."""
        return [
            b / a if a else float("inf")
            for a, b in zip(self.values[:-1], self.values[1:])
        ]

    def __iter__(self):
        return iter(zip(self.points, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{p}: {v:g}" for p, v in self)
        return f"SweepResult({self.parameter}; {pairs})"


class ParameterSweep:
    """Sweep one parameter while holding the rest of *base_env* fixed.

    Example::

        sweep = ParameterSweep(base_env={"I": 64, "J": 64, "K": 64})
        result = sweep.run("I", [64, 128, 256], total_movement)
    """

    def __init__(
        self,
        base_env: Mapping[str, int | float],
        *,
        metrics_registry=None,
        tracer=None,
    ):
        self.base_env = dict(base_env)
        self.metrics_registry = metrics_registry
        self.tracer = tracer

    def run(
        self,
        parameter: str,
        points: Iterable[int | float],
        metric: Expr | Callable[[Mapping[str, int | float]], float],
    ) -> SweepResult:
        """Evaluate *metric* at every sweep point.

        *metric* is a symbolic expression or a callable receiving the full
        environment (for metrics that are not a single expression).
        Symbolic metrics are compiled once and evaluated over all points
        in a single batched call (:mod:`repro.symbolic.compiled`).
        """
        result = SweepResult(parameter, list(points))
        if isinstance(metric, Expr):
            envs = [
                {**self.base_env, parameter: point} for point in result.points
            ]
            try:
                result.values = self._eval_grid(metric, envs)
                return result
            except EvaluationError:
                # Re-run point by point so the error names the first
                # offending sweep point, like the serial path always did.
                pass
        for point in result.points:
            env = dict(self.base_env)
            env[parameter] = point
            if isinstance(metric, Expr):
                try:
                    value = float(metric.evaluate(env))
                except EvaluationError as exc:
                    raise AnalysisError(f"sweep point {point}: {exc}") from exc
            else:
                value = float(metric(env))
            result.values.append(value)
        return result

    def _eval_grid(
        self, metric: Expr, envs: Sequence[Mapping[str, int | float]]
    ) -> list[float]:
        from repro.symbolic.compiled import compile_expr

        fn = compile_expr(
            metric, metrics=self.metrics_registry, tracer=self.tracer
        )
        return [float(v) for v in fn.eval_points(envs)]

    def rank_parameters(
        self,
        metric: Expr,
        scale_factor: float = 2.0,
    ) -> list[tuple[str, float]]:
        """Rank parameters by metric growth when each is scaled alone.

        Returns ``(parameter, growth)`` pairs sorted by descending growth —
        the "which input parameters are crucial factors" question of the
        paper, answered without program execution.  All scaled
        environments (plus the base point) evaluate as one batched call.
        """
        names = sorted(metric.free_symbols())
        for name in names:
            if name not in self.base_env:
                raise AnalysisError(f"no base value for parameter {name!r}")
        envs: list[Mapping[str, int | float]] = [self.base_env]
        for name in names:
            env = dict(self.base_env)
            env[name] = env[name] * scale_factor
            envs.append(env)
        try:
            values = self._eval_grid(metric, envs)
        except EvaluationError as exc:
            raise AnalysisError(
                f"cannot evaluate metric at the base point: {exc}"
            ) from exc
        base = values[0]
        if base == 0:
            raise AnalysisError("metric evaluates to zero at the base point")
        ranking = [
            (name, scaled / base) for name, scaled in zip(names, values[1:])
        ]
        ranking.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranking


# -- local-view parametric sweeps ---------------------------------------------


def parameter_grid(spec: Mapping[str, Iterable[int]]) -> list[dict[str, int]]:
    """Cross product of per-parameter value lists, as environment dicts.

    ``parameter_grid({"I": [8, 16], "J": [8]})`` yields
    ``[{"I": 8, "J": 8}, {"I": 16, "J": 8}]`` — points vary the *last*
    parameter fastest, matching :func:`itertools.product`.
    """
    names = list(spec)
    axes = [list(spec[name]) for name in names]
    if not names:
        return [{}]
    return [dict(zip(names, combo)) for combo in itertools.product(*axes)]


class LocalSweepPoint:
    """Locality metrics of one parameter point of a local-view sweep.

    Picklable (it crosses process boundaries when the sweep fans out):

    - :attr:`params` — the evaluated symbol assignment;
    - :attr:`misses` — per-container
      :class:`~repro.simulation.cache.MissCounts`;
    - :attr:`moved_bytes` — estimated physical movement per container;
    - :attr:`total_accesses` — trace length;
    - :attr:`seconds` — pipeline wall time for this point.
    """

    __slots__ = ("params", "misses", "moved_bytes", "total_accesses", "seconds")

    def __init__(
        self,
        params: dict[str, int],
        misses: dict,
        moved_bytes: dict[str, int],
        total_accesses: int,
        seconds: float,
    ):
        self.params = params
        self.misses = misses
        self.moved_bytes = moved_bytes
        self.total_accesses = total_accesses
        self.seconds = seconds

    @property
    def total_misses(self) -> int:
        return sum(counts.misses for counts in self.misses.values())

    @property
    def total_moved_bytes(self) -> int:
        return sum(self.moved_bytes.values())

    def to_dict(self) -> dict:
        """JSON-ready summary (the analysis service's response payload)."""
        containers = {}
        for name in sorted(set(self.misses) | set(self.moved_bytes)):
            counts = self.misses.get(name)
            entry = {
                "hits": 0 if counts is None else counts.hits,
                "cold": 0 if counts is None else counts.cold,
                "capacity": 0 if counts is None else counts.capacity,
                "conflict": 0 if counts is None else counts.conflict,
                "misses": 0 if counts is None else counts.misses,
                "moved_bytes": int(self.moved_bytes.get(name, 0)),
            }
            containers[name] = entry
        return {
            "params": dict(self.params),
            "total_accesses": int(self.total_accesses),
            "total_misses": int(self.total_misses),
            "total_moved_bytes": int(self.total_moved_bytes),
            "seconds": float(self.seconds),
            "containers": containers,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalSweepPoint):
            return NotImplemented
        return (
            self.params == other.params
            and self.misses == other.misses
            and self.moved_bytes == other.moved_bytes
            and self.total_accesses == other.total_accesses
        )

    def __repr__(self) -> str:
        return (
            f"LocalSweepPoint({self.params}, accesses={self.total_accesses}, "
            f"misses={self.total_misses}, moved={self.total_moved_bytes}B)"
        )


def _evaluate_point(
    sdfg,
    params: Mapping[str, int],
    line_size: int,
    capacity_lines: int,
    include_transients: bool,
    fast: bool,
    timings=None,
) -> LocalSweepPoint:
    """Run the locality pipeline at one parameter point (array-first).

    *timings* is an optional span collector (a
    :class:`~repro.analysis.timing.StageTimings` or
    :class:`~repro.obs.trace.Tracer`) receiving the per-stage spans of
    this point's pipeline run.
    """
    from repro.analysis.timing import maybe_span
    from repro.errors import ReproError
    from repro.locality import analyze_locality
    from repro.simulation import (
        CacheModel,
        MemoryModel,
        build_array_trace,
        per_container_misses,
        per_container_misses_array,
        simulate_state,
        stack_distances,
        stack_distances_array,
    )
    from repro.simulation.stackdist import line_trace

    start = perf_counter()
    # Analytic-first: the closed-form engine answers exactly when it
    # applies; any engine failure falls back to plain enumeration.
    try:
        with maybe_span(timings, "locality:analytic"):
            analytic = analyze_locality(
                sdfg, params, line_size=line_size,
                include_transients=include_transients, fast=fast,
                timings=timings,
            )
    except ReproError:
        analytic = None
    if analytic is not None:
        with maybe_span(timings, "classify"):
            misses = analytic.miss_counts(capacity_lines)
        moved = {
            name: counts.misses * line_size for name, counts in misses.items()
        }
        return LocalSweepPoint(
            params=dict(params),
            misses=misses,
            moved_bytes=moved,
            total_accesses=analytic.total_events,
            seconds=perf_counter() - start,
        )
    result = simulate_state(
        sdfg, params, include_transients=include_transients, fast=fast,
        timings=timings,
    )
    with maybe_span(timings, "layout"):
        memory = MemoryModel(sdfg, params, line_size=line_size)
        trace = build_array_trace(result, memory)
    model = CacheModel(line_size=line_size, capacity_lines=capacity_lines)
    if trace is not None:
        with maybe_span(timings, "stackdist"):
            distances = stack_distances_array(trace.lines)
        with maybe_span(timings, "classify"):
            misses = per_container_misses_array(trace, distances, model)
    else:
        with maybe_span(timings, "stackdist"):
            distances = stack_distances(line_trace(result.events, memory))
        with maybe_span(timings, "classify"):
            misses = per_container_misses(result.events, memory, model, distances)
    moved = {name: counts.misses * line_size for name, counts in misses.items()}
    return LocalSweepPoint(
        params=dict(params),
        misses=misses,
        moved_bytes=moved,
        total_accesses=result.num_events,
        seconds=perf_counter() - start,
    )


def sweep_local_views(
    sdfg,
    grid: Sequence[Mapping[str, int]],
    workers: int | None = None,
    line_size: int = 64,
    capacity_lines: int = 512,
    include_transients: bool = False,
    fast: bool = True,
    tracer=None,
    metrics=None,
    adaptive: bool = False,
    batch: int | None = None,
) -> list[LocalSweepPoint]:
    """Evaluate the local-view pipeline at every point of *grid*.

    With ``workers > 1`` the points fan out over a worker-process pool
    managed by :class:`~repro.analysis.executor.SweepExecutor` (the SDFG
    is shipped as JSON and deserialized once per worker); the result
    order always matches *grid*.  With ``adaptive=True`` the executor
    first times one point serially and only spawns the pool when the
    measured cost predicts a wall-clock win.

    Error-handling contract: only the narrow "pool cannot be spawned"
    case (no fork/spawn support, unpicklable payload, or a pool that
    dies before producing a single result) falls back to serial
    evaluation.  A deterministic library error at one point — e.g. an
    :class:`~repro.errors.AnalysisError` from the pipeline — propagates
    immediately as :class:`~repro.errors.AnalysisError` naming the
    failing point's parameters; completed points are never re-run.  For
    partial results with structured per-point error records, use
    :class:`~repro.analysis.executor.SweepExecutor` (or
    ``Session.sweep(on_error="record")``) directly.
    """
    from repro.analysis.executor import SweepExecutor

    executor = SweepExecutor(
        workers=None if workers is None or workers <= 1 else workers,
        tracer=tracer,
        metrics=metrics,
        adaptive=adaptive,
        batch=batch,
    )
    run = executor.run(
        sdfg,
        grid,
        line_size=line_size,
        capacity_lines=capacity_lines,
        include_transients=include_transients,
        fast=fast,
        fail_fast=True,
    )
    return run.points
