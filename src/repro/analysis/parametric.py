"""Parametric scaling analysis (paper Section IV-D).

Symbolic metrics become concrete numbers under a symbol assignment; the
global view "adapt[s] the heatmap visualizations on the fly by
re-evaluating symbolic expressions with the new values".  A
:class:`ParameterSweep` automates the interactive what-if loop: vary one
(or more) parameters and collect how a metric responds, exposing which
input parameters dominate performance.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

from repro.errors import AnalysisError, EvaluationError
from repro.symbolic.expr import Expr

__all__ = ["evaluate_metrics", "ParameterSweep", "SweepResult"]

K = TypeVar("K", bound=Hashable)


def evaluate_metrics(
    metrics: Mapping[K, Expr], env: Mapping[str, int | float]
) -> dict[K, float]:
    """Evaluate a symbolic metric map under the parameter values *env*.

    Raises :class:`~repro.errors.AnalysisError` naming the first metric
    whose expression still contains unassigned symbols.
    """
    out: dict[K, float] = {}
    for key, expr in metrics.items():
        try:
            out[key] = float(expr.evaluate(env))
        except EvaluationError as exc:
            raise AnalysisError(
                f"metric for {key!r} cannot be evaluated: {exc}"
            ) from exc
    return out


class SweepResult(Generic[K]):
    """Series data from a parameter sweep: one metric value per point."""

    def __init__(self, parameter: str, points: Sequence[int | float]):
        self.parameter = parameter
        self.points: list[int | float] = list(points)
        self.values: list[float] = []

    def growth_factors(self) -> list[float]:
        """Ratio between consecutive metric values (scaling behaviour)."""
        return [
            b / a if a else float("inf")
            for a, b in zip(self.values[:-1], self.values[1:])
        ]

    def __iter__(self):
        return iter(zip(self.points, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{p}: {v:g}" for p, v in self)
        return f"SweepResult({self.parameter}; {pairs})"


class ParameterSweep:
    """Sweep one parameter while holding the rest of *base_env* fixed.

    Example::

        sweep = ParameterSweep(base_env={"I": 64, "J": 64, "K": 64})
        result = sweep.run("I", [64, 128, 256], total_movement)
    """

    def __init__(self, base_env: Mapping[str, int | float]):
        self.base_env = dict(base_env)

    def run(
        self,
        parameter: str,
        points: Iterable[int | float],
        metric: Expr | Callable[[Mapping[str, int | float]], float],
    ) -> SweepResult:
        """Evaluate *metric* at every sweep point.

        *metric* is a symbolic expression or a callable receiving the full
        environment (for metrics that are not a single expression).
        """
        result = SweepResult(parameter, list(points))
        for point in result.points:
            env = dict(self.base_env)
            env[parameter] = point
            if isinstance(metric, Expr):
                try:
                    value = float(metric.evaluate(env))
                except EvaluationError as exc:
                    raise AnalysisError(f"sweep point {point}: {exc}") from exc
            else:
                value = float(metric(env))
            result.values.append(value)
        return result

    def rank_parameters(
        self,
        metric: Expr,
        scale_factor: float = 2.0,
    ) -> list[tuple[str, float]]:
        """Rank parameters by metric growth when each is scaled alone.

        Returns ``(parameter, growth)`` pairs sorted by descending growth —
        the "which input parameters are crucial factors" question of the
        paper, answered without program execution.
        """
        ranking: list[tuple[str, float]] = []
        try:
            base = float(metric.evaluate(self.base_env))
        except EvaluationError as exc:
            raise AnalysisError(f"cannot evaluate metric at the base point: {exc}") from exc
        if base == 0:
            raise AnalysisError("metric evaluates to zero at the base point")
        for name in sorted(metric.free_symbols()):
            if name not in self.base_env:
                raise AnalysisError(f"no base value for parameter {name!r}")
            env = dict(self.base_env)
            env[name] = env[name] * scale_factor
            ranking.append((name, float(metric.evaluate(env)) / base))
        ranking.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranking
