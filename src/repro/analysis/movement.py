"""Logical data-movement volume analysis.

"The amount of data being accessed by or moved between individual
operations in the program is statically determined when SDFGs are
generated" (paper Section IV-B).  Every dataflow edge carries a memlet with
a symbolic subset; its volume (in elements or bytes) is the metric behind
the global view's data-movement heatmap.

Per-edge values color individual edges.  Program totals must not double
count the same movement at several scope levels, so aggregations only sum
*container-adjacent* edges — edges that leave or enter an access node,
i.e. the points where data actually crosses a container boundary.
"""

from __future__ import annotations

from repro.graph import Edge
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import Connection, SDFGState
from repro.symbolic.expr import Expr, Integer, add, mul

__all__ = [
    "edge_movement_volumes",
    "edge_movement_bytes",
    "container_movement_bytes",
    "total_movement_bytes",
]

StateEdge = Edge["object", Connection]


def edge_movement_volumes(state: SDFGState) -> dict[StateEdge, Expr]:
    """Moved volume in *elements* for every memlet-carrying edge."""
    return {edge: memlet.volume() for edge, memlet in state.all_memlets()}


def edge_movement_bytes(
    sdfg: SDFG, state: SDFGState | None = None, unique: bool = False
) -> dict[StateEdge, Expr]:
    """Moved volume in *bytes* for every memlet-carrying edge.

    With *state* ``None``, all states of *sdfg* are analyzed.

    ``unique=True`` counts each edge's *subset size* (distinct elements
    crossing the edge) instead of the access count.  This is the metric
    behind the global view's movement heatmap: what matters for spotting
    fusible high-volume chains is how much distinct data the program
    materializes and re-reads between operations — repeated reads of the
    same element within a scope are a cache concern the *local* view
    quantifies.
    """
    states = [state] if state is not None else sdfg.states()
    out: dict[StateEdge, Expr] = {}
    for st in states:
        for edge, memlet in st.all_memlets():
            out[edge] = _memlet_bytes(sdfg, memlet, unique=unique)
    return out


def _memlet_bytes(sdfg: SDFG, memlet: Memlet, unique: bool = False) -> Expr:
    desc = sdfg.arrays.get(memlet.data)
    itemsize = desc.dtype.itemsize if desc is not None else 1
    volume = memlet.subset.num_elements() if unique else memlet.volume()
    return mul(volume, Integer(itemsize))


def _container_adjacent_memlets(state: SDFGState):
    """(container, memlet, is_write) for every edge touching an access node.

    An edge out of an access node is a read of that container; an edge into
    one is a write.  Edges between two access nodes (copies) count once as
    a read of the source and once as a write of the destination.  Transient
    scalars are excluded: per-iteration scalars live in registers and move
    no memory traffic.
    """
    from repro.sdfg.data import Scalar

    def register_resident(data: str) -> bool:
        desc = state.sdfg.arrays.get(data) if state.sdfg is not None else None
        return isinstance(desc, Scalar) and desc.transient

    for edge, memlet in state.all_memlets():
        if isinstance(edge.src, AccessNode) and not register_resident(edge.src.data):
            yield edge.src.data, memlet, False
        if isinstance(edge.dst, AccessNode) and not register_resident(edge.dst.data):
            yield edge.dst.data, memlet, True


def container_movement_bytes(
    sdfg: SDFG, split_reads_writes: bool = False, unique: bool = False
) -> dict[str, Expr] | dict[str, tuple[Expr, Expr]]:
    """Total bytes moved to/from each container across all states.

    With ``split_reads_writes=True``, the result maps each container to a
    ``(read_bytes, written_bytes)`` pair instead of their sum.  With
    ``unique=True``, per-edge subset sizes are counted instead of access
    counts (see :func:`edge_movement_bytes`).
    """
    reads: dict[str, Expr] = {}
    writes: dict[str, Expr] = {}
    for state in sdfg.states():
        for container, memlet, is_write in _container_adjacent_memlets(state):
            bucket = writes if is_write else reads
            current = bucket.get(container, Integer(0))
            bucket[container] = add(current, _memlet_bytes(sdfg, memlet, unique=unique))
    if split_reads_writes:
        all_names = sorted(set(reads) | set(writes))
        return {
            name: (reads.get(name, Integer(0)), writes.get(name, Integer(0)))
            for name in all_names
        }
    totals: dict[str, Expr] = {}
    for name in set(reads) | set(writes):
        totals[name] = add(reads.get(name, Integer(0)), writes.get(name, Integer(0)))
    return totals


def total_movement_bytes(sdfg: SDFG, unique: bool = False) -> Expr:
    """Total logical data movement of the whole program, in bytes."""
    total: Expr = Integer(0)
    for volume in container_movement_bytes(sdfg, unique=unique).values():
        total = add(total, volume)
    return total
