"""Static analyses backing the global view (paper Section IV).

- :mod:`repro.analysis.movement` — logical data-movement volumes per edge,
  per container and whole-program (symbolic, from memlets).
- :mod:`repro.analysis.opcount` — arithmetic-operation counts per tasklet /
  scope / program, obtained by walking tasklet ASTs.
- :mod:`repro.analysis.intensity` — arithmetic intensity (ops per moved
  byte) per scope and program.
- :mod:`repro.analysis.parametric` — re-evaluation of symbolic metrics
  under concrete parameter values and parameter sweeps (the "parametric
  scaling analysis" of Section IV-D).
- :mod:`repro.analysis.executor` — fault-tolerant parallel execution of
  local-view sweeps with retries, timeouts and structured per-point
  error records.
"""

from repro.analysis.executor import (
    CancelToken,
    SweepExecutor,
    SweepPointError,
    SweepRun,
)
from repro.analysis.intensity import (
    program_intensity,
    scope_intensities,
)
from repro.analysis.movement import (
    container_movement_bytes,
    edge_movement_bytes,
    edge_movement_volumes,
    total_movement_bytes,
)
from repro.analysis.opcount import (
    count_expression_ops,
    program_ops,
    scope_ops,
    tasklet_ops,
)
from repro.analysis.parametric import (
    LocalSweepPoint,
    ParameterSweep,
    evaluate_metrics,
    parameter_grid,
    sweep_local_views,
)
from repro.analysis.timing import STAGES, StageTimings

__all__ = [
    "STAGES",
    "StageTimings",
    "edge_movement_volumes",
    "edge_movement_bytes",
    "container_movement_bytes",
    "total_movement_bytes",
    "count_expression_ops",
    "tasklet_ops",
    "scope_ops",
    "program_ops",
    "scope_intensities",
    "program_intensity",
    "evaluate_metrics",
    "ParameterSweep",
    "LocalSweepPoint",
    "parameter_grid",
    "sweep_local_views",
    "CancelToken",
    "SweepExecutor",
    "SweepPointError",
    "SweepRun",
]
