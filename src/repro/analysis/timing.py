"""Lightweight wall-time instrumentation of the analysis pipeline stages.

The paper's interactive loop lives or dies by the local view re-running
"in a fraction of a second"; to keep that property measurable, every
stage of the pipeline records wall-time spans into a
:class:`StageTimings` collector owned by the session:

- ``enumerate`` — concretizing iteration spaces / building index grids,
- ``evaluate``  — materializing the access trace (vectorized or
  interpreted),
- ``layout``    — physical layout construction and element→line mapping,
- ``stackdist`` — reuse-distance computation,
- ``classify``  — miss classification and movement estimation,
- ``fanout``    — dispatching parametric-sweep points to workers,
- ``merge``     — folding worker results back into the session cache.

The collector is queryable from :class:`~repro.tool.session.Session` and
printed by the CLI under ``--timings``.

The hierarchical :class:`~repro.obs.trace.Tracer` generalizes this
collector: it exposes the same ``span``/``add`` recording interface, so
every ``timings=`` parameter in the simulation and analysis layers
accepts either.  Span context managers yield an attribute sink — a real
:class:`~repro.obs.trace.Span` from a tracer, a no-op
:class:`~repro.obs.trace.NullSpan` here — so instrumented code can
attach metadata (event counts, point parameters) unconditionally.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.obs.trace import NULL_SPAN

__all__ = ["STAGES", "StageTimings", "maybe_span"]

#: Canonical pipeline stage names, in pipeline order.
STAGES = ("enumerate", "evaluate", "layout", "stackdist", "classify", "fanout", "merge")


class StageTimings:
    """Per-stage wall-time spans with aggregate queries."""

    def __init__(self) -> None:
        self._spans: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------
    def add(self, stage: str, seconds: float) -> None:
        self._spans.setdefault(stage, []).append(float(seconds))

    @contextmanager
    def span(self, stage: str):
        """Context manager recording one wall-time span for *stage*.

        Yields a no-op attribute sink; the hierarchical tracer yields a
        real span whose ``set()`` attaches attributes.
        """
        start = perf_counter()
        try:
            yield NULL_SPAN
        finally:
            self.add(stage, perf_counter() - start)

    # -- queries -----------------------------------------------------------
    def stages(self) -> list[str]:
        """Stages with at least one span, canonical stages first."""
        known = [s for s in STAGES if s in self._spans]
        extra = [s for s in self._spans if s not in STAGES]
        return known + extra

    def spans(self, stage: str) -> list[float]:
        return list(self._spans.get(stage, ()))

    def count(self, stage: str) -> int:
        return len(self._spans.get(stage, ()))

    def total(self, stage: str | None = None) -> float:
        """Total seconds of one stage (or of the whole pipeline)."""
        if stage is not None:
            return sum(self._spans.get(stage, ()))
        return sum(sum(v) for v in self._spans.values())

    def rows(self) -> list[tuple[str, int, float]]:
        """``(stage, span count, total seconds)`` per recorded stage."""
        return [(s, self.count(s), self.total(s)) for s in self.stages()]

    def to_dict(self) -> dict[str, dict[str, float]]:
        """``{stage: {count, seconds}}`` for JSON export."""
        return {
            stage: {"count": count, "seconds": total}
            for stage, count, total in self.rows()
        }

    def report(self) -> str:
        """A small fixed-width table of the recorded stages."""
        rows = self.rows()
        if not rows:
            return "no stages recorded"
        width = max(len(s) for s, _, _ in rows)
        lines = [f"{'stage'.ljust(width)}  spans      total"]
        for stage, count, total in rows:
            lines.append(f"{stage.ljust(width)}  {count:5d}  {total * 1e3:7.2f}ms")
        lines.append(f"{'(all)'.ljust(width)}  {'':5}  {self.total() * 1e3:7.2f}ms")
        return "\n".join(lines)

    def reset(self) -> None:
        self._spans.clear()

    def __repr__(self) -> str:
        return f"StageTimings({', '.join(self.stages()) or 'empty'})"


@contextmanager
def maybe_span(timings, stage: str) -> Iterator:
    """Record a span when *timings* is provided; otherwise a no-op.

    *timings* is any collector with a ``span(name)`` context manager —
    a :class:`StageTimings` or a :class:`~repro.obs.trace.Tracer`.
    Always yields an attribute sink supporting ``set(**attrs)``.
    """
    if timings is None:
        yield NULL_SPAN
        return
    with timings.span(stage) as span:
        yield span if span is not None else NULL_SPAN
