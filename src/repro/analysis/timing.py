"""Lightweight wall-time instrumentation of the analysis pipeline stages.

The paper's interactive loop lives or dies by the local view re-running
"in a fraction of a second"; to keep that property measurable, every
stage of the pipeline records wall-time spans into a
:class:`StageTimings` collector owned by the session:

- ``enumerate`` — concretizing iteration spaces / building index grids,
- ``evaluate``  — materializing the access trace (vectorized or
  interpreted),
- ``layout``    — physical layout construction and element→line mapping,
- ``stackdist`` — reuse-distance computation,
- ``classify``  — miss classification and movement estimation,
- ``fanout``    — dispatching parametric-sweep points to workers,
- ``merge``     — folding worker results back into the session cache.

The collector is queryable from :class:`~repro.tool.session.Session` and
printed by the CLI under ``--timings``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

__all__ = ["STAGES", "StageTimings", "maybe_span"]

#: Canonical pipeline stage names, in pipeline order.
STAGES = ("enumerate", "evaluate", "layout", "stackdist", "classify", "fanout", "merge")


class StageTimings:
    """Per-stage wall-time spans with aggregate queries."""

    def __init__(self) -> None:
        self._spans: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------
    def add(self, stage: str, seconds: float) -> None:
        self._spans.setdefault(stage, []).append(float(seconds))

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """Context manager recording one wall-time span for *stage*."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add(stage, perf_counter() - start)

    # -- queries -----------------------------------------------------------
    def stages(self) -> list[str]:
        """Stages with at least one span, canonical stages first."""
        known = [s for s in STAGES if s in self._spans]
        extra = [s for s in self._spans if s not in STAGES]
        return known + extra

    def spans(self, stage: str) -> list[float]:
        return list(self._spans.get(stage, ()))

    def count(self, stage: str) -> int:
        return len(self._spans.get(stage, ()))

    def total(self, stage: str | None = None) -> float:
        """Total seconds of one stage (or of the whole pipeline)."""
        if stage is not None:
            return sum(self._spans.get(stage, ()))
        return sum(sum(v) for v in self._spans.values())

    def rows(self) -> list[tuple[str, int, float]]:
        """``(stage, span count, total seconds)`` per recorded stage."""
        return [(s, self.count(s), self.total(s)) for s in self.stages()]

    def report(self) -> str:
        """A small fixed-width table of the recorded stages."""
        rows = self.rows()
        if not rows:
            return "no stages recorded"
        width = max(len(s) for s, _, _ in rows)
        lines = [f"{'stage'.ljust(width)}  spans      total"]
        for stage, count, total in rows:
            lines.append(f"{stage.ljust(width)}  {count:5d}  {total * 1e3:7.2f}ms")
        lines.append(f"{'(all)'.ljust(width)}  {'':5}  {self.total() * 1e3:7.2f}ms")
        return "\n".join(lines)

    def reset(self) -> None:
        self._spans.clear()

    def __repr__(self) -> str:
        return f"StageTimings({', '.join(self.stages()) or 'empty'})"


@contextmanager
def maybe_span(timings: StageTimings | None, stage: str) -> Iterator[None]:
    """Record a span when *timings* is provided; otherwise a no-op."""
    if timings is None:
        yield
        return
    with timings.span(stage):
        yield
