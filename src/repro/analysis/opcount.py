"""Arithmetic-operation counting.

"We extract information on arithmetic or operational intensity separately
by parsing the abstract syntax tree of individual computations, counting
the number of arithmetic operations" (paper Section IV-B).

Counting is weight-based: every arithmetic AST construct contributes a
configurable weight (default 1; transcendental intrinsics default higher,
reflecting their polynomial-approximation cost).  Whole-program counts
multiply per-tasklet counts by the iteration counts of all enclosing map
scopes, yielding symbolic totals that the parametric analysis re-evaluates.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.errors import AnalysisError
from repro.sdfg.nodes import MapEntry, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.expr import Expr, Integer, add, mul

__all__ = [
    "DEFAULT_CALL_WEIGHTS",
    "count_expression_ops",
    "tasklet_ops",
    "scope_ops",
    "program_ops",
]

#: Default operation weights for intrinsic calls.
DEFAULT_CALL_WEIGHTS: dict[str, int] = {
    "abs": 1,
    "min": 1,
    "max": 1,
    "floor": 1,
    "ceil": 1,
    "sqrt": 1,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "tanh": 1,
    "erf": 1,
}


class _OpCounter(ast.NodeVisitor):
    def __init__(self, call_weights: Mapping[str, int]):
        self.count = 0
        self.call_weights = call_weights

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self.count += 1
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, (ast.USub, ast.Invert)):
            self.count += 1
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self.count += len(node.ops)
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        self.count += len(node.values) - 1
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = node.func.id if isinstance(node.func, ast.Name) else None
        self.count += self.call_weights.get(name, 1) if name else 1
        for arg in node.args:
            self.visit(arg)


def count_expression_ops(
    code: str, call_weights: Mapping[str, int] | None = None
) -> int:
    """Arithmetic operations in a tasklet code string."""
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse tasklet code {code!r}: {exc}") from exc
    counter = _OpCounter(call_weights or DEFAULT_CALL_WEIGHTS)
    counter.visit(tree)
    return counter.count


def tasklet_ops(
    tasklet: Tasklet, call_weights: Mapping[str, int] | None = None
) -> int:
    """Arithmetic operations of one tasklet execution."""
    return count_expression_ops(tasklet.code, call_weights)


def _scope_iterations(state: SDFGState, node: Node) -> Expr:
    """Product of iteration counts of all map scopes enclosing *node*."""
    sdict = state.scope_dict()
    total: Expr = Integer(1)
    scope = sdict.get(node)
    while scope is not None:
        total = mul(total, scope.map.num_iterations())
        scope = sdict.get(scope)
    return total


def scope_ops(
    state: SDFGState,
    call_weights: Mapping[str, int] | None = None,
) -> dict[Node, Expr]:
    """Total (symbolic) operation count attributed to each node.

    Tasklets get ``per-execution ops × enclosing iterations``; map entries
    aggregate everything inside their scope (so the global view can color
    collapsed scopes); other nodes get zero and are omitted.
    """
    sdict = state.scope_dict()
    result: dict[Node, Expr] = {}
    for tasklet in state.tasklets():
        base = tasklet_ops(tasklet, call_weights)
        # A write-conflict-resolved output performs one extra reduction
        # operation per execution (the accumulate).
        base += sum(
            1
            for e in state.out_edges(tasklet)
            if e.data.memlet is not None and e.data.memlet.wcr is not None
        )
        ops = mul(Integer(base), _scope_iterations(state, tasklet))
        result[tasklet] = ops
        # Attribute to every enclosing map entry as well.
        scope = sdict.get(tasklet)
        while scope is not None:
            result[scope] = add(result.get(scope, Integer(0)), ops)
            scope = sdict.get(scope)
    return result


def program_ops(
    sdfg: SDFG, call_weights: Mapping[str, int] | None = None
) -> Expr:
    """Total symbolic operation count of the whole program."""
    total: Expr = Integer(0)
    for state in sdfg.states():
        for node, ops in scope_ops(state, call_weights).items():
            if isinstance(node, MapEntry):
                continue  # already counted via the tasklets inside
            total = add(total, ops)
    return total
