"""Fault-tolerant execution of local-view parametric sweeps.

:class:`SweepExecutor` runs the locality pipeline over a parameter grid
with the error-handling contract a long-running analysis service needs:

- **per-point outcomes** — a failing point yields a structured
  :class:`SweepPointError` record instead of poisoning the whole grid;
  every other point still completes, and results always come back in
  grid order;
- **retry with backoff** — transient, non-library failures (I/O errors,
  worker hiccups) are retried up to ``retries`` times with exponential
  backoff; deterministic library errors (:class:`~repro.errors.ReproError`
  subclasses) are *never* retried — rerunning them only doubles the work;
- **per-point timeouts** — a point that exceeds ``timeout`` seconds
  (measured from submission) is recorded as a timeout and abandoned;
- **process-pool crash recovery** — a worker killed mid-sweep breaks the
  :class:`~concurrent.futures.ProcessPoolExecutor`; the executor
  respawns the pool and resubmits *only the unfinished points*
  (completed results are never recomputed);
- **cooperative cancellation** — a :class:`CancelToken` stops the sweep
  at the next point boundary, marking unfinished points as cancelled;
- **narrow serial fallback** — only when the pool *cannot be spawned at
  all* (no fork/spawn support, pickling of the payload impossible, or
  the pool breaks before any point ever completed and respawning does
  not help) does the executor fall back to in-process serial
  evaluation.  Library errors never trigger the fallback.

Every decision is observable: an attached
:class:`~repro.obs.trace.Tracer` receives one span per evaluated point
(with parameters, attempt count and status) and an attached
:class:`~repro.obs.metrics.MetricsRegistry` counts submissions,
completions, failures, retries, timeouts, cancellations, pool respawns
and serial fallbacks, plus a latency histogram.
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

from repro.errors import AnalysisError, ReproError
from repro.resilience.chaos import inject as _chaos

__all__ = ["CancelToken", "SweepExecutor", "SweepPointError", "SweepRun"]


#: Worker-side cache: serialized SDFG text -> deserialized SDFG, so each
#: worker process pays the JSON round-trip once per program, not per point.
_SDFG_CACHE: dict[str, Any] = {}


def _worker_evaluate(
    sdfg_text: str,
    params: Mapping[str, int],
    line_size: int,
    capacity_lines: int,
    include_transients: bool,
    fast: bool,
):
    """Default worker entry point: deserialize (cached) and evaluate."""
    sdfg = _SDFG_CACHE.get(sdfg_text)
    if sdfg is None:
        from repro.sdfg.serialize import loads

        if len(_SDFG_CACHE) >= 4:
            _SDFG_CACHE.clear()
        sdfg = _SDFG_CACHE[sdfg_text] = loads(sdfg_text)
    from repro.analysis import parametric

    return parametric._evaluate_point(
        sdfg, params, line_size, capacity_lines, include_transients, fast
    )


def _worker_evaluate_batch(
    fn: Callable,
    sdfg_text: str,
    params_list: Sequence[Mapping[str, int]],
    line_size: int,
    capacity_lines: int,
    include_transients: bool,
    fast: bool,
) -> list[tuple]:
    """Evaluate a chunk of grid points in one worker task.

    Returns one tuple per point, aligned with *params_list*:
    ``("ok", point)`` or ``("error", type_name, message)`` for
    deterministic library errors.  Any other exception propagates and
    fails the whole chunk (the scheduler then splits it into
    singletons, so one bad point cannot take down its chunk-mates).
    """
    out: list[tuple] = []
    for params in params_list:
        # Chaos sites run worker-side (the spec rides in on REPRO_CHAOS,
        # which worker processes inherit): a "worker.kill" fault SIGKILLs
        # this process — the coordinating side sees BrokenProcessPool.
        _chaos("worker.kill")
        _chaos("eval.slow")
        try:
            _chaos("eval.error")
            point = fn(
                sdfg_text, params, line_size, capacity_lines,
                include_transients, fast,
            )
        except ReproError as exc:
            out.append(("error", type(exc).__name__, str(exc)))
        else:
            out.append(("ok", point))
    return out


class _PoolUnavailable(Exception):
    """Internal: the process pool cannot be used at all; go serial."""

    def __init__(self, message: str, outcomes: list | None = None):
        super().__init__(message)
        #: Partial outcomes gathered before the pool became unusable;
        #: the serial fallback fills only the still-``None`` slots.
        self.outcomes = outcomes


class CancelToken:
    """Thread-safe cooperative cancellation flag for a running sweep.

    An optional *reason* travels with the cancellation and ends up in
    the :class:`SweepPointError` records of the abandoned points, so
    downstream reporting can distinguish e.g. a user abort from a
    dropped client connection (the analysis service cancels with
    ``"client disconnected"``).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def cancel(self, reason: str | None = None) -> None:
        if reason is not None and not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def message(self) -> str:
        """The record message for points abandoned by this token."""
        if self.reason is None:
            return "sweep cancelled"
        return f"sweep cancelled: {self.reason}"

    def __repr__(self) -> str:
        return f"CancelToken(cancelled={self.cancelled})"


class SweepPointError:
    """Structured record of one failed sweep point (picklable).

    Attributes
    ----------
    params:
        The parameter assignment of the failing point.
    kind:
        ``"error"`` (the evaluation raised), ``"timeout"``, ``"crash"``
        (the worker process died) or ``"cancelled"``.
    error_type:
        Exception class name, when one was raised.
    message:
        Human-readable failure description.
    attempts:
        How many evaluation attempts were made before giving up.
    """

    __slots__ = ("params", "kind", "error_type", "message", "attempts")

    KINDS = ("error", "timeout", "crash", "cancelled")

    def __init__(
        self,
        params: Mapping[str, int],
        kind: str,
        error_type: str | None,
        message: str,
        attempts: int,
    ):
        if kind not in self.KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        self.params = dict(params)
        self.kind = kind
        self.error_type = error_type
        self.message = message
        self.attempts = attempts

    def to_dict(self) -> dict[str, Any]:
        return {
            "params": dict(self.params),
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SweepPointError):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"SweepPointError({self.params}, kind={self.kind!r}, "
            f"{self.error_type}: {self.message!r}, attempts={self.attempts})"
        )


class SweepRun:
    """Grid-ordered outcomes of one sweep: result points and/or errors.

    :attr:`outcomes` has one entry per grid point, in grid order: either
    the evaluated point (e.g. a
    :class:`~repro.analysis.parametric.LocalSweepPoint`) or a
    :class:`SweepPointError`.
    """

    def __init__(self, grid: Sequence[Mapping[str, int]], outcomes: Sequence[Any]):
        self.grid = [dict(point) for point in grid]
        self.outcomes = list(outcomes)

    @property
    def points(self) -> list[Any]:
        """Successful results in grid order (``None`` where a point failed)."""
        return [
            None if isinstance(o, SweepPointError) else o for o in self.outcomes
        ]

    @property
    def errors(self) -> list[SweepPointError]:
        return [o for o in self.outcomes if isinstance(o, SweepPointError)]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def completed(self) -> int:
        return len(self.outcomes) - len(self.errors)

    def raise_on_error(self) -> None:
        """Raise :class:`~repro.errors.AnalysisError` naming the first failure."""
        for outcome in self.outcomes:
            if isinstance(outcome, SweepPointError):
                raise AnalysisError(
                    f"sweep point {outcome.params} failed "
                    f"({outcome.kind}): {outcome.message}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "points": len(self.grid),
            "completed": self.completed,
            "errors": [e.to_dict() for e in self.errors],
        }

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]

    def __repr__(self) -> str:
        return (
            f"SweepRun(points={len(self.grid)}, completed={self.completed}, "
            f"failed={len(self.errors)})"
        )


class SweepExecutor:
    """Fault-tolerant, observable sweep execution over a parameter grid.

    Parameters
    ----------
    workers:
        ``None`` or ``0`` evaluates serially in-process; ``n >= 1`` fans
        out over a process pool of *n* workers (at most one in-flight
        task per worker, so per-point timeouts track execution time).
    retries:
        Extra attempts for transient (non-library) failures per point.
    backoff:
        Base delay in seconds before a retry; doubles per attempt.
    timeout:
        Per-point wall-clock budget in seconds, measured from
        submission to a worker (``None`` disables; serial evaluation is
        not preemptible and ignores it).
    max_respawns:
        How many times a broken pool is respawned before giving up.
    tracer / metrics:
        Optional observability sinks (see :mod:`repro.obs`).
    point_fn:
        Evaluation callable ``(sdfg_text, params, line_size,
        capacity_lines, include_transients, fast)``; defaults to the
        locality pipeline.  Must be picklable for the pool path.
    serial_fn:
        In-process evaluation callable ``(sdfg, params, line_size,
        capacity_lines, include_transients, fast)`` used on the serial
        path (``workers`` unset and the pool-unavailable fallback).  A
        session injects its incremental pass pipeline here, so serial
        sweeps reuse memoized pass results; workers cannot (they live in
        other processes) and always evaluate from scratch.  When both
        *point_fn* and *serial_fn* are given, the pool uses *point_fn*
        and the serial path prefers *serial_fn*.
    adaptive:
        With ``adaptive=True`` (and ``workers`` set), the executor
        measures the first grid point in-process and only spawns a pool
        when the predicted pool time — ``pool_overhead`` plus the
        per-point cost over the effectively usable workers — beats
        finishing the remaining points serially.  Cheap grids therefore
        never pay pool startup + pickling (the ``sweep_8pt`` regression:
        pooled sweeps *losing* 0.91x to serial).  Off by default so
        direct executor users keep deterministic pool behaviour.
    pool_overhead:
        Estimated one-time pool cost in seconds (spawn + SDFG
        serialization + worker warmup) used by the adaptive decision.
    cores:
        Physical parallelism assumed by the adaptive decision; defaults
        to ``os.cpu_count()``.  Injectable for tests.
    batch:
        Points per worker task on the pool path.  ``None`` (default)
        auto-chunks: roughly four tasks per worker, capped at 32 points
        per chunk — large grids amortize submission, pickling and
        result-shipping over whole chunks instead of paying them per
        point, while grids smaller than ``4 × workers`` keep chunk size
        1 and behave exactly as before.  ``1`` forces per-point tasks.
        Per-point failure isolation is preserved: a deterministic
        library error inside a chunk is recorded for that point only,
        and a chunk that fails wholesale is split into singletons and
        re-run.  The per-point ``timeout`` budget scales with chunk
        length.
    """

    def __init__(
        self,
        workers: int | None = None,
        retries: int = 2,
        backoff: float = 0.05,
        timeout: float | None = None,
        max_respawns: int = 2,
        tracer=None,
        metrics=None,
        point_fn: Callable | None = None,
        serial_fn: Callable | None = None,
        adaptive: bool = False,
        pool_overhead: float = 0.35,
        cores: int | None = None,
        batch: int | None = None,
        breaker=None,
    ):
        self.workers = workers
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.timeout = timeout
        self.max_respawns = int(max_respawns)
        self.tracer = tracer
        self.metrics = metrics
        self.point_fn = point_fn
        self.serial_fn = serial_fn
        self.adaptive = bool(adaptive)
        self.pool_overhead = float(pool_overhead)
        self.cores = cores
        if batch is not None and int(batch) < 1:
            raise ValueError("batch must be >= 1")
        self.batch = None if batch is None else int(batch)
        #: Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        #: guarding the pool path.  Shared across runs (a session passes
        #: its long-lived breaker), so a pool that keeps dying stops
        #: being retried on every sweep: while the breaker is open the
        #: executor goes straight to serial evaluation, and a half-open
        #: probe re-tries the pool once per cooldown.
        self.breaker = breaker

    # -- observability helpers ---------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def _record_point(
        self,
        params: Mapping[str, int],
        index: int,
        attempts: int,
        seconds: float,
        error: SweepPointError | None = None,
    ) -> None:
        if self.tracer is None:
            return
        span = self.tracer.record(
            "sweep.point",
            seconds,
            params=dict(params),
            index=index,
            attempts=attempts,
        )
        if error is not None:
            span.set(kind=error.kind)
            span.fail(f"{error.error_type}: {error.message}")

    # -- public API --------------------------------------------------------
    def run(
        self,
        sdfg,
        grid: Sequence[Mapping[str, int]],
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        cancel: CancelToken | None = None,
        on_result: Callable[[int, Any], None] | None = None,
        fail_fast: bool = False,
    ) -> SweepRun:
        """Evaluate every grid point; return grid-ordered outcomes.

        With ``fail_fast=True``, the first deterministic library error
        (or exhausted-retry failure) cancels outstanding work and raises
        :class:`~repro.errors.AnalysisError` naming the failing point.
        *on_result* is called as ``on_result(index, outcome)`` for every
        finished point (it may call ``cancel.cancel()``).
        """
        grid = [dict(point) for point in grid]
        cfg = (line_size, capacity_lines, include_transients, fast)
        self._count("sweep.points", len(grid))
        span = (
            self.tracer.span("sweep.run", points=len(grid), workers=self.workers)
            if self.tracer is not None
            else nullcontext()
        )
        with span as active_span:
            if not grid:
                return SweepRun([], [])
            use_pool = (
                self.workers is not None and self.workers >= 1 and len(grid) > 1
            )
            if use_pool and self.breaker is not None and not self.breaker.allow():
                # The pool breaker is open: degrade to serial without
                # paying the spawn-and-die cycle again this run.
                self._count("sweep.breaker.skipped_pool")
                use_pool = False
            outcomes: list | None = None
            if use_pool and self.adaptive and not (
                cancel is not None and cancel.cancelled
            ):
                # Probe: evaluate the first point in-process (it counts as
                # a real result) and decide from its measured cost whether
                # the pool can possibly pay for itself.
                outcomes = [None] * len(grid)
                use_pool = self._probe_and_choose(
                    sdfg, grid, cfg, on_result, fail_fast, outcomes
                )
                if active_span is not None:
                    active_span.set(adaptive="pool" if use_pool else "serial")
                self._count(
                    "sweep.adaptive.pool_chosen"
                    if use_pool
                    else "sweep.adaptive.serial_chosen"
                )
            if use_pool:
                try:
                    outcomes = self._run_pool(
                        sdfg, grid, cfg, cancel, on_result, fail_fast,
                        outcomes=outcomes,
                    )
                except _PoolUnavailable as exc:
                    # The narrow "pool cannot spawn" case — and only it.
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    self._count("sweep.serial_fallbacks")
                    outcomes = self._run_serial(
                        sdfg, grid, cfg, cancel, on_result, fail_fast,
                        outcomes=exc.outcomes,
                    )
                else:
                    if self.breaker is not None:
                        if self._pool_gave_up:
                            self.breaker.record_failure()
                        else:
                            self.breaker.record_success()
            else:
                outcomes = self._run_serial(
                    sdfg, grid, cfg, cancel, on_result, fail_fast,
                    outcomes=outcomes,
                )
        return SweepRun(grid, outcomes)

    # -- adaptive serial-vs-pool choice -------------------------------------
    def _probe_and_choose(
        self, sdfg, grid, cfg, on_result, fail_fast, outcomes
    ) -> bool:
        """Evaluate ``grid[0]`` serially into ``outcomes[0]``; return
        whether the remaining points should go to a pool."""
        sdfg_text = None
        if self.point_fn is not None and self.serial_fn is None:
            from repro.sdfg.serialize import dumps

            sdfg_text = dumps(sdfg, indent=None)
        start = perf_counter()
        outcome = self._evaluate_serial(
            sdfg, sdfg_text, grid[0], cfg, 0, fail_fast
        )
        t_point = perf_counter() - start
        outcomes[0] = outcome
        self._count(
            "sweep.failed" if isinstance(outcome, SweepPointError)
            else "sweep.completed"
        )
        if on_result is not None:
            on_result(0, outcome)
        if self.metrics is not None:
            self.metrics.gauge("sweep.adaptive.point_seconds").set(t_point)
        return self._choose_pool(t_point, len(grid) - 1)

    def _choose_pool(self, t_point: float, remaining: int) -> bool:
        """Predicted-cost comparison: is a pool worth it for *remaining*
        points that each take ``t_point`` seconds serially?"""
        if remaining <= 0 or self.workers is None or self.workers < 1:
            return False
        cores = self.cores if self.cores is not None else (os.cpu_count() or 1)
        effective = max(1, min(int(self.workers), cores, remaining))
        if effective <= 1:
            return False  # no real parallelism: the pool only adds overhead
        serial_s = t_point * remaining
        pool_s = self.pool_overhead + t_point * math.ceil(remaining / effective)
        return pool_s < serial_s

    # -- serial path -------------------------------------------------------
    def _run_serial(
        self,
        sdfg,
        grid: list[dict],
        cfg: tuple,
        cancel: CancelToken | None,
        on_result,
        fail_fast: bool,
        outcomes: list | None = None,
    ) -> list:
        if outcomes is None:
            outcomes = [None] * len(grid)
        sdfg_text = None
        if self.point_fn is not None and self.serial_fn is None:
            from repro.sdfg.serialize import dumps

            sdfg_text = dumps(sdfg, indent=None)
        for index, params in enumerate(grid):
            if outcomes[index] is not None:
                continue  # already finished by a pool run that went away
            if cancel is not None and cancel.cancelled:
                remaining = [
                    j for j in range(index, len(grid)) if outcomes[j] is None
                ]
                for j in remaining:
                    outcomes[j] = SweepPointError(
                        grid[j], "cancelled", None, cancel.message(), 0
                    )
                self._count("sweep.cancelled", len(remaining))
                break
            outcome = self._evaluate_serial(sdfg, sdfg_text, params, cfg, index, fail_fast)
            outcomes[index] = outcome
            if isinstance(outcome, SweepPointError):
                self._count("sweep.failed")
            else:
                self._count("sweep.completed")
            if on_result is not None:
                on_result(index, outcome)
        return outcomes

    def _evaluate_serial(
        self, sdfg, sdfg_text, params: dict, cfg: tuple, index: int, fail_fast: bool
    ):
        attempts = 0
        while True:
            attempts += 1
            start = perf_counter()
            _chaos("eval.slow")
            try:
                _chaos("eval.error")
                # An injected in-process evaluator wins over the worker
                # entry point: it reuses the caller's memoized pipeline.
                if self.serial_fn is not None:
                    point = self.serial_fn(sdfg, params, *cfg)
                elif self.point_fn is not None:
                    point = self.point_fn(sdfg_text, params, *cfg)
                else:
                    from repro.analysis import parametric

                    point = parametric._evaluate_point(
                        sdfg, params, *cfg, timings=self.tracer
                    )
            except ReproError as exc:
                # Deterministic library error: retrying only repeats the
                # failure, so record (or raise) immediately.
                error = SweepPointError(
                    params, "error", type(exc).__name__, str(exc), attempts
                )
                self._record_point(params, index, attempts, perf_counter() - start, error)
                if fail_fast:
                    raise AnalysisError(
                        f"sweep point {params} failed: {exc}"
                    ) from exc
                return error
            except Exception as exc:  # noqa: BLE001 — fault barrier: unknown errors become records/retries
                if attempts <= self.retries:
                    self._count("sweep.retries")
                    time.sleep(self.backoff * (2 ** (attempts - 1)))
                    continue
                error = SweepPointError(
                    params, "error", type(exc).__name__, str(exc), attempts
                )
                self._record_point(params, index, attempts, perf_counter() - start, error)
                if fail_fast:
                    raise AnalysisError(
                        f"sweep point {params} failed after {attempts} attempts: {exc}"
                    ) from exc
                return error
            seconds = perf_counter() - start
            self._record_point(params, index, attempts, seconds)
            self._observe("sweep.point_seconds", seconds)
            return point

    # -- pool path ---------------------------------------------------------
    def _spawn_pool(self, nworkers: int, outcomes: list | None) -> ProcessPoolExecutor:
        try:
            _chaos("pool.spawn")
            pool = ProcessPoolExecutor(max_workers=nworkers)
        except (ImportError, NotImplementedError, OSError, PermissionError,
                RuntimeError, ValueError) as exc:
            raise _PoolUnavailable(f"cannot spawn worker pool: {exc}", outcomes) from exc
        self._count("sweep.pool_spawns")
        return pool

    def _run_pool(
        self,
        sdfg,
        grid: list[dict],
        cfg: tuple,
        cancel: CancelToken | None,
        on_result,
        fail_fast: bool,
        outcomes: list | None = None,
    ) -> list:
        from repro.sdfg.serialize import dumps

        self._pool_gave_up = False
        fn = self.point_fn or _worker_evaluate
        sdfg_text = dumps(sdfg, indent=None)
        n = len(grid)
        # Slots already filled (e.g. the adaptive probe) are kept as-is
        # and never resubmitted.
        if outcomes is None:
            outcomes = [None] * n
        attempts = [0] * n
        done_count = sum(1 for o in outcomes if o is not None)
        todo: deque[int] = deque(
            i for i in range(n) if outcomes[i] is None
        )
        # Points per worker task: explicit `batch`, else ~4 tasks per
        # worker capped at 32 — small grids get chunk 1 (per-point
        # semantics), large grids amortize per-task overhead.
        if self.batch is not None:
            chunk_size = self.batch
        else:
            chunk_size = max(
                1, min(32, math.ceil(len(todo) / (int(self.workers) * 4)))
            )
        #: Indices that must run alone: members of a chunk that failed
        #: wholesale, re-run as singletons to isolate the bad point.
        solo: set[int] = set()
        nworkers = min(int(self.workers), max(1, len(todo)))
        pending: dict[Future, tuple[list[int], float]] = {}
        retry_at: list[tuple[float, int]] = []
        respawns = 0
        ever_completed = False
        pool = self._spawn_pool(nworkers, None)

        def finish(index: int, outcome, seconds: float = 0.0) -> None:
            nonlocal done_count
            outcomes[index] = outcome
            done_count += 1
            if isinstance(outcome, SweepPointError):
                self._count("sweep.failed")
                self._record_point(
                    grid[index], index, attempts[index], seconds, outcome
                )
            else:
                self._count("sweep.completed")
                self._record_point(grid[index], index, attempts[index], seconds)
                self._observe("sweep.point_seconds", seconds)
            if on_result is not None:
                on_result(index, outcome)

        def unfinished_pending() -> list[int]:
            indices = [
                index for chunk, _ in pending.values() for index in chunk
            ]
            pending.clear()
            return indices

        def take_chunk() -> list[int]:
            """Pop the next worker task's indices off ``todo``: a single
            solo index, or up to ``chunk_size`` non-solo indices."""
            indices = [todo.popleft()]
            if indices[0] in solo:
                return indices
            while (
                todo and len(indices) < chunk_size and todo[0] not in solo
            ):
                indices.append(todo.popleft())
            return indices

        try:
            while done_count < n:
                now = time.monotonic()
                # Cooperative cancellation at the next wave boundary.
                if cancel is not None and cancel.cancelled:
                    for future in pending:
                        future.cancel()
                    remaining = (
                        unfinished_pending()
                        + list(todo)
                        + [index for _, index in retry_at]
                    )
                    todo.clear()
                    retry_at.clear()
                    for index in remaining:
                        finish(
                            index,
                            SweepPointError(
                                grid[index], "cancelled", None, cancel.message(),
                                attempts[index],
                            ),
                        )
                    self._count("sweep.cancelled", len(remaining))
                    break
                # Backoff delays that have elapsed become submittable again.
                due = [index for when, index in retry_at if when <= now]
                if due:
                    retry_at = [(w, i) for w, i in retry_at if w > now]
                    todo.extend(due)
                # Keep at most one in-flight task per worker so a timeout
                # measures execution, not queueing.
                broken = False
                while todo and len(pending) < nworkers:
                    indices = take_chunk()
                    for index in indices:
                        attempts[index] += 1
                    try:
                        future = pool.submit(
                            _worker_evaluate_batch, fn, sdfg_text,
                            [grid[index] for index in indices], *cfg,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        for index in reversed(indices):
                            attempts[index] -= 1
                            todo.appendleft(index)
                        broken = True
                        break
                    self._count("sweep.batch.chunks")
                    self._count("sweep.batch.points", len(indices))
                    pending[future] = (indices, time.monotonic())
                if not broken:
                    if not pending:
                        if retry_at:
                            time.sleep(
                                max(0.0, min(w for w, _ in retry_at) - time.monotonic())
                            )
                            continue
                        break  # nothing in flight and nothing to submit
                    done, _ = wait(
                        set(pending), timeout=0.05, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        chunk, submitted = pending.pop(future)
                        try:
                            results = future.result()
                        except BrokenProcessPool as exc:
                            broken = True
                            for index in chunk:
                                if attempts[index] <= self.retries:
                                    self._count("sweep.retries")
                                    # Crash retries back off like any other
                                    # transient failure: a point that keeps
                                    # killing its worker should not hammer
                                    # the freshly respawned pool.
                                    retry_at.append((
                                        time.monotonic()
                                        + self.backoff * (2 ** (attempts[index] - 1)),
                                        index,
                                    ))
                                else:
                                    finish(
                                        index,
                                        SweepPointError(
                                            grid[index], "crash", type(exc).__name__,
                                            str(exc) or "worker process died",
                                            attempts[index],
                                        ),
                                    )
                        except pickle.PicklingError as exc:
                            raise _PoolUnavailable(
                                f"sweep payload does not pickle: {exc}", outcomes
                            ) from exc
                        except Exception as exc:  # noqa: BLE001 — fault barrier: unknown errors become records/retries
                            # Library errors are captured per point inside
                            # the chunk; an exception here failed the whole
                            # task.  A multi-point chunk is split into
                            # singletons (the chunk attempt does not count
                            # against its members) so the bad point is
                            # isolated; a singleton follows retry/backoff.
                            if len(chunk) > 1:
                                self._count("sweep.batch.splits")
                                solo.update(chunk)
                                for index in chunk:
                                    attempts[index] -= 1
                                    todo.append(index)
                            else:
                                index = chunk[0]
                                if attempts[index] <= self.retries:
                                    self._count("sweep.retries")
                                    retry_at.append((
                                        time.monotonic()
                                        + self.backoff * (2 ** (attempts[index] - 1)),
                                        index,
                                    ))
                                else:
                                    error = SweepPointError(
                                        grid[index], "error", type(exc).__name__,
                                        str(exc), attempts[index],
                                    )
                                    if fail_fast:
                                        for other in pending:
                                            other.cancel()
                                        raise AnalysisError(
                                            f"sweep point {grid[index]} failed after "
                                            f"{attempts[index]} attempts: {exc}"
                                        ) from exc
                                    finish(index, error, time.monotonic() - submitted)
                        else:
                            seconds = (time.monotonic() - submitted) / len(chunk)
                            for index, result in zip(chunk, results):
                                if result[0] == "ok":
                                    ever_completed = True
                                    finish(index, result[1], seconds)
                                    continue
                                _, error_type, message = result
                                if fail_fast:
                                    for other in pending:
                                        other.cancel()
                                    raise AnalysisError(
                                        f"sweep point {grid[index]} failed: "
                                        f"{message}"
                                    )
                                finish(
                                    index,
                                    SweepPointError(
                                        grid[index], "error", error_type,
                                        message, attempts[index],
                                    ),
                                    seconds,
                                )
                # A broken pool poisons every in-flight future: drain them,
                # respawn, and resubmit only the unfinished points.
                if broken:
                    self._count("sweep.pool_respawns")
                    respawns += 1
                    pool.shutdown(wait=False, cancel_futures=True)
                    for future, (chunk, submitted) in list(pending.items()):
                        del pending[future]
                        # Salvage results that completed before the break so
                        # finished points are never recomputed.
                        if (
                            future.done()
                            and not future.cancelled()
                            and future.exception() is None
                        ):
                            seconds = (time.monotonic() - submitted) / len(chunk)
                            for index, result in zip(chunk, future.result()):
                                if result[0] == "ok":
                                    ever_completed = True
                                    finish(index, result[1], seconds)
                                    continue
                                _, error_type, message = result
                                if fail_fast:
                                    raise AnalysisError(
                                        f"sweep point {grid[index]} failed: "
                                        f"{message}"
                                    )
                                finish(
                                    index,
                                    SweepPointError(
                                        grid[index], "error", error_type,
                                        message, attempts[index],
                                    ),
                                    seconds,
                                )
                            continue
                        for index in chunk:
                            if attempts[index] <= self.retries:
                                self._count("sweep.retries")
                                retry_at.append((
                                    time.monotonic()
                                    + self.backoff * (2 ** (attempts[index] - 1)),
                                    index,
                                ))
                            else:
                                finish(
                                    index,
                                    SweepPointError(
                                        grid[index], "crash", "BrokenProcessPool",
                                        "worker process died", attempts[index],
                                    ),
                                )
                    if respawns > self.max_respawns:
                        if not ever_completed:
                            # The pool never produced a single result:
                            # indistinguishable from "cannot spawn".
                            raise _PoolUnavailable(
                                "worker pool never became operational", outcomes
                            )
                        self._pool_gave_up = True
                        remaining = list(todo) + [i for _, i in retry_at]
                        todo.clear()
                        retry_at.clear()
                        for index in remaining:
                            finish(
                                index,
                                SweepPointError(
                                    grid[index], "crash", "BrokenProcessPool",
                                    "worker pool kept dying", attempts[index],
                                ),
                            )
                        continue
                    pool = self._spawn_pool(nworkers, outcomes)
                # Per-point timeout: abandon futures past their budget.
                if self.timeout is not None:
                    now = time.monotonic()
                    for future, (chunk, submitted) in list(pending.items()):
                        # The wall-clock budget scales with chunk length:
                        # a chunk is len(chunk) points of sequential work.
                        if now - submitted > self.timeout * len(chunk):
                            future.cancel()
                            del pending[future]
                            self._count("sweep.timeouts", len(chunk))
                            for index in chunk:
                                finish(
                                    index,
                                    SweepPointError(
                                        grid[index], "timeout", "TimeoutError",
                                        f"point exceeded {self.timeout:g}s",
                                        attempts[index],
                                    ),
                                    (now - submitted) / len(chunk),
                                )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes
