"""Arithmetic-intensity analysis: operations per moved byte.

The global view colors computation nodes by their arithmetic intensity —
"the number of arithmetic operations performed per transferred data byte"
(paper Section IV-B).  Low-intensity map scopes are fusion candidates: the
BERT case study's second optimization round finds them exactly this way.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.movement import _memlet_bytes
from repro.analysis.opcount import scope_ops
from repro.sdfg.nodes import MapEntry, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.expr import Expr, Integer, add, div

__all__ = ["scope_movement_bytes", "scope_intensities", "program_intensity"]


def scope_movement_bytes(sdfg: SDFG, state: SDFGState) -> dict[Node, Expr]:
    """Bytes crossing each scope boundary (map entry in + exit out).

    For a map entry, this sums the propagated memlets on its outer-facing
    edges and those of the matching exit — the data volume the scope
    exchanges with the rest of the program.  Tasklets sum their own edges
    scaled by enclosing iterations via the memlet volumes (inner memlets
    are per-iteration, so they are multiplied by the scope iteration count).
    """
    from repro.analysis.opcount import _scope_iterations

    result: dict[Node, Expr] = {}
    for node in state.nodes():
        if isinstance(node, MapEntry):
            total: Expr = Integer(0)
            for edge in state.in_edges(node):
                if edge.data.memlet is not None:
                    total = add(total, _memlet_bytes(sdfg, edge.data.memlet))
            exit_node = node.exit_node
            if exit_node is not None:
                for edge in state.out_edges(exit_node):
                    if edge.data.memlet is not None:
                        total = add(total, _memlet_bytes(sdfg, edge.data.memlet))
            result[node] = total
        elif isinstance(node, Tasklet):
            per_iter: Expr = Integer(0)
            for edge in state.in_edges(node) + state.out_edges(node):
                if edge.data.memlet is not None:
                    per_iter = add(per_iter, _memlet_bytes(sdfg, edge.data.memlet))
            result[node] = per_iter * _scope_iterations(state, node)
    return result


def scope_intensities(
    sdfg: SDFG,
    state: SDFGState,
    call_weights: Mapping[str, int] | None = None,
    ops: Mapping[Node, Expr] | None = None,
) -> dict[Node, Expr]:
    """Arithmetic intensity (ops/byte, symbolic) per tasklet and map scope.

    *ops* accepts a precomputed :func:`~repro.analysis.opcount.scope_ops`
    map so an incremental pipeline can reuse the operation-count product
    instead of recounting; when omitted it is computed here.
    """
    if ops is None:
        ops = scope_ops(state, call_weights)
    movement = scope_movement_bytes(sdfg, state)
    out: dict[Node, Expr] = {}
    for node, op_count in ops.items():
        moved = movement.get(node)
        if moved is None or moved == Integer(0):
            continue
        out[node] = div(op_count, moved)
    return out


def program_intensity(
    sdfg: SDFG, call_weights: Mapping[str, int] | None = None
) -> Expr:
    """Whole-program arithmetic intensity (ops per logically moved byte)."""
    from repro.analysis.movement import total_movement_bytes
    from repro.analysis.opcount import program_ops

    moved = total_movement_bytes(sdfg)
    ops = program_ops(sdfg, call_weights)
    return div(ops, moved)
