"""Graph traversal algorithms over :class:`OrderedMultiDiGraph`.

All traversals are deterministic: ties are broken by node insertion order.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, TypeVar

from repro.errors import GraphError
from repro.graph.multigraph import OrderedMultiDiGraph

__all__ = [
    "topological_sort",
    "dfs_preorder",
    "dfs_postorder",
    "bfs_layers",
    "has_cycle",
    "weakly_connected_components",
]

NodeT = TypeVar("NodeT", bound=Hashable)


def topological_sort(graph: OrderedMultiDiGraph[NodeT, object]) -> list[NodeT]:
    """Kahn's algorithm; raises :class:`GraphError` if the graph has a cycle.

    Deterministic: among ready nodes, the one added to the graph first comes
    first.
    """
    in_deg = {n: graph.in_degree(n) for n in graph.nodes()}
    order_index = {n: i for i, n in enumerate(graph.nodes())}
    ready = sorted((n for n, d in in_deg.items() if d == 0), key=order_index.__getitem__)
    out: list[NodeT] = []
    while ready:
        node = ready.pop(0)
        out.append(node)
        newly_ready: list[NodeT] = []
        for edge in graph.out_edges(node):
            in_deg[edge.dst] -= 1
            if in_deg[edge.dst] == 0:
                newly_ready.append(edge.dst)
        if newly_ready:
            ready.extend(sorted(set(newly_ready), key=order_index.__getitem__))
            ready.sort(key=order_index.__getitem__)
    if len(out) != graph.number_of_nodes:
        raise GraphError("graph contains a cycle; topological sort impossible")
    return out


def has_cycle(graph: OrderedMultiDiGraph[NodeT, object]) -> bool:
    """True when the graph contains a directed cycle."""
    try:
        topological_sort(graph)
    except GraphError:
        return True
    return False


def dfs_preorder(
    graph: OrderedMultiDiGraph[NodeT, object],
    sources: Iterable[NodeT] | None = None,
) -> Iterator[NodeT]:
    """Depth-first preorder from *sources* (default: all source nodes)."""
    if sources is None:
        sources = graph.source_nodes() or graph.nodes()[:1]
    visited: set[NodeT] = set()
    for source in sources:
        if source in visited:
            continue
        stack = [source]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            yield node
            succ = [s for s in graph.successors(node) if s not in visited]
            stack.extend(reversed(succ))


def dfs_postorder(
    graph: OrderedMultiDiGraph[NodeT, object],
    sources: Iterable[NodeT] | None = None,
) -> Iterator[NodeT]:
    """Depth-first postorder (children before parents)."""
    if sources is None:
        sources = graph.source_nodes() or graph.nodes()[:1]
    visited: set[NodeT] = set()
    for source in sources:
        if source in visited:
            continue
        # Iterative postorder with an explicit expansion marker.
        stack: list[tuple[NodeT, bool]] = [(source, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            succ = [s for s in graph.successors(node) if s not in visited]
            stack.extend((s, False) for s in reversed(succ))


def bfs_layers(
    graph: OrderedMultiDiGraph[NodeT, object],
    sources: Iterable[NodeT] | None = None,
) -> list[list[NodeT]]:
    """Breadth-first layers: layer 0 are the sources, layer k their frontier."""
    if sources is None:
        sources = graph.source_nodes() or graph.nodes()[:1]
    frontier = list(dict.fromkeys(sources))
    visited = set(frontier)
    layers: list[list[NodeT]] = []
    while frontier:
        layers.append(frontier)
        nxt: list[NodeT] = []
        for node in frontier:
            for succ in graph.successors(node):
                if succ not in visited:
                    visited.add(succ)
                    nxt.append(succ)
        frontier = nxt
    return layers


def weakly_connected_components(
    graph: OrderedMultiDiGraph[NodeT, object],
) -> list[list[NodeT]]:
    """Connected components ignoring edge direction, in discovery order."""
    visited: set[NodeT] = set()
    components: list[list[NodeT]] = []
    for start in graph.nodes():
        if start in visited:
            continue
        component: list[NodeT] = []
        stack = [start]
        visited.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            neighbors = [e.dst for e in graph.out_edges(node)]
            neighbors += [e.src for e in graph.in_edges(node)]
            for n in neighbors:
                if n not in visited:
                    visited.add(n)
                    stack.append(n)
        components.append(component)
    return components
