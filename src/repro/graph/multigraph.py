"""An insertion-ordered multi-digraph with first-class edge objects."""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

from repro.errors import GraphError

__all__ = ["Edge", "OrderedMultiDiGraph"]

NodeT = TypeVar("NodeT", bound=Hashable)
EdgeT = TypeVar("EdgeT")


class Edge(Generic[NodeT, EdgeT]):
    """A directed edge ``src -> dst`` carrying a *data* payload.

    Edge objects have identity semantics: two parallel edges with equal
    payloads are still distinct edges.
    """

    __slots__ = ("src", "dst", "data")

    def __init__(self, src: NodeT, dst: NodeT, data: EdgeT = None):
        self.src = src
        self.dst = dst
        self.data = data

    def __repr__(self) -> str:
        return f"Edge({self.src!r} -> {self.dst!r}, {self.data!r})"


class OrderedMultiDiGraph(Generic[NodeT, EdgeT]):
    """Directed multigraph preserving node and edge insertion order.

    Nodes may be any hashable objects; parallel edges and self-loops are
    allowed.  All iteration orders are deterministic (insertion order),
    which makes downstream layouts and serializations reproducible.
    """

    def __init__(self) -> None:
        # dict preserves insertion order; values are (in_edges, out_edges).
        self._nodes: dict[NodeT, tuple[list[Edge[NodeT, EdgeT]], list[Edge[NodeT, EdgeT]]]] = {}
        self._edges: list[Edge[NodeT, EdgeT]] = []

    # -- nodes ------------------------------------------------------------
    def add_node(self, node: NodeT) -> NodeT:
        """Add *node* (idempotent) and return it."""
        if node not in self._nodes:
            self._nodes[node] = ([], [])
        return node

    def remove_node(self, node: NodeT) -> None:
        """Remove *node* and all incident edges."""
        if node not in self._nodes:
            raise GraphError(f"node {node!r} is not in the graph")
        in_edges, out_edges = self._nodes[node]
        incident: list[Edge[NodeT, EdgeT]] = []
        for edge in list(in_edges) + list(out_edges):
            # A self-loop appears in both lists; remove it only once.
            if not any(edge is e for e in incident):
                incident.append(edge)
        for edge in incident:
            self.remove_edge(edge)
        del self._nodes[node]

    def has_node(self, node: NodeT) -> bool:
        return node in self._nodes

    def nodes(self) -> list[NodeT]:
        """All nodes in insertion order."""
        return list(self._nodes)

    @property
    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeT]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- edges ------------------------------------------------------------
    def add_edge(self, src: NodeT, dst: NodeT, data: EdgeT = None) -> Edge[NodeT, EdgeT]:
        """Add an edge ``src -> dst``; endpoints are added if missing."""
        self.add_node(src)
        self.add_node(dst)
        edge = Edge(src, dst, data)
        self._edges.append(edge)
        self._nodes[dst][0].append(edge)
        self._nodes[src][1].append(edge)
        return edge

    def remove_edge(self, edge: Edge[NodeT, EdgeT]) -> None:
        """Remove a specific edge object."""
        try:
            self._edges.remove(edge)
        except ValueError:
            raise GraphError(f"edge {edge!r} is not in the graph") from None
        self._nodes[edge.dst][0].remove(edge)
        self._nodes[edge.src][1].remove(edge)

    def edges(self) -> list[Edge[NodeT, EdgeT]]:
        """All edges in insertion order."""
        return list(self._edges)

    @property
    def number_of_edges(self) -> int:
        return len(self._edges)

    def edges_between(self, src: NodeT, dst: NodeT) -> list[Edge[NodeT, EdgeT]]:
        """All parallel edges from *src* to *dst*."""
        if src not in self._nodes:
            return []
        return [e for e in self._nodes[src][1] if e.dst == dst]

    def has_edge(self, src: NodeT, dst: NodeT) -> bool:
        return bool(self.edges_between(src, dst))

    # -- incidence --------------------------------------------------------
    def in_edges(self, node: NodeT) -> list[Edge[NodeT, EdgeT]]:
        self._require(node)
        return list(self._nodes[node][0])

    def out_edges(self, node: NodeT) -> list[Edge[NodeT, EdgeT]]:
        self._require(node)
        return list(self._nodes[node][1])

    def all_edges(self, node: NodeT) -> list[Edge[NodeT, EdgeT]]:
        """Incoming followed by outgoing edges of *node*."""
        return self.in_edges(node) + self.out_edges(node)

    def in_degree(self, node: NodeT) -> int:
        self._require(node)
        return len(self._nodes[node][0])

    def out_degree(self, node: NodeT) -> int:
        self._require(node)
        return len(self._nodes[node][1])

    def predecessors(self, node: NodeT) -> list[NodeT]:
        """Unique predecessors, ordered by first incoming edge."""
        seen: dict[NodeT, None] = {}
        for e in self.in_edges(node):
            seen.setdefault(e.src)
        return list(seen)

    def successors(self, node: NodeT) -> list[NodeT]:
        """Unique successors, ordered by first outgoing edge."""
        seen: dict[NodeT, None] = {}
        for e in self.out_edges(node):
            seen.setdefault(e.dst)
        return list(seen)

    def source_nodes(self) -> list[NodeT]:
        """Nodes without incoming edges."""
        return [n for n in self._nodes if not self._nodes[n][0]]

    def sink_nodes(self) -> list[NodeT]:
        """Nodes without outgoing edges."""
        return [n for n in self._nodes if not self._nodes[n][1]]

    # -- helpers ----------------------------------------------------------
    def _require(self, node: NodeT) -> None:
        if node not in self._nodes:
            raise GraphError(f"node {node!r} is not in the graph")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges})"
        )
