"""Ordered graph substrate used by the dataflow IR.

The IR needs a multi-digraph with deterministic iteration order (so that
layouts, serializations and analyses are reproducible run-to-run) and
first-class edge objects carrying memlet payloads.  :mod:`networkx` does not
guarantee edge-object identity semantics we want for memlets, so this small
substrate implements exactly what the IR uses.
"""

from repro.graph.multigraph import Edge, OrderedMultiDiGraph
from repro.graph.traversal import (
    bfs_layers,
    dfs_postorder,
    dfs_preorder,
    has_cycle,
    topological_sort,
    weakly_connected_components,
)

__all__ = [
    "Edge",
    "OrderedMultiDiGraph",
    "topological_sort",
    "dfs_preorder",
    "dfs_postorder",
    "bfs_layers",
    "has_cycle",
    "weakly_connected_components",
]
