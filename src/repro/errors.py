"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single handler while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SymbolicError",
    "ParseError",
    "EvaluationError",
    "GraphError",
    "InvalidSDFGError",
    "FrontendError",
    "AnalysisError",
    "PipelineError",
    "StorageError",
    "LockTimeout",
    "SimulationError",
    "TransformError",
    "TuningError",
    "CodegenError",
    "VisualizationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SymbolicError(ReproError):
    """Errors from the symbolic expression engine."""


class ParseError(SymbolicError):
    """An expression or program string could not be parsed."""


class EvaluationError(SymbolicError):
    """An expression could not be evaluated (e.g. free symbols remain)."""


class GraphError(ReproError):
    """Errors from the graph substrate (missing nodes, invalid edges...)."""


class InvalidSDFGError(ReproError):
    """The SDFG failed validation.

    Attributes
    ----------
    element:
        The offending IR element (node, edge, state, ...) if known.
    """

    def __init__(self, message: str, element: object | None = None):
        super().__init__(message)
        self.element = element


class FrontendError(ReproError):
    """The Python frontend could not translate a program."""


class AnalysisError(ReproError):
    """A static analysis failed."""


class PipelineError(ReproError):
    """The analysis-pass pipeline is misconfigured (unknown product,
    missing dependency, dependency cycle) or a pass was run without the
    context it requires."""


class StorageError(ReproError):
    """The persistent storage layer failed internally.

    Never raised into an analysis: the disk cache converts every storage
    failure into a miss (recompute) or a degradation to memory-only
    operation.  The class exists so storage-internal control flow (lock
    timeouts, protocol violations) stays inside the library hierarchy.
    """


class LockTimeout(StorageError):
    """An advisory file lock could not be acquired within its timeout."""


class SimulationError(ReproError):
    """The access-pattern simulation failed."""


class TransformError(ReproError):
    """A transformation could not be matched or applied."""


class TuningError(ReproError):
    """The auto-tuning search was misconfigured or could not run."""


class CodegenError(ReproError):
    """Code generation failed."""


class VisualizationError(ReproError):
    """A renderer or visualization component failed."""
