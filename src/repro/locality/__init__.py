"""Analytic locality engine: closed-form reuse distances at scale.

The array pipeline (:mod:`repro.simulation.arrays` →
:mod:`~repro.simulation.stackdist`) enumerates every access of the
iteration space, so its cost grows with the total access count — fine at
paper "local view" sizes, impossible at production shapes with millions
of elements.  This package derives the same per-container reuse-distance
histograms, cold/capacity miss counts and per-element miss aggregates
from a *constant* number of enumerated loop blocks:

- :func:`~repro.locality.engine.analyze_locality` decomposes a state
  into regions (one per top-level scope), window-folds uniform-shift
  affine map regions (:mod:`repro.locality.fold`) and enumerates the
  rest per region, stitching both into one exact product;
- :class:`~repro.locality.engine.AnalyticLocality` answers the same
  queries as the enumeration pipeline (``miss_counts``,
  ``per_element_misses``, ``histogram``) with exactly equal results;
- folded regions additionally emit :mod:`repro.symbolic` count
  expressions over the outer extent
  (:class:`~repro.locality.engine.SymbolicLocality`), evaluable on whole
  parameter grids through :func:`repro.symbolic.compiled.compile_expr`.
"""

from repro.locality.engine import (
    AnalyticLocality,
    SymbolicLocality,
    analyze_locality,
)
from repro.locality.regions import FoldCandidate, Region, extract_regions

__all__ = [
    "AnalyticLocality",
    "SymbolicLocality",
    "analyze_locality",
    "FoldCandidate",
    "Region",
    "extract_regions",
]
