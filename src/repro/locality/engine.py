"""The analytic locality engine: per-region analysis plus exact stitching.

:func:`analyze_locality` decomposes a state into regions
(:mod:`repro.locality.regions`), window-folds the single-region affine
case (:mod:`repro.locality.fold`) and enumerates everything else region
by region through the regular simulator.  Region results are stitched
with a *reduced-trace* composition: per region only each line's first
and last occurrence enter a global stack-distance pass, which resolves
every region-first access to its true cross-region reuse distance (or a
global cold miss) — provably equal to running stack distances over the
whole concatenated trace, at the cost of the distinct-line count instead
of the event count.

The :class:`AnalyticLocality` product answers the enumeration pipeline's
queries (``miss_counts``, ``per_element_misses``, ``histogram``) with
exactly equal results, and carries a :class:`SymbolicLocality` when the
region folded — per-container count expressions over the outer extent,
evaluable on whole grids via :func:`repro.symbolic.compiled.compile_expr`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.locality.fold import FoldedSummary, _hist_add, _scatter, try_build_fold
from repro.locality.regions import (
    RegionColumns,
    extract_regions,
    fold_statics,
    region_columns,
)
from repro.sdfg.nodes import MapEntry
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.simulation.cache import MissCounts
from repro.simulation.layout import MemoryModel
from repro.simulation.simulator import simulate_region
from repro.simulation.stackdist import stack_distances_array
from repro.symbolic.expr import Expr, Integer, add, floor_div, mul, smax, sub

__all__ = [
    "AnalyticLocality",
    "EnumeratedSummary",
    "SymbolicLocality",
    "analyze_locality",
]


class EnumeratedSummary:
    """One region enumerated exactly, with composition hooks.

    Within-region stack distances are exact for every non-first access
    (its reuse window lies inside the region).  Region-first accesses —
    the ``inf`` entries — are resolved by the engine's reduced-trace
    composition; until then they default to cold, which is exact for
    single-region programs and for the first region of any program.
    """

    kind = "enumerated"

    __slots__ = ("cols", "distances", "first_positions", "reduced_positions",
                 "resolved")

    def __init__(self, cols: RegionColumns):
        self.cols = cols
        self.distances = stack_distances_array(cols.lines)
        lines = cols.lines
        _, first_idx = np.unique(lines, return_index=True)
        _, reversed_idx = np.unique(lines[::-1], return_index=True)
        last_idx = lines.size - 1 - reversed_idx
        self.first_positions = np.sort(first_idx)
        self.reduced_positions = np.unique(np.concatenate([first_idx, last_idx]))
        #: Resolved distance per region-first access (position order);
        #: ``inf`` = globally cold.  Filled by the engine's composition.
        self.resolved = np.full(self.first_positions.size, np.inf)

    # -- aggregate interface (shared with FoldedSummary) -------------------
    @property
    def total_events(self) -> int:
        return self.cols.num_events

    def events_per_container(self) -> dict[str, int]:
        return {
            name: int(self.cols.positions[name].size)
            for name in self.cols.containers
        }

    def hist_into(self, acc: dict[str, dict[int, int]]) -> None:
        _hist_add(acc, self.cols, self.distances)
        finite = np.isfinite(self.resolved)
        if not finite.any():
            return
        first_cids = self.cols.container_ids[self.first_positions]
        for cid, name in enumerate(self.cols.containers):
            member = (first_cids == cid) & finite
            if not member.any():
                continue
            values, counts = np.unique(self.resolved[member], return_counts=True)
            bucket = acc.setdefault(name, {})
            for v, c in zip(values.tolist(), counts.tolist()):
                bucket[int(v)] = bucket.get(int(v), 0) + int(c)

    def cold_into(self, acc: dict[str, int]) -> None:
        cold = np.isinf(self.resolved)
        if not cold.any():
            return
        first_cids = self.cols.container_ids[self.first_positions]
        for cid, name in enumerate(self.cols.containers):
            count = int((cold & (first_cids == cid)).sum())
            if count:
                acc[name] = acc.get(name, 0) + count

    def has_container(self, container: str) -> bool:
        return container in self.cols.positions

    def index_span(self, container: str) -> tuple[int, ...]:
        matrix = self.cols.index_matrices[container]
        return tuple(
            int(matrix[:, d].max()) + 1 for d in range(matrix.shape[1])
        )

    def per_element_into(
        self,
        container: str,
        capacity: int,
        mult: np.ndarray,
        dense_total: np.ndarray,
        dense_cold: np.ndarray,
        dense_cap: np.ndarray,
    ) -> None:
        pos = self.cols.positions.get(container)
        if pos is None or not pos.size:
            return
        keys = self.cols.index_matrices[container] @ mult
        _scatter(dense_total, keys)
        d = self.distances[pos]
        cap = np.isfinite(d) & (d >= capacity)
        if cap.any():
            _scatter(dense_cap, keys[cap])
        first = np.isinf(d)
        if not first.any():
            return
        # Each in-region inf is a region-first; look up its resolution.
        j = np.searchsorted(self.first_positions, pos[first])
        resolved = self.resolved[j]
        first_keys = keys[first]
        cold = np.isinf(resolved)
        if cold.any():
            _scatter(dense_cold, first_keys[cold])
        late = np.isfinite(resolved) & (resolved >= capacity)
        if late.any():
            _scatter(dense_cap, first_keys[late])


def _compose(summaries: list[EnumeratedSummary]) -> None:
    """Resolve region-first accesses across regions via the reduced trace.

    Per region, each line's first and last occurrence (in order) stand
    in for all its occurrences; one stack-distance pass over the
    concatenation yields, at every first entry, the exact number of
    distinct lines since that line's previous (cross-region) occurrence:
    any line with a true access inside the reuse window also has a
    retained first-or-last entry inside it, and retained entries are
    true accesses — so the reduced count equals the true count.
    """
    reduced = np.concatenate(
        [s.cols.lines[s.reduced_positions] for s in summaries]
    )
    distances = stack_distances_array(reduced)
    offset = 0
    for s in summaries:
        m = s.reduced_positions.size
        is_first = np.isin(s.reduced_positions, s.first_positions)
        s.resolved = distances[offset:offset + m][is_first]
        offset += m


class SymbolicLocality:
    """Per-container count expressions over the folded outer extent.

    ``total``/``cold`` map containers to :class:`~repro.symbolic.expr.Expr`
    trees in the program parameters; ``hist`` maps containers to
    ``{distance: count-Expr}``.  Exact for extents ≥ :attr:`valid_from`
    of the analyzed program family (same inner sizes and layouts, outer
    extent varying); evaluable point-wise or batched over grids with
    :func:`repro.symbolic.compiled.compile_expr`.
    """

    __slots__ = ("outer_param", "n_expr", "valid_from", "total", "cold", "hist")

    def __init__(
        self,
        outer_param: str,
        n_expr: Expr,
        valid_from: int,
        total: dict[str, Expr],
        cold: dict[str, Expr],
        hist: dict[str, dict[int, Expr]],
    ):
        self.outer_param = outer_param
        self.n_expr = n_expr
        self.valid_from = valid_from
        self.total = total
        self.cold = cold
        self.hist = hist

    def capacity_misses(self, capacity_lines: int) -> dict[str, Expr]:
        """Capacity-miss count expressions under a modeled capacity."""
        out: dict[str, Expr] = {}
        for name, bucket in self.hist.items():
            terms = [
                expr for distance, expr in bucket.items()
                if distance >= capacity_lines
            ]
            out[name] = add(*terms) if terms else Integer(0)
        return out

    def __repr__(self) -> str:
        return (
            f"SymbolicLocality(outer={self.outer_param!r}, "
            f"valid_from={self.valid_from}, containers={sorted(self.total)})"
        )


def _build_symbolic(fold: FoldedSummary) -> SymbolicLocality:
    """Lift a folded summary's counts to expressions over the extent."""
    n_expr = fold.n_expr
    # Blocks of phase r: m_r(n) = max(0, (n - 1 - t_r) // P + 1).
    phase_counts = [
        smax(0, add(floor_div(sub(n_expr, 1 + phase.t), fold.p_joint), 1))
        for phase in fold.phases
    ]
    total: dict[str, Expr] = {}
    cold: dict[str, Expr] = {}
    hist: dict[str, dict[int, Expr]] = {}
    steady = sub(n_expr, fold.delta_max)
    for name in fold.block.containers:
        per_block = int(fold.block.positions[name].size)
        prefix_pos = fold.prefix.positions.get(name)
        prefix_d = (
            fold.prefix_distances[prefix_pos]
            if prefix_pos is not None
            else np.empty(0)
        )
        total[name] = add(
            int(prefix_d.size), mul(per_block, steady)
        )
        cold_terms: list[Expr] = [Integer(int(np.isinf(prefix_d).sum()))]
        bucket: dict[int, Expr] = {}
        finite = np.isfinite(prefix_d)
        values, counts = np.unique(prefix_d[finite], return_counts=True)
        for v, c in zip(values.tolist(), counts.tolist()):
            bucket[int(v)] = Integer(int(c))
        block_pos = fold.block.positions[name]
        for phase, m_expr in zip(fold.phases, phase_counts):
            d = phase.distances[block_pos]
            new = int(np.isinf(d).sum())
            if new:
                cold_terms.append(mul(new, m_expr))
            values, counts = np.unique(d[np.isfinite(d)], return_counts=True)
            for v, c in zip(values.tolist(), counts.tolist()):
                term = mul(int(c), m_expr)
                key = int(v)
                bucket[key] = add(bucket[key], term) if key in bucket else term
        cold[name] = add(*cold_terms)
        hist[name] = bucket
    valid_from = fold.delta_max + fold.p_joint * (fold.delta_max + 1)
    return SymbolicLocality(
        fold.outer_param, n_expr, valid_from, total, cold, hist
    )


class AnalyticLocality:
    """The engine's product: exact locality aggregates without full traces.

    Picklable (plain data and NumPy arrays only), so it caches and ships
    through sweep worker pools like any other pass product.
    """

    __slots__ = (
        "complete", "reason", "containers", "events_per_container",
        "total_events", "analytic_regions", "fallback_regions", "symbolic",
        "line_size", "_summaries", "_hist", "_cold", "_element_cache",
    )

    def __init__(
        self,
        summaries: list,
        analytic_regions: int,
        fallback_regions: int,
        symbolic: SymbolicLocality | None,
        line_size: int,
    ):
        self.complete = True
        self.reason = ""
        self._summaries = summaries
        self.analytic_regions = analytic_regions
        self.fallback_regions = fallback_regions
        self.symbolic = symbolic
        self.line_size = line_size
        self.containers: list[str] = []
        self.events_per_container: dict[str, int] = {}
        for summary in summaries:
            for name, count in summary.events_per_container().items():
                if name not in self.events_per_container:
                    self.containers.append(name)
                    self.events_per_container[name] = 0
                self.events_per_container[name] += count
        self.total_events = sum(s.total_events for s in summaries)
        self._hist: dict[str, dict[int, int]] | None = None
        self._cold: dict[str, int] | None = None
        self._element_cache: dict = {}

    # -- aggregates --------------------------------------------------------
    def _aggregates(self) -> tuple[dict[str, dict[int, int]], dict[str, int]]:
        if self._hist is None:
            hist: dict[str, dict[int, int]] = {}
            cold: dict[str, int] = {name: 0 for name in self.containers}
            for summary in self._summaries:
                summary.hist_into(hist)
                summary.cold_into(cold)
            self._hist = hist
            self._cold = cold
        return self._hist, self._cold

    def histogram(self, container: str) -> dict[int, int]:
        """Reuse-distance histogram (finite distances) of one container."""
        hist, _ = self._aggregates()
        return dict(hist.get(container, {}))

    def cold_misses(self) -> dict[str, int]:
        _, cold = self._aggregates()
        return dict(cold)

    def miss_counts(self, capacity_lines: int) -> dict[str, MissCounts]:
        """Per-container miss classification — equals the enumeration
        pipeline's ``local.classify`` product."""
        hist, cold = self._aggregates()
        out: dict[str, MissCounts] = {}
        for name in self.containers:
            total = self.events_per_container[name]
            k = cold.get(name, 0)
            p = sum(
                count for distance, count in hist.get(name, {}).items()
                if distance >= capacity_lines
            )
            out[name] = MissCounts(hits=total - k - p, cold=k, capacity=p)
        return out

    # -- per-element aggregates --------------------------------------------
    def _element_shape(self, container: str) -> tuple[int, ...] | None:
        spans = [
            s.index_span(container)
            for s in self._summaries
            if s.has_container(container)
        ]
        if not spans:
            return None
        return tuple(max(dims) for dims in zip(*spans)) if spans[0] else ()

    def per_element_misses(
        self, container: str, capacity_lines: int
    ) -> dict[tuple[int, ...], MissCounts]:
        """Per-element miss counts — equals
        :func:`~repro.simulation.arrays.per_element_misses_array`."""
        key = (container, capacity_lines)
        cached = self._element_cache.get(key)
        if cached is not None:
            return cached
        shape = self._element_shape(container)
        if shape is None:
            return {}
        size = 1
        for extent in shape:
            size *= extent
        mult = np.ones(len(shape), dtype=np.int64)
        for d in range(len(shape) - 2, -1, -1):
            mult[d] = mult[d + 1] * shape[d + 1]
        dense_total = np.zeros(size, dtype=np.int64)
        dense_cold = np.zeros(size, dtype=np.int64)
        dense_cap = np.zeros(size, dtype=np.int64)
        for summary in self._summaries:
            if summary.has_container(container):
                summary.per_element_into(
                    container, capacity_lines, mult,
                    dense_total, dense_cold, dense_cap,
                )
        present = np.flatnonzero(dense_total)
        out: dict[tuple[int, ...], MissCounts] = {}
        if shape:
            columns = np.unravel_index(present, shape)
            indices = list(zip(*(c.tolist() for c in columns)))
        else:
            indices = [()] * present.size
        for element, t, k, p in zip(
            indices,
            dense_total[present].tolist(),
            dense_cold[present].tolist(),
            dense_cap[present].tolist(),
        ):
            out[element] = MissCounts(hits=t - k - p, cold=k, capacity=p)
        self._element_cache[key] = out
        return out

    def __repr__(self) -> str:
        return (
            f"AnalyticLocality(events={self.total_events}, "
            f"folded={self.analytic_regions}, "
            f"enumerated={self.fallback_regions})"
        )


def analyze_locality(
    sdfg: SDFG,
    symbols: Mapping[str, int],
    state: SDFGState | None = None,
    line_size: int = 64,
    include_transients: bool = False,
    fast: bool = True,
    timings=None,
) -> AnalyticLocality:
    """Run the analytic locality engine over a parameterized program.

    Single-region affine maps with uniform outer shift fold to a
    constant number of enumerated blocks; every other region enumerates
    through the simulator and the per-region results stitch exactly.
    The returned product equals the enumeration pipeline on every query.
    """
    env = {k: int(v) for k, v in symbols.items()}
    memory = MemoryModel(sdfg, env, line_size=line_size)
    regions = extract_regions(sdfg, state)
    single = len(regions) == 1
    summaries: list = []
    folded = 0
    enumerated = 0
    symbolic: SymbolicLocality | None = None
    for region in regions:
        summary = None
        if single and isinstance(region.node, MapEntry):
            candidate = fold_statics(
                sdfg, region.state, region.node, env,
                include_transients=include_transients,
            )
            if candidate is not None:
                summary = try_build_fold(
                    sdfg, env, region.state, candidate, memory,
                    include_transients=include_transients,
                    fast=fast, timings=timings,
                )
        if summary is not None:
            folded += 1
            symbolic = _build_symbolic(summary)
            summaries.append(summary)
            continue
        enumerated += 1
        result = simulate_region(
            sdfg, env, region.state, region.node,
            include_transients=include_transients, fast=fast, timings=timings,
        )
        cols = region_columns(result, memory)
        if cols.num_events:
            summaries.append(EnumeratedSummary(cols))
    if len(summaries) > 1:
        _compose(summaries)
    return AnalyticLocality(summaries, folded, enumerated, symbolic, line_size)
