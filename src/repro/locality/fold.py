"""Window-folding of uniform-shift map regions (the closed-form core).

For a foldable region (:func:`~repro.locality.regions.fold_statics`)
every access moves by a constant byte delta per outer-loop iteration.
Cache-line ids therefore repeat with period ``P = L / gcd(|Δ|, L)``
outer blocks (shifted by a whole number of lines per period), and a line
touched in two blocks more than ``Δmax ≈ diameter/|Δ|`` apart would
require the block's address window to overlap itself after drifting past
its own span — impossible.  Two consequences carry the whole analysis:

- an access whose line was not referenced in the previous ``Δmax``
  blocks is the region's *first* touch of that line (a cold miss in a
  single-region program), and
- the reuse-distance multiset of block ``t`` depends only on
  ``t mod P`` once ``t ≥ Δmax``, because the window of the last ``Δmax``
  blocks is the same line pattern up to a per-group constant relabeling.

So the engine enumerates the first ``Δmax`` blocks exactly (the prefix)
plus one ``Δmax+1``-block window per phase — a **constant** number of
blocks — and multiplies each phase's histogram by its block count
``m_r(n)``.  Everything else (containers whose allocations share cache
lines must share ``Δ``; non-uniform structures) declines to per-region
enumeration, which is always exact.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.locality.regions import FoldCandidate, RegionColumns, region_columns
from repro.simulation.layout import MemoryModel
from repro.simulation.simulator import simulate_region
from repro.simulation.stackdist import stack_distances_array

__all__ = ["FoldedSummary", "try_build_fold", "P_JOINT_MAX", "DELTA_MAX_CAP"]

#: Joint phase count above which folding is declined (window enumeration
#: would approach the cost of full enumeration).
P_JOINT_MAX = 64
#: Block-span bound above which folding is declined.
DELTA_MAX_CAP = 64


class _Phase:
    """One steady-state phase: its first block, block count, and the
    representative block's per-event lines and exact reuse distances."""

    __slots__ = ("t", "m", "lines", "distances")

    def __init__(self, t: int, m: int, lines: np.ndarray, distances: np.ndarray):
        self.t = t
        self.m = m
        self.lines = lines
        self.distances = distances


def _scatter(dense: np.ndarray, keys: np.ndarray) -> None:
    """``dense[keys] += 1`` via :func:`np.bincount` (much faster than
    ``np.add.at`` at the event counts the engine scatters)."""
    if keys.size:
        dense += np.bincount(keys, minlength=dense.size)


def _hist_add(acc, cols: RegionColumns, distances: np.ndarray, weight: int = 1,
              positions=None) -> None:
    """Accumulate finite distances into per-container histograms."""
    for name in cols.containers:
        pos = cols.positions[name] if positions is None else positions[name]
        d = distances[pos]
        finite = np.isfinite(d)
        if not finite.any():
            continue
        values, counts = np.unique(d[finite], return_counts=True)
        bucket = acc.setdefault(name, {})
        for v, c in zip(values.tolist(), counts.tolist()):
            key = int(v)
            bucket[key] = bucket.get(key, 0) + int(c) * weight


class FoldedSummary:
    """Closed-form region summary built from O(P·Δmax) enumerated blocks.

    Holds the exact prefix trace (blocks ``[0, Δmax)``), one
    representative block per phase, the block-0 element structure, and
    the per-container outer shifts — enough to answer every aggregate
    the enumeration pipeline answers, for any outer extent, without
    touching the remaining ``n − Δmax`` blocks.
    """

    kind = "folded"

    __slots__ = (
        "block", "shifts", "prefix", "prefix_distances", "phases",
        "n", "block_events", "delta_max", "p_joint",
        "outer_param", "n_expr",
    )

    def __init__(
        self,
        block: RegionColumns,
        shifts: dict[str, tuple[int, ...]],
        prefix: RegionColumns,
        prefix_distances: np.ndarray,
        phases: list[_Phase],
        n: int,
        delta_max: int,
        p_joint: int,
        candidate: FoldCandidate,
    ):
        self.block = block
        self.shifts = shifts
        self.prefix = prefix
        self.prefix_distances = prefix_distances
        self.phases = phases
        self.n = n
        self.block_events = block.num_events
        self.delta_max = delta_max
        self.p_joint = p_joint
        self.outer_param = candidate.outer_param
        self.n_expr = candidate.n_expr

    # -- aggregate interface (shared with EnumeratedSummary) ---------------
    @property
    def total_events(self) -> int:
        return self.block_events * self.n

    def events_per_container(self) -> dict[str, int]:
        return {
            name: int(self.block.positions[name].size) * self.n
            for name in self.block.containers
        }

    def hist_into(self, acc: dict[str, dict[int, int]]) -> None:
        _hist_add(acc, self.prefix, self.prefix_distances)
        for phase in self.phases:
            _hist_add(acc, self.block, phase.distances, weight=phase.m)

    def cold_into(self, acc: dict[str, int]) -> None:
        for name in self.block.containers:
            count = int(np.isinf(self.prefix_distances[self.prefix.positions[name]]).sum())
            pos = self.block.positions[name]
            for phase in self.phases:
                count += int(np.isinf(phase.distances[pos]).sum()) * phase.m
            if count:
                acc[name] = acc.get(name, 0) + count

    def has_container(self, container: str) -> bool:
        return container in self.block.positions

    def index_span(self, container: str) -> tuple[int, ...]:
        matrix = self.block.index_matrices[container]
        shift = self.shifts[container]
        return tuple(
            int(matrix[:, d].max()) + max(0, shift[d] * (self.n - 1)) + 1
            for d in range(matrix.shape[1])
        )

    def per_element_into(
        self,
        container: str,
        capacity: int,
        mult: np.ndarray,
        dense_total: np.ndarray,
        dense_cold: np.ndarray,
        dense_cap: np.ndarray,
    ) -> None:
        prefix_pos = self.prefix.positions.get(container)
        if prefix_pos is not None and prefix_pos.size:
            keys = self.prefix.index_matrices[container] @ mult
            _scatter(dense_total, keys)
            d = self.prefix_distances[prefix_pos]
            cold = np.isinf(d)
            if cold.any():
                _scatter(dense_cold, keys[cold])
            cap = np.isfinite(d) & (d >= capacity)
            if cap.any():
                _scatter(dense_cap, keys[cap])
        block_pos = self.block.positions.get(container)
        if block_pos is None or not block_pos.size:
            return
        base0 = self.block.index_matrices[container] @ mult
        delta = int(
            np.asarray(self.shifts[container], dtype=np.int64) @ mult
        ) if mult.size else 0
        stride = delta * self.p_joint
        for phase in self.phases:
            d = phase.distances[block_pos]
            cold = np.isinf(d)
            cap = np.isfinite(d) & (d >= capacity)
            base = base0 + delta * phase.t
            base_cold = base[cold]
            base_cap = base[cap]
            # All m block copies of the phase touch `base + k·stride`;
            # scatter them in bounded-memory chunks of outer iterations.
            chunk = max(1, 4_000_000 // max(1, base.size))
            for k0 in range(0, phase.m, chunk):
                offsets = (
                    np.arange(k0, min(k0 + chunk, phase.m), dtype=np.int64)
                    * stride
                )[:, None]
                _scatter(dense_total, (base[None, :] + offsets).ravel())
                if base_cold.size:
                    _scatter(dense_cold, (base_cold[None, :] + offsets).ravel())
                if base_cap.size:
                    _scatter(dense_cap, (base_cap[None, :] + offsets).ravel())


def try_build_fold(
    sdfg,
    symbols: Mapping[str, int],
    state,
    candidate: FoldCandidate,
    memory: MemoryModel,
    include_transients: bool = False,
    fast: bool = True,
    timings=None,
) -> FoldedSummary | None:
    """Build a :class:`FoldedSummary`, or return ``None`` to enumerate.

    Dynamic guards on top of the statics: in-bounds element indices over
    the whole outer extent (so lines stay inside their allocation and
    groups never alias), a uniform byte delta per line-sharing container
    group, bounded phase count and block span, and an economic test that
    the prefix + windows enumerate at most half the region's blocks.
    """
    entry = candidate.entry
    n = candidate.n
    line_size = memory.line_size

    def window(lo: int, hi: int) -> RegionColumns:
        result = simulate_region(
            sdfg, symbols, state, entry,
            include_transients=include_transients, fast=fast, timings=timings,
            outer_slice=(lo, hi),
        )
        return region_columns(result, memory)

    block = window(0, 1)
    block_events = block.num_events
    if block_events == 0:
        return None
    shifts = candidate.container_shifts
    # Every container observed in the block must be statically described
    # and stay inside its allocation over all n blocks.
    for name in block.containers:
        if name not in shifts:
            return None
        layout = memory.layout(name)
        matrix = block.index_matrices[name]
        if matrix.shape[1] != len(layout.shape):
            return None
        shift = shifts[name]
        for d in range(matrix.shape[1]):
            lo = int(matrix[:, d].min()) + min(0, shift[d] * (n - 1))
            hi = int(matrix[:, d].max()) + max(0, shift[d] * (n - 1))
            if lo < 0 or hi >= layout.shape[d]:
                return None

    # Group containers whose allocations share cache lines; within a
    # group the byte delta per block must be uniform, so the group's
    # line pattern translates rigidly and relabeling stays bijective.
    intervals = []
    for name in block.containers:
        layout = memory.layout(name)
        intervals.append((
            layout.base_address // line_size,
            (layout.end_address() - 1) // line_size,
            name,
        ))
    intervals.sort()
    groups: list[list[str]] = [[intervals[0][2]]]
    reach = intervals[0][1]
    for start, end, name in intervals[1:]:
        if start <= reach:
            groups[-1].append(name)
            reach = max(reach, end)
        else:
            groups.append([name])
            reach = end

    def delta_bytes(name: str) -> int:
        layout = memory.layout(name)
        return layout.itemsize * sum(
            stride * s for stride, s in zip(layout.strides, shifts[name])
        )

    delta_max = 1
    p_joint = 1
    for group in groups:
        deltas = {delta_bytes(name) for name in group}
        if len(deltas) != 1:
            return None
        delta = deltas.pop()
        if delta == 0:
            continue  # stationary group: period 1, span 1
        period = line_size // math.gcd(abs(delta), line_size)
        member_lines = np.concatenate(
            [block.lines[block.positions[name]] for name in group]
        )
        diam_lines = int(member_lines.max() - member_lines.min())
        span = ((diam_lines + 2) * line_size) // abs(delta) + 1
        p_joint = math.lcm(p_joint, period)
        delta_max = max(delta_max, span)
    if p_joint > P_JOINT_MAX or delta_max > DELTA_MAX_CAP:
        return None
    enumerated_blocks = delta_max + p_joint * (delta_max + 1)
    if n < 2 * enumerated_blocks:
        return None

    prefix = window(0, delta_max)
    if prefix.num_events != delta_max * block_events:
        return None
    prefix_distances = stack_distances_array(prefix.lines)

    phases: list[_Phase] = []
    covered = 0
    for r in range(p_joint):
        t_r = delta_max + ((r - delta_max) % p_joint)
        wcols = window(t_r - delta_max, t_r + 1)
        if wcols.num_events != (delta_max + 1) * block_events:
            return None
        tail = slice(wcols.num_events - block_events, wcols.num_events)
        if wcols.containers != block.containers or not np.array_equal(
            wcols.container_ids[tail], block.container_ids
        ):
            return None
        distances = stack_distances_array(wcols.lines)
        m_r = (n - 1 - t_r) // p_joint + 1
        phases.append(
            _Phase(t_r, m_r, wcols.lines[tail].copy(), distances[tail].copy())
        )
        covered += m_r
    if covered != n - delta_max:
        return None
    return FoldedSummary(
        block, dict(shifts), prefix, prefix_distances, phases,
        n, delta_max, p_joint, candidate,
    )
