"""Region decomposition and static fold analysis for the analytic engine.

A *region* is one top-level node of a state — a map scope, a bare
tasklet, a nested SDFG, or an access-node copy — exactly the units the
access-pattern simulator's state walk dispatches on.  Simulating regions
independently through
:func:`~repro.simulation.simulator.simulate_region` and concatenating
the traces in walk order reproduces
:func:`~repro.simulation.simulator.simulate_state` event-for-event;
that invariant is what lets the engine analyze each region on its own
and stitch the results exactly.

:func:`fold_statics` is the static half of the window-fold analysis: it
checks that a flat affine map region has *uniform outer shift* — every
access to a container moves by the same per-dimension index delta per
outer-loop iteration — which is the property that makes the reuse
pattern of the steady state periodic in the outer loop
(:mod:`repro.locality.fold`).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.sdfg.data import Array
from repro.sdfg.nodes import AccessNode, MapEntry, NestedSDFG, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.simulation.affine import AffineSubset
from repro.simulation.arrays import build_array_trace
from repro.simulation.layout import MemoryModel
from repro.simulation.simulator import SimulationResult
from repro.simulation.stackdist import line_trace
from repro.symbolic.expr import Expr

__all__ = [
    "Region",
    "RegionColumns",
    "FoldCandidate",
    "extract_regions",
    "region_columns",
    "fold_statics",
]


class Region:
    """One top-level node of a state, simulated as an independent unit."""

    __slots__ = ("state", "node")

    def __init__(self, state: SDFGState, node: Node):
        self.state = state
        self.node = node

    def __repr__(self) -> str:
        return f"Region({self.state.name}, {type(self.node).__name__})"


def extract_regions(sdfg: SDFG, state: SDFGState | None = None) -> list[Region]:
    """Top-level regions of *state* (or all states), in simulation order.

    Mirrors the simulator's walk: topological node order, scoped nodes
    handled by their scope, and the same four dispatchable node kinds.
    Access nodes only form a region when they source a copy edge — a
    bare access node emits no events.
    """
    states = [state] if state is not None else list(sdfg.all_states_topological())
    regions: list[Region] = []
    for st in states:
        sdict = st.scope_dict()
        for node in st.topological_nodes():
            if sdict[node] is not None:
                continue
            if isinstance(node, (MapEntry, Tasklet, NestedSDFG)):
                regions.append(Region(st, node))
            elif isinstance(node, AccessNode) and any(
                isinstance(edge.dst, AccessNode) and edge.data.memlet is not None
                for edge in st.out_edges(node)
            ):
                regions.append(Region(st, node))
    return regions


class RegionColumns:
    """Columnar view of one region's trace.

    Parallel per-event arrays (trace order): region-local container ids
    and global cache-line ids; plus, per container, the positions of its
    events and the matching element-index matrix.  Containers are listed
    in first-access order.
    """

    __slots__ = ("num_events", "containers", "container_ids", "lines",
                 "positions", "index_matrices")

    def __init__(
        self,
        num_events: int,
        containers: list[str],
        container_ids: np.ndarray,
        lines: np.ndarray,
        positions: dict[str, np.ndarray],
        index_matrices: dict[str, np.ndarray],
    ):
        self.num_events = num_events
        self.containers = containers
        self.container_ids = container_ids
        self.lines = lines
        self.positions = positions
        self.index_matrices = index_matrices


def region_columns(result: SimulationResult, memory: MemoryModel) -> RegionColumns:
    """Build the columnar view of a region's simulation result.

    Array-representable traces come straight from the vector blocks;
    interpreted traces fall back to the (batched) object-event path.
    Both produce identical columns.
    """
    n = result.num_events
    if n == 0:
        return RegionColumns(0, [], np.empty(0, np.int64), np.empty(0, np.int64), {}, {})
    trace = build_array_trace(result, memory)
    if trace is not None:
        containers = list(trace.containers)
        container_ids = trace.container_ids
        lines = trace.lines
        positions: dict[str, np.ndarray] = {}
        index_matrices: dict[str, np.ndarray] = {}
        for cid, name in enumerate(containers):
            pos = np.flatnonzero(container_ids == cid)
            positions[name] = pos
            shape = trace.key_shapes[cid]
            if shape:
                cols = np.unravel_index(trace.element_keys[pos], shape)
                index_matrices[name] = np.column_stack(
                    [c.astype(np.int64, copy=False) for c in cols]
                )
            else:
                index_matrices[name] = np.empty((pos.size, 0), dtype=np.int64)
        return RegionColumns(n, containers, container_ids, lines, positions, index_matrices)
    events = result.events
    lines = np.asarray(line_trace(events, memory), dtype=np.int64)
    containers = []
    index_of: dict[str, int] = {}
    container_ids = np.empty(n, dtype=np.int64)
    rows: dict[str, list[tuple[int, ...]]] = {}
    for t, event in enumerate(events):
        cid = index_of.get(event.data)
        if cid is None:
            cid = index_of[event.data] = len(containers)
            containers.append(event.data)
        container_ids[t] = cid
        rows.setdefault(event.data, []).append(event.indices)
    positions = {
        name: np.flatnonzero(container_ids == cid)
        for name, cid in index_of.items()
    }
    index_matrices = {}
    for name, tuples in rows.items():
        ndims = len(tuples[0])
        if ndims:
            index_matrices[name] = np.array(tuples, dtype=np.int64)
        else:
            index_matrices[name] = np.empty((len(tuples), 0), dtype=np.int64)
    return RegionColumns(n, containers, container_ids, lines, positions, index_matrices)


class FoldCandidate:
    """Static description of a window-foldable map region.

    ``container_shifts[c]`` is the per-dimension element-index delta of
    every access to container *c* per outer-loop iteration (uniform by
    the statics guard); ``n`` is the concrete outer extent and
    ``n_expr`` the same extent as a symbolic expression over the program
    parameters.
    """

    __slots__ = ("entry", "n", "step0", "outer_param", "container_shifts", "n_expr")

    def __init__(
        self,
        entry: MapEntry,
        n: int,
        step0: int,
        outer_param: str,
        container_shifts: dict[str, tuple[int, ...]],
        n_expr: Expr,
    ):
        self.entry = entry
        self.n = n
        self.step0 = step0
        self.outer_param = outer_param
        self.container_shifts = container_shifts
        self.n_expr = n_expr


def _tracked(sdfg: SDFG, data: str, include_transients: bool) -> bool:
    if include_transients:
        return True
    desc = sdfg.arrays.get(data)
    return desc is None or isinstance(desc, Array)


def fold_statics(
    sdfg: SDFG,
    state: SDFGState,
    entry: MapEntry,
    env: Mapping[str, int],
    include_transients: bool = False,
) -> FoldCandidate | None:
    """Check the static fold preconditions of a map region.

    Returns ``None`` (→ enumerate the region instead) unless

    - the scope is flat: tasklets only, no nested maps or nested SDFGs;
    - the outer extent has ≥ 2 iterations and no range depends on any
      map parameter (triangular nests decline naturally);
    - every tracked memlet subset is affine in the map parameters; and
    - each container's outer shift (per-dimension index delta per outer
      iteration) is identical across all accesses to it.
    """
    params = entry.map.params
    if not params:
        return None
    pset = frozenset(params)
    ranges = entry.map.ranges
    for r in ranges:
        if r.free_symbols() & pset:
            return None
    try:
        outer = list(ranges[0].concretize(env))
    except Exception:  # noqa: BLE001 — undecidable extent: enumerate instead
        return None
    n = len(outer)
    if n < 2:
        return None
    step0 = outer[1] - outer[0]
    children = state.scope_children().get(entry, [])
    if any(isinstance(node, (MapEntry, NestedSDFG)) for node in children):
        return None
    container_shifts: dict[str, tuple[int, ...]] = {}
    for node in children:
        if not isinstance(node, Tasklet):
            continue
        for edge in list(state.in_edges(node)) + list(state.out_edges(node)):
            memlet = edge.data.memlet
            if memlet is None or not _tracked(sdfg, memlet.data, include_transients):
                continue
            subset = AffineSubset.from_memlet(memlet, pset)
            if subset is None:
                return None
            shifts = []
            for dim in subset.dims:
                _, coeffs = dim.begin.concretize(env)
                shifts.append(coeffs.get(params[0], 0) * step0)
            shift = tuple(shifts)
            previous = container_shifts.setdefault(memlet.data, shift)
            if previous != shift:
                return None
    if not container_shifts:
        return None
    return FoldCandidate(
        entry, n, step0, params[0], container_shifts, ranges[0].num_elements()
    )
