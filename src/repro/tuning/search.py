"""Beam search over transform sequences, scored by the incremental pipeline.

The search explores sequences of content-keyed transform matches
(:mod:`repro.transforms.protocol`) over a program:

- **enumeration** — every registered transform lists its matches on each
  frontier candidate; applying one match to a *copy* of the candidate
  yields a child variant;
- **dedup** — children are deduplicated by SDFG content fingerprint
  against every variant visited so far, so commuting sequences (permute A
  then B vs. B then A) are explored once;
- **scoring** — children are evaluated through the *shared* session
  pipeline via the fault-tolerant
  :class:`~repro.analysis.executor.SweepExecutor` (parallel across
  candidates when *workers* is set); the objective is modeled physical
  movement at the given parameter point, so layout-only children re-score
  almost free (the logical-keyed simulation trace is a pipeline cache
  hit);
- **selection** — the best *beam* children (fewest moved bytes) form the
  next frontier; the search runs until *depth* rounds, the evaluation
  *budget*, the wall-clock *timeout*, or a frontier with no new children.

Observability: one ``tune.run`` span wraps the search with one
``tune.round`` span per frontier expansion, and the metrics registry
counts ``tuning.candidates.evaluated`` / ``.deduplicated`` /
``.apply_failures`` and ``tuning.rounds``.  Progress is streamable: every
scored candidate triggers an *on_event* callback (the ``/v1/tune``
endpoint forwards these as NDJSON lines).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.executor import CancelToken, SweepExecutor, SweepPointError
from repro.errors import TransformError, TuningError
from repro.resilience.deadline import Deadline
from repro.passes import PassContext, Pipeline, build_pipeline
from repro.sdfg.sdfg import SDFG
from repro.sdfg.serialize import sdfg_fingerprint
from repro.transforms.protocol import Match, Transform, resolve_transforms
from repro.transforms.report import TransformReport
from repro.tuning.objective import CandidateScore, MovementObjective

__all__ = ["Candidate", "TuningResult", "TuningSearch", "VARIANT_KEY"]

#: Synthetic grid key carrying the candidate index through the executor.
VARIANT_KEY = "__variant__"


class Candidate:
    """One explored variant: a transform sequence and its scored SDFG."""

    __slots__ = ("sequence", "sdfg", "fingerprint", "score", "round")

    def __init__(
        self,
        sequence: tuple[Match, ...],
        sdfg: SDFG,
        fingerprint: str,
        score: CandidateScore | None = None,
        round: int = 0,
    ):
        self.sequence = sequence
        self.sdfg = sdfg
        self.fingerprint = fingerprint
        self.score = score
        self.round = round

    def describe_sequence(self) -> list[dict[str, Any]]:
        return [m.to_dict() for m in self.sequence]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "sequence": self.describe_sequence(),
            "fingerprint": self.fingerprint,
            "round": self.round,
        }
        if self.score is not None:
            out.update(self.score.to_dict())
        return out

    def __repr__(self) -> str:
        steps = " -> ".join(m.transform for m in self.sequence) or "<baseline>"
        moved = "unscored" if self.score is None else self.score.moved_bytes
        return f"Candidate({steps}, moved_bytes={moved})"


class TuningResult:
    """Outcome of one tuning search."""

    def __init__(
        self,
        baseline: Candidate,
        best: Candidate,
        trajectory: list[dict[str, Any]],
        evaluated: int,
        deduplicated: int,
        rounds: int,
        seconds: float,
        stopped: str,
        pass_hits: int,
    ):
        #: The unmodified program's candidate (empty sequence), scored.
        self.baseline = baseline
        #: The best variant found (may be the baseline).
        self.best = best
        #: One entry per scored candidate, in evaluation order — the
        #: roofline view plots this as the search trajectory.
        self.trajectory = trajectory
        self.evaluated = evaluated
        self.deduplicated = deduplicated
        self.rounds = rounds
        self.seconds = seconds
        #: Why the search ended: ``"converged"``, ``"depth"``,
        #: ``"budget"``, ``"timeout"``, ``"deadline"`` or ``"cancelled"``.
        self.stopped = stopped
        #: Pipeline pass-cache hits observed across candidate scoring.
        self.pass_hits = pass_hits

    @property
    def improvement(self) -> float:
        """Fractional movement reduction of the best variant vs. baseline."""
        base = self.baseline.score.moved_bytes if self.baseline.score else 0
        if base <= 0 or self.best.score is None:
            return 0.0
        return 1.0 - self.best.score.moved_bytes / base

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline.to_dict(),
            "best": self.best.to_dict(),
            "improvement": self.improvement,
            "evaluated": self.evaluated,
            "deduplicated": self.deduplicated,
            "rounds": self.rounds,
            "seconds": self.seconds,
            "stopped": self.stopped,
            "pass_hits": self.pass_hits,
            "trajectory": self.trajectory,
        }

    def __repr__(self) -> str:
        return (
            f"TuningResult(best={self.best!r}, "
            f"improvement={self.improvement:.1%}, evaluated={self.evaluated}, "
            f"stopped={self.stopped!r})"
        )


class _VariantPointFn:
    """Picklable pool-side evaluator: variant marker -> serialized SDFG.

    Mirrors :class:`~repro.storage.DiskCachedPointFn`'s shape — worker
    processes cannot share the session pipeline, so they deserialize
    their assigned variant and evaluate the locality point from scratch.
    """

    def __init__(self, texts: dict[int, str]):
        self.texts = texts

    def __call__(
        self, _sdfg_text, params, line_size, capacity_lines,
        include_transients, fast,
    ):
        from repro.analysis import parametric
        from repro.sdfg.serialize import loads

        params = dict(params)
        index = int(params.pop(VARIANT_KEY))
        sdfg = loads(self.texts[index])
        return parametric._evaluate_point(
            sdfg, params, line_size, capacity_lines, include_transients, fast
        )


class TuningSearch:
    """Beam search over transform sequences on one program.

    Parameters
    ----------
    sdfg:
        The program to tune (never mutated: children are copies).
    params:
        Concrete simulation sizes for the local-view objective.
    transforms:
        Transform instances or registry names to search over; defaults to
        :func:`~repro.transforms.protocol.default_transforms`.
    beam:
        Frontier width — how many best candidates expand per round.
    depth:
        Maximum sequence length (rounds of expansion).
    budget:
        Maximum number of scored candidates, baseline included.
    timeout:
        Overall wall-clock budget in seconds (``None`` disables).
    workers:
        Fan candidate evaluation out over a process pool when > 1; the
        in-process path (default) scores through the shared pipeline and
        benefits from cross-candidate pass caching.
    pipeline:
        The session's incremental pipeline; a private one is built when
        absent (standalone use).
    """

    def __init__(
        self,
        sdfg: SDFG,
        params: Mapping[str, int],
        transforms: Sequence[Transform | str] | None = None,
        beam: int = 6,
        depth: int = 4,
        budget: int = 512,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        timeout: float | None = None,
        workers: int | None = None,
        pipeline: Pipeline | None = None,
        scope: tuple = (),
        tracer=None,
        metrics=None,
    ):
        if beam < 1:
            raise TuningError("beam width must be >= 1")
        if depth < 1:
            raise TuningError("search depth must be >= 1")
        if budget < 1:
            raise TuningError("evaluation budget must be >= 1")
        self.sdfg = sdfg
        self.params = dict(params)
        try:
            self.transforms = resolve_transforms(
                transforms, line_bytes=line_size
            )
        except TransformError as exc:
            raise TuningError(f"bad transform set: {exc}") from exc
        if not self.transforms:
            raise TuningError("no transforms to search over")
        self.beam = int(beam)
        self.depth = int(depth)
        self.budget = int(budget)
        self.timeout = timeout
        self.workers = workers
        if pipeline is None:
            # Standalone use: a private pipeline with its own observability,
            # so pass-cache hits across candidates are still measurable.
            from repro.obs import MetricsRegistry, Tracer

            metrics = metrics if metrics is not None else MetricsRegistry()
            tracer = tracer if tracer is not None else Tracer()
            pipeline = build_pipeline(tracer=tracer, metrics=metrics)
        self.pipeline = pipeline
        self.scope = tuple(scope) if scope else (sdfg.name, "tune")
        self.tracer = tracer if tracer is not None else self.pipeline.tracer
        self.metrics = (
            metrics if metrics is not None else self.pipeline.metrics
        )
        self.objective = MovementObjective(
            self.pipeline,
            self.params,
            line_size=line_size,
            capacity_lines=capacity_lines,
            include_transients=include_transients,
            fast=fast,
            scope=self.scope,
            timings=self.tracer,
            metrics=self.metrics,
        )
        self._cfg = {
            "line_size": line_size,
            "capacity_lines": capacity_lines,
            "include_transients": include_transients,
            "fast": fast,
        }

    # -- observability helpers ------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _span(self, name: str, **attrs):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def _pass_hits(self) -> int:
        if self.metrics is None:
            return 0
        counters = self.metrics.to_dict()["counters"]
        return sum(
            value
            for name, value in counters.items()
            if name.startswith("pass.") and name.endswith(".hits")
        )

    # -- search ----------------------------------------------------------------
    def run(
        self,
        cancel: CancelToken | None = None,
        on_event: Callable[[dict[str, Any]], None] | None = None,
        deadline: "Deadline | None" = None,
    ) -> TuningResult:
        """Run the search; returns the scored trajectory and best variant.

        *deadline* (a :class:`~repro.resilience.deadline.Deadline`) is
        the caller's request deadline; it tightens the search's own
        ``timeout`` budget and stops the search with reason
        ``"deadline"`` — distinguishable from ``"timeout"`` (the
        search's configured budget) in the result and terminal event.
        """
        start = time.monotonic()
        budget_at = None if self.timeout is None else start + self.timeout
        deadline_at = None if deadline is None else deadline.at
        hits_before = self._pass_hits()

        def emit(event: dict[str, Any]) -> None:
            if on_event is not None:
                on_event(event)

        with self._span(
            "tune.run", beam=self.beam, depth=self.depth, budget=self.budget
        ):
            baseline = Candidate((), self.sdfg, sdfg_fingerprint(self.sdfg))
            baseline.score = self.objective.score(self.sdfg)
            evaluated = 1
            deduplicated = 0
            trajectory: list[dict[str, Any]] = [baseline.to_dict()]
            visited = {baseline.fingerprint}
            frontier = [baseline]
            best = baseline
            stopped = "depth"
            rounds = 0
            emit({
                "event": "start",
                "params": dict(self.params),
                "transforms": [t.name for t in self.transforms],
                "beam": self.beam,
                "depth": self.depth,
                "budget": self.budget,
                "baseline": baseline.to_dict(),
            })

            for round_index in range(1, self.depth + 1):
                if cancel is not None and cancel.cancelled:
                    stopped = "cancelled"
                    break
                now = time.monotonic()
                if deadline_at is not None and now >= deadline_at:
                    stopped = "deadline"
                    break
                if budget_at is not None and now >= budget_at:
                    stopped = "timeout"
                    break
                if evaluated >= self.budget:
                    stopped = "budget"
                    break
                with self._span("tune.round", round=round_index):
                    stop_at = (
                        budget_at
                        if deadline_at is None
                        else deadline_at
                        if budget_at is None
                        else min(budget_at, deadline_at)
                    )
                    children, skipped = self._expand(
                        frontier, visited, round_index,
                        limit=self.budget - evaluated,
                        deadline=stop_at, cancel=cancel,
                    )
                    deduplicated += skipped
                    if not children:
                        stopped = "converged"
                        break
                    rounds = round_index
                    self._count("tuning.rounds")
                    scored = self._evaluate(children, cancel=cancel)
                    evaluated += len(scored)
                    self._count("tuning.candidates.evaluated", len(scored))
                    emit({
                        "event": "round",
                        "round": round_index,
                        "candidates": len(children),
                        "scored": len(scored),
                        "evaluated": evaluated,
                    })
                    for candidate in scored:
                        improved = (
                            best.score is None
                            or candidate.score.moved_bytes
                            < best.score.moved_bytes
                        )
                        if improved:
                            best = candidate
                        trajectory.append(candidate.to_dict())
                        emit({
                            "event": "candidate",
                            "round": round_index,
                            **candidate.to_dict(),
                            "best": improved,
                        })
                # Next frontier: the `beam` best scored children.
                scored.sort(key=lambda c: (
                    c.score.moved_bytes, len(c.sequence)
                ))
                frontier = scored[: self.beam]
                if not frontier:
                    stopped = "converged"
                    break

        seconds = time.monotonic() - start
        result = TuningResult(
            baseline=baseline,
            best=best,
            trajectory=trajectory,
            evaluated=evaluated,
            deduplicated=deduplicated,
            rounds=rounds,
            seconds=seconds,
            stopped=stopped,
            pass_hits=self._pass_hits() - hits_before,
        )
        if self.metrics is not None:
            self.metrics.gauge("tuning.best_moved_bytes").set(
                best.score.moved_bytes if best.score else 0
            )
        emit({"event": "end", **{
            k: v for k, v in result.to_dict().items() if k != "trajectory"
        }})
        return result

    def _expand(
        self,
        frontier: list[Candidate],
        visited: set[str],
        round_index: int,
        limit: int,
        deadline: float | None,
        cancel: CancelToken | None,
    ) -> tuple[list[Candidate], int]:
        """All not-yet-visited children of the frontier, up to *limit*."""
        children: list[Candidate] = []
        skipped = 0
        for parent in frontier:
            for transform in self.transforms:
                for match in transform.enumerate_matches(parent.sdfg):
                    if len(children) >= limit:
                        return children, skipped
                    if cancel is not None and cancel.cancelled:
                        return children, skipped
                    if (
                        deadline is not None
                        and time.monotonic() >= deadline
                    ):
                        return children, skipped
                    variant = parent.sdfg.copy()
                    try:
                        report = transform.apply(variant, match)
                    except TransformError:
                        self._count("tuning.apply_failures")
                        continue
                    assert isinstance(report, TransformReport)
                    fingerprint = sdfg_fingerprint(variant)
                    if fingerprint in visited:
                        skipped += 1
                        self._count("tuning.candidates.deduplicated")
                        continue
                    visited.add(fingerprint)
                    children.append(Candidate(
                        parent.sequence + (match,),
                        variant,
                        fingerprint,
                        round=round_index,
                    ))
        return children, skipped

    def _evaluate(
        self, children: list[Candidate], cancel: CancelToken | None
    ) -> list[Candidate]:
        """Score *children* via the sweep executor; returns the scored ones.

        The executor sees one synthetic grid point per candidate; the
        in-process path evaluates through the shared pipeline (pass-cache
        reuse across variants), the pool path ships each variant's
        serialized text to the workers.
        """
        grid = [
            {**self.params, VARIANT_KEY: index}
            for index in range(len(children))
        ]
        variants = [child.sdfg for child in children]

        def serial_fn(
            _sdfg, point_params, line_size, capacity_lines,
            include_transients, fast,
        ):
            point_params = dict(point_params)
            index = int(point_params.pop(VARIANT_KEY))
            ctx = PassContext(
                variants[index],
                state=None,
                env=point_params,
                line_size=line_size,
                capacity_lines=capacity_lines,
                include_transients=include_transients,
                fast=fast,
                scope=self.scope,
                timings=self.tracer,
                metrics=self.metrics,
            )
            return self.pipeline.run("local.point", ctx)

        use_pool = self.workers is not None and self.workers > 1
        point_fn = None
        if use_pool:
            from repro.sdfg.serialize import dumps

            point_fn = _VariantPointFn({
                index: dumps(variant, indent=None)
                for index, variant in enumerate(variants)
            })
        executor = SweepExecutor(
            workers=self.workers if use_pool else None,
            retries=1,
            tracer=self.tracer,
            metrics=self.metrics,
            point_fn=point_fn,
            serial_fn=serial_fn,
        )
        run = executor.run(
            self.sdfg, grid, cancel=cancel, **self._cfg
        )
        scored: list[Candidate] = []
        for child, outcome in zip(children, run.outcomes):
            if isinstance(outcome, SweepPointError):
                self._count("tuning.candidates.failed")
                continue
            child.score = self.objective.from_point(child.sdfg, outcome)
            scored.append(child)
        return scored
