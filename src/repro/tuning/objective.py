"""Scoring candidate program variants through the incremental pipeline.

The tuner's objective is the paper's own metric: modeled **physical data
movement** at a concrete parameter point, produced by the same
content-addressed pass pipeline the interactive views query
(``local.point``).  Scoring through the *shared* pipeline is what makes
the search cheap: a layout-only variant re-keys only the layout-dependent
passes, so its expensive simulation trace is a cache hit from a
previously scored sibling.

For the roofline view the score also carries the whole-program operation
count (``global.totals``), which is invariant under every registered
transform — variants differ in movement, not in work, so the search
trajectory moves horizontally through the roofline's intensity axis.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.passes import PassContext, Pipeline

__all__ = ["CandidateScore", "MovementObjective"]


class CandidateScore:
    """Locality metrics of one scored candidate variant (picklable)."""

    __slots__ = ("moved_bytes", "total_accesses", "total_misses", "ops")

    def __init__(
        self,
        moved_bytes: int,
        total_accesses: int,
        total_misses: int,
        ops: float,
    ):
        self.moved_bytes = int(moved_bytes)
        self.total_accesses = int(total_accesses)
        self.total_misses = int(total_misses)
        self.ops = float(ops)

    @property
    def intensity(self) -> float:
        """Operational intensity in ops/byte (``inf`` when nothing moves)."""
        if self.moved_bytes <= 0:
            return float("inf")
        return self.ops / self.moved_bytes

    def to_dict(self) -> dict[str, Any]:
        return {
            "moved_bytes": self.moved_bytes,
            "total_accesses": self.total_accesses,
            "total_misses": self.total_misses,
            "ops": self.ops,
            "intensity": (
                None if self.moved_bytes <= 0 else self.intensity
            ),
        }

    def __repr__(self) -> str:
        return (
            f"CandidateScore(moved_bytes={self.moved_bytes}, "
            f"misses={self.total_misses}, ops={self.ops:g})"
        )


class MovementObjective:
    """Physical-movement objective over a shared incremental pipeline.

    All candidates of one search score through the same
    :class:`~repro.passes.pipeline.Pipeline` and
    :class:`~repro.passes.store.ResultStore`; the content-addressed keys
    embed each candidate's graph and descriptor fingerprints, so two
    variants that share logical content (e.g. differing only in strides)
    share the cached simulation trace.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        params: Mapping[str, int],
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        scope: tuple = (),
        timings=None,
        metrics=None,
    ):
        self.pipeline = pipeline
        self.params = dict(params)
        self.line_size = int(line_size)
        self.capacity_lines = int(capacity_lines)
        self.include_transients = bool(include_transients)
        self.fast = bool(fast)
        self.scope = tuple(scope)
        self.timings = timings
        self.metrics = metrics

    def context(self, sdfg) -> PassContext:
        """A whole-program point context for *sdfg* under this objective."""
        return PassContext(
            sdfg,
            state=None,
            env=self.params,
            line_size=self.line_size,
            capacity_lines=self.capacity_lines,
            include_transients=self.include_transients,
            fast=self.fast,
            scope=self.scope,
            timings=self.timings,
            metrics=self.metrics,
        )

    def point(self, sdfg):
        """The raw ``local.point`` product for *sdfg* (a LocalSweepPoint)."""
        return self.pipeline.run("local.point", self.context(sdfg))

    def ops(self, sdfg) -> float:
        """Whole-program operation count evaluated at the point's params."""
        totals = self.pipeline.run(
            "global.totals",
            PassContext(
                sdfg, state=None, env=None, scope=self.scope,
                timings=self.timings, metrics=self.metrics,
            ),
        )
        return float(totals["ops"].evaluate(self.params))

    def score(self, sdfg) -> CandidateScore:
        """Score one candidate serially through the shared pipeline."""
        point = self.point(sdfg)
        return self.from_point(sdfg, point)

    def from_point(self, sdfg, point) -> CandidateScore:
        """Combine an already-evaluated local point with the op count."""
        return CandidateScore(
            moved_bytes=point.total_moved_bytes,
            total_accesses=point.total_accesses,
            total_misses=point.total_misses,
            ops=self.ops(sdfg),
        )
