"""Auto-tuning: beam search over transform sequences.

The interactive workflow of the paper — inspect the data-movement
visualization, pick a transformation, re-analyze — closes into a loop
here: :class:`~repro.tuning.search.TuningSearch` enumerates the uniform
transform protocol's matches (:mod:`repro.transforms.protocol`), applies
them to candidate copies, and scores every candidate through the same
incremental pass pipeline the views query.  Because the pipeline is
content-addressed, layout-only candidates re-score from cached
simulation traces, and revisited variants cost nothing — the properties
that make search over a simulation-backed objective affordable.

Entry points: ``Session.tune(...)``, the ``repro tune`` CLI, and the
analysis service's streaming ``POST /v1/tune``.
"""

from repro.tuning.objective import CandidateScore, MovementObjective
from repro.tuning.search import Candidate, TuningResult, TuningSearch

__all__ = [
    "Candidate",
    "CandidateScore",
    "MovementObjective",
    "TuningResult",
    "TuningSearch",
]
