"""Convolution kernels for the access-pattern figures.

Fig. 4a shows the 4-D weight tensor ``w ∈ R^{C_out × C_in × K_y × K_x}``
of a "3D convolution" (2-D spatial + channels); Fig. 4b shows the access
distribution when mapping 3-channel 9×9 inputs to 2-channel 6×6 outputs
(kernel 4×4, no padding); Fig. 5c estimates cache misses and physical
movement on the input and weight tensors with 8-byte values and 64-byte
lines.
"""

from __future__ import annotations

import numpy as np

from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.sdfg.sdfg import SDFG
from repro.symbolic import symbols

__all__ = [
    "FIG4_SIZES",
    "conv_program",
    "build_conv",
    "reference_conv",
]

Cout, Cin, H, W, KY, KX = symbols("Cout Cin H W KY KX")

#: Fig. 4b configuration: 3-channel 9×9 inputs → 2-channel 6×6 outputs.
FIG4_SIZES = {"Cout": 2, "Cin": 3, "H": 9, "W": 9, "KY": 4, "KX": 4}


@program
def conv_program(
    inp: float64[Cin, H, W],
    w: float64[Cout, Cin, KY, KX],
    out: float64[Cout, H - KY + 1, W - KX + 1],
):
    """Channel-summed 2-D convolution, no padding, unit stride."""
    for co, y, x, ci, ky, kx in pmap(
        Cout, H - KY + 1, W - KX + 1, Cin, KY, KX
    ):
        out[co, y, x] += inp[ci, y + ky, x + kx] * w[co, ci, ky, kx]


def build_conv() -> SDFG:
    """Fresh convolution SDFG (symbolic sizes)."""
    return conv_program.to_sdfg()


def reference_conv(inp: np.ndarray, w: np.ndarray) -> np.ndarray:
    """NumPy oracle: direct convolution via sliding windows."""
    cout, cin, ky, kx = w.shape
    _, h, wd = inp.shape
    oh, ow = h - ky + 1, wd - kx + 1
    out = np.zeros((cout, oh, ow))
    for co in range(cout):
        for dy in range(ky):
            for dx in range(kx):
                for ci in range(cin):
                    out[co] += w[co, ci, dy, dx] * inp[ci, dy : dy + oh, dx : dx + ow]
    return out
