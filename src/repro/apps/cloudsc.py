"""CLOUDSC vertical-loop extract — the auto-tuner's blocked-layout workload.

CLOUDSC is the ECMWF IFS cloud microphysics scheme; its dace port is the
canonical ``change_strides`` success story: the blocked fields are stored
``[NBLOCKS, KLEV]`` C-contiguously, so the parallel sweep over blocks
``jn`` jumps ``KLEV`` elements per step — every access starts a new cache
line.  Relayouting the fields so the block dimension is stride-1 (the
NBLOCKS-innermost AoS→SoA change) makes the sweep contiguous; moving the
sequential vertical loop *into* the block map
(:func:`~repro.transforms.interchange.move_loop_into_map`) reaches the
same locality from the schedule side.

This module provides a small single-state extract of that structure —
a sequential vertical loop ``jk`` wrapping a parallel block map ``jn``
over four blocked fields with one vertical-neighbor access — plus the
two manual fixes the auto-tuner is expected to rediscover.
"""

from __future__ import annotations

import numpy as np

from repro.sdfg.dtypes import float64
from repro.sdfg.memlet import Memlet
from repro.sdfg.sdfg import SDFG
from repro.symbolic import symbols
from repro.transforms import change_strides_by_extent, find_loop_map_nests, move_loop_into_map
from repro.transforms.report import TransformReport

__all__ = [
    "PAPER_SIZES",
    "LOCAL_VIEW_SIZES",
    "CACHE",
    "FIELDS",
    "build_sdfg",
    "apply_change_strides",
    "apply_loop_interchange",
    "initialize",
    "cloudsc_numpy_reference",
]

NBLOCKS, KLEV = symbols("NBLOCKS KLEV")

#: Production-like CLOUDSC scale (137 vertical levels).
PAPER_SIZES = {"NBLOCKS": 16384, "KLEV": 137}
#: Scaled-down parameterization for local-view simulation (one KLEV row of
#: a field is exactly one 64-byte line of doubles).
LOCAL_VIEW_SIZES = {"NBLOCKS": 16, "KLEV": 8}
#: Cache model for the tuning experiments: 64-byte lines and a capacity
#: small enough that the strided baseline sweep cannot hold its working
#: set, while the relayouted sweep's one-line-per-field set fits.
CACHE = {"line_size": 64, "capacity_lines": 8}

#: Blocked fields, all ``[NBLOCKS, KLEV]``: temperature, humidity,
#: detrained condensate (read one level up) and the output flux.
FIELDS = ("pt", "pq", "plude", "pfplsl")


def build_sdfg() -> SDFG:
    """The vertical-loop extract in its original blocked layout.

    Structure (the dissected CLOUDSC loop nest)::

        MapEntry(vert_loop: jk in 1:KLEV)        # sequential vertical loop
          MapEntry(block_map: jn in 0:NBLOCKS)   # parallel block sweep
            microphysics tasklet reading pt/pq at [jn, jk],
            plude at [jn, jk-1], writing pfplsl[jn, jk]

    All fields are ``[NBLOCKS, KLEV]`` C-contiguous, so the innermost
    playback dimension ``jn`` strides ``KLEV`` elements — the layout the
    tuner should fix.
    """
    sdfg = SDFG("cloudsc_vert")
    for name in FIELDS:
        sdfg.add_array(name, (NBLOCKS, KLEV), float64)
    state = sdfg.add_state("vert", is_start=True)

    loop_entry, loop_exit = state.add_map("vert_loop", {"jk": "1:KLEV"})
    blk_entry, blk_exit = state.add_map("block_map", {"jn": "0:NBLOCKS"})
    tasklet = state.add_tasklet(
        "microphysics",
        ["t", "q", "ql_up"],
        ["flux"],
        "flux = 0.5 * (t - q) + ql_up",
    )
    reads = {
        "t": Memlet("pt", "jn, jk"),
        "q": Memlet("pq", "jn, jk"),
        "ql_up": Memlet("plude", "jn, jk - 1"),
    }
    for conn, memlet in reads.items():
        access = state.add_access(memlet.data)
        state.add_memlet_path(
            access, loop_entry, blk_entry, tasklet, memlet=memlet, dst_conn=conn
        )
    out = state.add_access("pfplsl")
    state.add_memlet_path(
        tasklet, blk_exit, loop_exit, out,
        memlet=Memlet("pfplsl", "jn, jk"), src_conn="flux",
    )
    return sdfg


# -- the two manual fixes the tuner should rediscover ------------------------


def apply_change_strides(sdfg: SDFG) -> TransformReport:
    """Relayout every blocked field with the NBLOCKS dimension stride-1.

    The dace-port idiom ``change_strides(sdfg, ('NBLOCKS',), ...)``: one
    call, every ``[NBLOCKS, KLEV]`` field becomes block-contiguous.
    Layout-only — memlets and logical analyses are untouched.
    """
    return change_strides_by_extent(sdfg, "NBLOCKS")


def apply_loop_interchange(sdfg: SDFG) -> TransformReport:
    """Move the vertical loop inside the block map (schedule-side fix).

    After the interchange one flat scope iterates ``jn`` outermost and
    ``jk`` innermost, so the playback walks each field's contiguous
    vertical rows instead of striding across blocks.
    """
    for state in sdfg.states():
        for outer in find_loop_map_nests(state):
            if outer.map.label == "vert_loop":
                return move_loop_into_map(state, outer)
    raise ValueError("no vert_loop/block_map nest found; already interchanged?")


# -- executable NumPy reference ----------------------------------------------


def initialize(NBLOCKS: int, KLEV: int, seed: int = 42):
    """Random blocked fields in the original ``[NBLOCKS, KLEV]`` layout."""
    rng = np.random.default_rng(seed)
    pt = rng.random((NBLOCKS, KLEV))
    pq = rng.random((NBLOCKS, KLEV))
    plude = rng.random((NBLOCKS, KLEV))
    pfplsl = np.zeros((NBLOCKS, KLEV))
    return pt, pq, plude, pfplsl


def cloudsc_numpy_reference(
    pt: np.ndarray, pq: np.ndarray, plude: np.ndarray, pfplsl: np.ndarray
) -> None:
    """Vectorized reference semantics of the extract (for validation)."""
    pfplsl[:, 1:] = 0.5 * (pt[:, 1:] - pq[:, 1:]) + plude[:, :-1]
