"""BERT encoder layer — the global-view case study (Section VI-A).

The paper analyzes a NumPy implementation of the BERT-large encoder layer
(B=8, H=16, embedding 1024, sequence 512, intermediate 4096, head size 64)
and applies two rounds of loop fusion:

1. the **logical data-movement heatmap with mean-centered scaling** flags
   two chains of red (high-volume) edges — elementwise operations
   materializing large intermediates — which are fused away;
2. the **arithmetic-intensity overlay with median-centered scaling** then
   flags the remaining low-intensity parallel loops, which are fused in a
   second round.

This module provides

- :func:`build_sdfg` — the encoder as an SDFG of one map per operation
  (the shape the analysis sees; symbolic sizes),
- :func:`fusion_candidates_by_movement` / :func:`apply_fusion_stage1` /
  :func:`apply_fusion_stage2` — the two optimization rounds, selected with
  the same heatmap logic the paper describes, and
- three executable NumPy variants for Table I: :func:`encoder_baseline`
  (one temporary per operation), :func:`encoder_fused_stage1` (elementwise
  chains fused) and :func:`encoder_fused_stage2` (fused chains plus a
  combined QKV projection and buffer reuse).
"""

from __future__ import annotations

import numpy as np

from repro.frontend import pmap, program, transient
from repro.sdfg.dtypes import float64
from repro.sdfg.sdfg import SDFG
from repro.symbolic import symbols
from repro.transforms.map_fusion import MapFusion
from repro.viz.heatmap import Heatmap

__all__ = [
    "PAPER_SIZES",
    "ANALYSIS_SIZES",
    "build_sdfg",
    "fusion_candidates_by_movement",
    "apply_fusion_stage1",
    "apply_fusion_stage2",
    "initialize",
    "encoder_baseline",
    "encoder_fused_stage1",
    "encoder_fused_stage2",
]

B, H, SM, EMB, FF, P = symbols("B H SM EMB FF P")

#: BERT-large parameters used in the paper (Section VI-A).
PAPER_SIZES = {"B": 8, "H": 16, "SM": 512, "EMB": 1024, "FF": 4096, "P": 64}
#: Scaled-down sizes for interactive analysis and CI-sized benchmarks.
ANALYSIS_SIZES = {"B": 2, "H": 4, "SM": 64, "EMB": 128, "FF": 512, "P": 32}

_GELU_C = 0.7978845608028654  # sqrt(2/pi)


@program
def encoder_program(
    x: float64[B, SM, EMB],
    wq: float64[H, P, EMB],
    wk: float64[H, P, EMB],
    wv: float64[H, P, EMB],
    bq: float64[H, P],
    bk: float64[H, P],
    bv: float64[H, P],
    wo: float64[H, P, EMB],
    bo: float64[EMB],
    w1: float64[FF, EMB],
    b1: float64[FF],
    w2: float64[EMB, FF],
    b2: float64[EMB],
    gamma1: float64[EMB],
    beta1: float64[EMB],
    gamma2: float64[EMB],
    beta2: float64[EMB],
    q: transient(float64[B, H, SM, P]),
    k: transient(float64[B, H, SM, P]),
    v: transient(float64[B, H, SM, P]),
    qb: transient(float64[B, H, SM, P]),
    kb: transient(float64[B, H, SM, P]),
    vb: transient(float64[B, H, SM, P]),
    scores: transient(float64[B, H, SM, SM]),
    scaled: transient(float64[B, H, SM, SM]),
    expd: transient(float64[B, H, SM, SM]),
    denom: transient(float64[B, H, SM]),
    attn: transient(float64[B, H, SM, SM]),
    ctx: transient(float64[B, H, SM, P]),
    proj: transient(float64[B, SM, EMB]),
    projb: transient(float64[B, SM, EMB]),
    res1: transient(float64[B, SM, EMB]),
    mean1: transient(float64[B, SM]),
    var1: transient(float64[B, SM]),
    ln1: transient(float64[B, SM, EMB]),
    h1: transient(float64[B, SM, FF]),
    h1b: transient(float64[B, SM, FF]),
    cube: transient(float64[B, SM, FF]),
    inner: transient(float64[B, SM, FF]),
    act: transient(float64[B, SM, FF]),
    h2: transient(float64[B, SM, EMB]),
    h2b: transient(float64[B, SM, EMB]),
    res2: transient(float64[B, SM, EMB]),
    mean2: transient(float64[B, SM]),
    var2: transient(float64[B, SM]),
    out: float64[B, SM, EMB],
):
    """The encoder layer, one parallel loop per operation (baseline shape).

    Reductions use write-conflict-resolved accumulation; softmax uses the
    exponential-sum formulation (inputs are bounded in this setting).
    """
    # -- Q/K/V projections (per-head factored weights) ---------------------
    for b, h, s, p, e in pmap(B, H, SM, P, EMB):
        q[b, h, s, p] += x[b, s, e] * wq[h, p, e]
    for b, h, s, p, e in pmap(B, H, SM, P, EMB):
        k[b, h, s, p] += x[b, s, e] * wk[h, p, e]
    for b, h, s, p, e in pmap(B, H, SM, P, EMB):
        v[b, h, s, p] += x[b, s, e] * wv[h, p, e]
    for b, h, s, p in pmap(B, H, SM, P):
        qb[b, h, s, p] = q[b, h, s, p] + bq[h, p]
    for b, h, s, p in pmap(B, H, SM, P):
        kb[b, h, s, p] = k[b, h, s, p] + bk[h, p]
    for b, h, s, p in pmap(B, H, SM, P):
        vb[b, h, s, p] = v[b, h, s, p] + bv[h, p]

    # -- scaled dot-product attention --------------------------------------
    for b, h, s, t, p in pmap(B, H, SM, SM, P):
        scores[b, h, s, t] += qb[b, h, s, p] * kb[b, h, t, p]
    for b, h, s, t in pmap(B, H, SM, SM):
        scaled[b, h, s, t] = scores[b, h, s, t] / sqrt(P)  # noqa: F821
    for b, h, s, t in pmap(B, H, SM, SM):
        expd[b, h, s, t] = exp(scaled[b, h, s, t])  # noqa: F821
    for b, h, s, t in pmap(B, H, SM, SM):
        denom[b, h, s] += expd[b, h, s, t]
    for b, h, s, t in pmap(B, H, SM, SM):
        attn[b, h, s, t] = expd[b, h, s, t] / denom[b, h, s]
    for b, h, s, p, t in pmap(B, H, SM, P, SM):
        ctx[b, h, s, p] += attn[b, h, s, t] * vb[b, h, t, p]

    # -- output projection + residual + layer norm --------------------------
    for b, s, e, h, p in pmap(B, SM, EMB, H, P):
        proj[b, s, e] += ctx[b, h, s, p] * wo[h, p, e]
    for b, s, e in pmap(B, SM, EMB):
        projb[b, s, e] = proj[b, s, e] + bo[e]
    for b, s, e in pmap(B, SM, EMB):
        res1[b, s, e] = projb[b, s, e] + x[b, s, e]
    for b, s, e in pmap(B, SM, EMB):
        mean1[b, s] += res1[b, s, e] / EMB
    for b, s, e in pmap(B, SM, EMB):
        var1[b, s] += (res1[b, s, e] - mean1[b, s]) ** 2 / EMB
    for b, s, e in pmap(B, SM, EMB):
        ln1[b, s, e] = (
            (res1[b, s, e] - mean1[b, s]) / sqrt(var1[b, s] + 1e-05)  # noqa: F821
        ) * gamma1[e] + beta1[e]

    # -- feed-forward network (GELU, tanh approximation) --------------------
    for b, s, f, e in pmap(B, SM, FF, EMB):
        h1[b, s, f] += ln1[b, s, e] * w1[f, e]
    for b, s, f in pmap(B, SM, FF):
        h1b[b, s, f] = h1[b, s, f] + b1[f]
    for b, s, f in pmap(B, SM, FF):
        cube[b, s, f] = h1b[b, s, f] * h1b[b, s, f] * h1b[b, s, f]
    for b, s, f in pmap(B, SM, FF):
        inner[b, s, f] = tanh(0.7978845608028654 * (h1b[b, s, f] + 0.044715 * cube[b, s, f]))  # noqa: F821,E501
    for b, s, f in pmap(B, SM, FF):
        act[b, s, f] = 0.5 * h1b[b, s, f] * (1.0 + inner[b, s, f])
    for b, s, e, f in pmap(B, SM, EMB, FF):
        h2[b, s, e] += act[b, s, f] * w2[e, f]
    for b, s, e in pmap(B, SM, EMB):
        h2b[b, s, e] = h2[b, s, e] + b2[e]
    for b, s, e in pmap(B, SM, EMB):
        res2[b, s, e] = h2b[b, s, e] + ln1[b, s, e]
    for b, s, e in pmap(B, SM, EMB):
        mean2[b, s] += res2[b, s, e] / EMB
    for b, s, e in pmap(B, SM, EMB):
        var2[b, s] += (res2[b, s, e] - mean2[b, s]) ** 2 / EMB
    for b, s, e in pmap(B, SM, EMB):
        out[b, s, e] = (
            (res2[b, s, e] - mean2[b, s]) / sqrt(var2[b, s] + 1e-05)  # noqa: F821
        ) * gamma2[e] + beta2[e]


def build_sdfg() -> SDFG:
    """A fresh encoder SDFG (one map per operation, symbolic sizes)."""
    return encoder_program.to_sdfg()


# ---------------------------------------------------------------------------
# The two fusion rounds, driven by the paper's heatmap logic
# ---------------------------------------------------------------------------


def fusion_candidates_by_movement(
    sdfg: SDFG, env: dict[str, int], hot_threshold: float = 0.75
) -> list[MapFusion]:
    """Fusion sites whose intermediate shows up *red* on the movement
    heatmap with mean-centered scaling (the stage-1 selection rule).

    The heatmap is fitted over all edge movement volumes; a candidate
    qualifies when the volume of its intermediate's edges normalizes above
    *hot_threshold* on the [0, 1] color scale.
    """
    from repro.analysis import edge_movement_bytes
    from repro.analysis.parametric import evaluate_metrics

    state = sdfg.start_state
    volumes = evaluate_metrics(edge_movement_bytes(sdfg, state, unique=True), env)
    heatmap = Heatmap(volumes, method="mean")
    hot: list[MapFusion] = []
    for match in MapFusion.find_matches(sdfg, state):
        node = match.intermediate
        edges = state.in_edges(node) + state.out_edges(node)
        positions = [heatmap.position(e) for e in edges if e in heatmap.values]
        if positions and max(positions) >= hot_threshold:
            hot.append(match)
    return hot


def apply_fusion_stage1(sdfg: SDFG, env: dict[str, int] | None = None) -> int:
    """First fusion round: fuse every movement-heatmap-hot candidate.

    Returns the number of fusions applied.  Candidates are re-discovered
    after every application (fusing one chain link exposes the next).
    """
    env = dict(env or PAPER_SIZES)
    applied = 0
    while True:
        hot = fusion_candidates_by_movement(sdfg, env)
        if not hot:
            return applied
        hot[0].apply()
        applied += 1


def apply_fusion_stage2(sdfg: SDFG) -> int:
    """Second fusion round: fuse the remaining (low-intensity) candidates."""
    from repro.transforms import fuse_all_maps

    return fuse_all_maps(sdfg)


# ---------------------------------------------------------------------------
# Executable NumPy variants (Table I)
# ---------------------------------------------------------------------------


class EncoderWeights:
    """Randomly initialized encoder parameters (head-factored layout)."""

    def __init__(self, sizes: dict[str, int], seed: int = 7):
        rng = np.random.default_rng(seed)
        b, h, sm = sizes["B"], sizes["H"], sizes["SM"]
        emb, ff, p = sizes["EMB"], sizes["FF"], sizes["P"]
        scale = 1.0 / np.sqrt(emb)
        self.sizes = dict(sizes)
        self.x = rng.standard_normal((b, sm, emb)) * 0.1
        self.wq = rng.standard_normal((h, p, emb)) * scale
        self.wk = rng.standard_normal((h, p, emb)) * scale
        self.wv = rng.standard_normal((h, p, emb)) * scale
        self.bq = rng.standard_normal((h, p)) * 0.01
        self.bk = rng.standard_normal((h, p)) * 0.01
        self.bv = rng.standard_normal((h, p)) * 0.01
        self.wo = rng.standard_normal((h, p, emb)) * scale
        self.bo = rng.standard_normal(emb) * 0.01
        self.w1 = rng.standard_normal((ff, emb)) * scale
        self.b1 = rng.standard_normal(ff) * 0.01
        self.w2 = rng.standard_normal((emb, ff)) * (1.0 / np.sqrt(ff))
        self.b2 = rng.standard_normal(emb) * 0.01
        self.gamma1 = np.ones(emb)
        self.beta1 = np.zeros(emb)
        self.gamma2 = np.ones(emb)
        self.beta2 = np.zeros(emb)


def initialize(sizes: dict[str, int] | None = None, seed: int = 7) -> EncoderWeights:
    """Random inputs/weights for the encoder (defaults to analysis sizes)."""
    return EncoderWeights(dict(sizes or ANALYSIS_SIZES), seed)


def _layernorm_unfused(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
    mean = np.mean(x, axis=-1, keepdims=True)
    centered = x - mean
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    std = np.sqrt(var + 1e-5)
    normalized = centered / std
    scaled = normalized * gamma
    return scaled + beta


def encoder_baseline(w: EncoderWeights) -> np.ndarray:
    """One temporary per operation — the unfused NumPy baseline.

    Every elementwise step materializes a fresh full-size array, exactly
    mirroring the one-map-per-operation SDFG (the red chains of Fig. 6).
    """
    x = w.x
    q = np.einsum("bse,hpe->bhsp", x, w.wq)
    k = np.einsum("bse,hpe->bhsp", x, w.wk)
    v = np.einsum("bse,hpe->bhsp", x, w.wv)
    qb = q + w.bq[None, :, None, :]
    kb = k + w.bk[None, :, None, :]
    vb = v + w.bv[None, :, None, :]

    scores = np.einsum("bhsp,bhtp->bhst", qb, kb)
    scaled = scores / np.sqrt(w.sizes["P"])
    expd = np.exp(scaled)
    denom = np.sum(expd, axis=-1)
    attn = expd / denom[..., None]
    ctx = np.einsum("bhst,bhtp->bhsp", attn, vb)

    proj = np.einsum("bhsp,hpe->bse", ctx, w.wo)
    projb = proj + w.bo
    res1 = projb + x
    ln1 = _layernorm_unfused(res1, w.gamma1, w.beta1)

    h1 = np.einsum("bse,fe->bsf", ln1, w.w1)
    h1b = h1 + w.b1
    cube = h1b * h1b * h1b
    inner = np.tanh(_GELU_C * (h1b + 0.044715 * cube))
    act = 0.5 * h1b * (1.0 + inner)
    h2 = np.einsum("bsf,ef->bse", act, w.w2)
    h2b = h2 + w.b2
    res2 = h2b + ln1
    return _layernorm_unfused(res2, w.gamma2, w.beta2)


def encoder_fused_stage1(w: EncoderWeights) -> np.ndarray:
    """First fusion round: elementwise chains collapse into single passes.

    The bias adds, softmax scale/exp, GELU chain and residual adds no
    longer materialize separate intermediates.
    """
    x = w.x
    qb = np.einsum("bse,hpe->bhsp", x, w.wq) + w.bq[None, :, None, :]
    kb = np.einsum("bse,hpe->bhsp", x, w.wk) + w.bk[None, :, None, :]
    vb = np.einsum("bse,hpe->bhsp", x, w.wv) + w.bv[None, :, None, :]

    expd = np.exp(np.einsum("bhsp,bhtp->bhst", qb, kb) / np.sqrt(w.sizes["P"]))
    attn = expd / np.sum(expd, axis=-1, keepdims=True)
    ctx = np.einsum("bhst,bhtp->bhsp", attn, vb)

    res1 = np.einsum("bhsp,hpe->bse", ctx, w.wo) + w.bo + x
    mean = np.mean(res1, axis=-1, keepdims=True)
    var = np.var(res1, axis=-1, keepdims=True)
    ln1 = (res1 - mean) / np.sqrt(var + 1e-5) * w.gamma1 + w.beta1

    h1b = np.einsum("bse,fe->bsf", ln1, w.w1) + w.b1
    act = 0.5 * h1b * (1.0 + np.tanh(_GELU_C * (h1b + 0.044715 * h1b * h1b * h1b)))
    res2 = np.einsum("bsf,ef->bse", act, w.w2) + w.b2 + ln1
    mean = np.mean(res2, axis=-1, keepdims=True)
    var = np.var(res2, axis=-1, keepdims=True)
    return (res2 - mean) / np.sqrt(var + 1e-5) * w.gamma2 + w.beta2


def encoder_fused_stage2(w: EncoderWeights) -> np.ndarray:
    """Second fusion round: combined QKV projection and in-place passes.

    The three Q/K/V projections become one matrix product over stacked
    weights; softmax and GELU update their operands in place, eliminating
    the remaining low-intensity passes over [B, SM, SM] and [B, SM, FF].
    """
    sizes = w.sizes
    b, h, sm = sizes["B"], sizes["H"], sizes["SM"]
    emb, p = sizes["EMB"], sizes["P"]
    x = w.x

    wqkv = np.concatenate(
        [w.wq.reshape(h * p, emb), w.wk.reshape(h * p, emb), w.wv.reshape(h * p, emb)],
        axis=0,
    )
    bqkv = np.concatenate(
        [w.bq.reshape(h * p), w.bk.reshape(h * p), w.bv.reshape(h * p)]
    )
    qkv = x.reshape(b * sm, emb) @ wqkv.T
    qkv += bqkv
    qkv = qkv.reshape(b, sm, 3, h, p).transpose(2, 0, 3, 1, 4)
    qb, kb, vb = qkv[0], qkv[1], qkv[2]

    attn = np.matmul(qb, kb.transpose(0, 1, 3, 2))
    attn *= 1.0 / np.sqrt(p)
    np.exp(attn, out=attn)
    attn /= np.sum(attn, axis=-1, keepdims=True)
    ctx = np.matmul(attn, vb)  # [b, h, sm, p]

    res1 = ctx.transpose(0, 2, 1, 3).reshape(b * sm, h * p) @ w.wo.reshape(h * p, emb)
    res1 += w.bo
    res1 = res1.reshape(b, sm, emb)
    res1 += x
    mean = np.mean(res1, axis=-1, keepdims=True)
    res1 -= mean
    var = np.mean(res1 * res1, axis=-1, keepdims=True)
    res1 /= np.sqrt(var + 1e-5)
    ln1 = res1
    ln1 *= w.gamma1
    ln1 += w.beta1

    h1b = ln1.reshape(b * sm, emb) @ w.w1.T
    h1b += w.b1
    inner = _GELU_C * (h1b + 0.044715 * h1b * h1b * h1b)
    np.tanh(inner, out=inner)
    inner += 1.0
    inner *= 0.5 * h1b
    res2 = inner @ w.w2.T
    res2 += w.b2
    res2 = res2.reshape(b, sm, emb)
    res2 += ln1
    mean = np.mean(res2, axis=-1, keepdims=True)
    res2 -= mean
    var = np.mean(res2 * res2, axis=-1, keepdims=True)
    res2 /= np.sqrt(var + 1e-5)
    res2 *= w.gamma2
    res2 += w.beta2
    return res2
