"""Horizontal diffusion (*hdiff*) — the local-view case study (Section VI-B).

hdiff is a stencil composition from weather/climate models.  The paper
takes the NumPy implementation from NPBench as the baseline, analyzes a
1/32-scale parameterization (I=J=8, K=5) in the local view, and applies
three optimizations informed by the visualization:

1. **reshape** — relayout ``in_field`` from ``[I+4, J+4, K]`` to
   ``[K, I+4, J+4]`` so one loop iteration's accesses are close in memory
   (Fig. 8a);
2. **reorder** — make ``k`` the outermost loop so the innermost loop walks
   the contiguous dimension (Fig. 8b);
3. **pad** — round row strides up to the cache-line size so rows are
   line-aligned (Fig. 8c).

This module provides the SDFG (one fused 3-D map, matching the paper's
"one 3-dimensional loop" representation), functions applying each tuning
step to it, and three executable NumPy variants for Table I:
:func:`hdiff_numpy_baseline` (NPBench's default NumPy),
:func:`hdiff_npbench_best` (our proxy for NPBench's best CPU framework
result — the same algorithm with the K-major layout and no redundant
temporaries) and :func:`hdiff_hand_tuned` (all three optimizations).
"""

from __future__ import annotations

import numpy as np

from repro.frontend import pmap, program
from repro.sdfg.dtypes import float64
from repro.sdfg.sdfg import SDFG
from repro.symbolic import symbols
from repro.transforms import pad_strides_to_multiple, permute_array_layout, reorder_map

__all__ = [
    "PAPER_SIZES",
    "LOCAL_VIEW_SIZES",
    "hdiff_program",
    "build_sdfg",
    "apply_reshape",
    "apply_reorder",
    "apply_padding",
    "initialize",
    "hdiff_numpy_baseline",
    "hdiff_npbench_best",
    "hdiff_hand_tuned",
    "to_kmajor",
    "from_kmajor",
]

I, J, K = symbols("I J K")

#: The evaluation sizes of the paper (NPBench "paper" preset).
PAPER_SIZES = {"I": 256, "J": 256, "K": 160}
#: The 1/32-scale local-view parameterization used in Section VI-B.
LOCAL_VIEW_SIZES = {"I": 8, "J": 8, "K": 5}

#: Cache model for the Fig. 7 miss estimates: 64-byte lines, and a
#: capacity threshold scaled down along with the 1/32-scale simulation
#: sizes (Section V-F explicitly lets the user adjust the threshold "to
#: adjust for the fact that the simulated data sizes are not equal to the
#: expected data sizes in the target environment").
FIG7_CACHE = {"line_size": 64, "capacity_lines": 4}


@program
def hdiff_program(
    in_field: float64[I + 4, J + 4, K],
    coeff: float64[I, J, K],
    out_field: float64[I, J, K],
):
    """hdiff as a single fused 3-D parallel loop (the paper's local view).

    ``lap(a, b)`` denotes the Laplacian field value whose center sits at
    ``in_field[a+1, b+1, k]``; one output point needs it at five positions.
    """
    for i, j, k in pmap(I, J, K):
        lap_ij = 4.0 * in_field[i + 1, j + 2, k] - (
            in_field[i + 2, j + 2, k] + in_field[i, j + 2, k]
            + in_field[i + 1, j + 3, k] + in_field[i + 1, j + 1, k]
        )
        lap_ipj = 4.0 * in_field[i + 2, j + 1, k] - (
            in_field[i + 3, j + 1, k] + in_field[i + 1, j + 1, k]
            + in_field[i + 2, j + 2, k] + in_field[i + 2, j, k]
        )
        lap_ipjp = 4.0 * in_field[i + 2, j + 2, k] - (
            in_field[i + 3, j + 2, k] + in_field[i + 1, j + 2, k]
            + in_field[i + 2, j + 3, k] + in_field[i + 2, j + 1, k]
        )
        lap_ipjpp = 4.0 * in_field[i + 2, j + 3, k] - (
            in_field[i + 3, j + 3, k] + in_field[i + 1, j + 3, k]
            + in_field[i + 2, j + 4, k] + in_field[i + 2, j + 2, k]
        )
        lap_ippjp = 4.0 * in_field[i + 3, j + 2, k] - (
            in_field[i + 4, j + 2, k] + in_field[i + 2, j + 2, k]
            + in_field[i + 3, j + 3, k] + in_field[i + 3, j + 1, k]
        )

        res_flx_ij = lap_ipjp - lap_ij
        # -- flux limiters (np.where in the vectorized reference) --
        flx_ij = (
            0.0
            if res_flx_ij * (in_field[i + 2, j + 2, k] - in_field[i + 1, j + 2, k]) > 0.0
            else res_flx_ij
        )
        res_flx_ipj = lap_ippjp - lap_ipjp
        flx_ipj = (
            0.0
            if res_flx_ipj * (in_field[i + 3, j + 2, k] - in_field[i + 2, j + 2, k]) > 0.0
            else res_flx_ipj
        )
        res_fly_ij = lap_ipjp - lap_ipj
        fly_ij = (
            0.0
            if res_fly_ij * (in_field[i + 2, j + 2, k] - in_field[i + 2, j + 1, k]) > 0.0
            else res_fly_ij
        )
        res_fly_ijp = lap_ipjpp - lap_ipjp
        fly_ijp = (
            0.0
            if res_fly_ijp * (in_field[i + 2, j + 3, k] - in_field[i + 2, j + 2, k]) > 0.0
            else res_fly_ijp
        )
        out_field[i, j, k] = in_field[i + 2, j + 2, k] - coeff[i, j, k] * (
            flx_ipj - flx_ij + fly_ijp - fly_ij
        )


def build_sdfg() -> SDFG:
    """A fresh hdiff SDFG in its original [I+4, J+4, K] layout."""
    return hdiff_program.to_sdfg()


# -- the three tuning steps (applied to the SDFG for Figs. 7 & 8) -----------


def apply_reshape(sdfg: SDFG) -> None:
    """Step 1: relayout ``in_field`` (and ``coeff``/``out_field``) K-major."""
    permute_array_layout(sdfg, "in_field", [2, 0, 1])
    permute_array_layout(sdfg, "coeff", [2, 0, 1])
    permute_array_layout(sdfg, "out_field", [2, 0, 1])


def apply_reorder(sdfg: SDFG) -> None:
    """Step 2: make ``k`` the outermost loop parameter."""
    for state in sdfg.states():
        for entry in state.map_entries():
            if "k" in entry.map.params:
                order = ["k"] + [p for p in entry.map.params if p != "k"]
                reorder_map(entry, order)


def apply_padding(sdfg: SDFG, line_bytes: int = 64) -> None:
    """Step 3: pad row strides to the cache-line size."""
    for name in ("in_field", "coeff", "out_field"):
        itemsize = sdfg.arrays[name].dtype.itemsize
        pad_strides_to_multiple(sdfg, name, line_bytes // itemsize)


# -- executable NumPy variants (Table I) -------------------------------------


def initialize(I: int, J: int, K: int, seed: int = 42):
    """Inputs exactly as NPBench initializes hdiff."""
    rng = np.random.default_rng(seed)
    in_field = rng.random((I + 4, J + 4, K))
    out_field = rng.random((I, J, K))
    coeff = rng.random((I, J, K))
    return in_field, out_field, coeff


def hdiff_numpy_baseline(in_field: np.ndarray, out_field: np.ndarray, coeff: np.ndarray) -> None:
    """The NPBench default NumPy implementation (verbatim algorithm).

    Allocates full-size temporaries for the Laplacian and both flux
    fields and works in the original [I+4, J+4, K] layout — the Table I
    baseline.
    """
    I = out_field.shape[0]  # noqa: E741
    J = out_field.shape[1]
    lap_field = 4.0 * in_field[1 : I + 3, 1 : J + 3, :] - (
        in_field[2 : I + 4, 1 : J + 3, :]
        + in_field[0 : I + 2, 1 : J + 3, :]
        + in_field[1 : I + 3, 2 : J + 4, :]
        + in_field[1 : I + 3, 0 : J + 2, :]
    )

    res = lap_field[1:, 1 : J + 1, :] - lap_field[:-1, 1 : J + 1, :]
    flx_field = np.where(
        (res * (in_field[2 : I + 3, 2 : J + 2, :] - in_field[1 : I + 2, 2 : J + 2, :])) > 0,
        0.0,
        res,
    )

    res = lap_field[1 : I + 1, 1:, :] - lap_field[1 : I + 1, :-1, :]
    fly_field = np.where(
        (res * (in_field[2 : I + 2, 2 : J + 3, :] - in_field[2 : I + 2, 1 : J + 2, :])) > 0,
        0.0,
        res,
    )

    out_field[:, :, :] = in_field[2 : I + 2, 2 : J + 2, :] - coeff * (
        flx_field[1:, :, :]
        - flx_field[:-1, :, :]
        + fly_field[:, 1:, :]
        - fly_field[:, :-1, :]
    )


class _ProxyWorkspace:
    """Preallocated full-size scratch buffers (K-minor layout)."""

    def __init__(self, I: int, J: int, K: int):  # noqa: E741
        self.lap = np.zeros((I + 2, J + 2, K))
        self.flx = np.zeros((I + 1, J, K))
        self.fly = np.zeros((I, J + 1, K))


_PROXY_WORKSPACES: dict[tuple[int, int, int], _ProxyWorkspace] = {}


def hdiff_npbench_best(in_field: np.ndarray, out_field: np.ndarray, coeff: np.ndarray) -> None:
    """Proxy for the best NPBench CPU result.

    NPBench's best CPU numbers come from compiling frameworks (DaCe CPU);
    the equivalent NumPy-level rewrite keeps the baseline's layout and
    algorithm but eliminates per-call temporary allocations: preallocated
    scratch buffers, in-place arithmetic and masked flux limiting instead
    of ``np.where``.
    """
    I = out_field.shape[0]  # noqa: E741
    J = out_field.shape[1]
    K = out_field.shape[2]
    ws = _PROXY_WORKSPACES.get((I, J, K))
    if ws is None:
        ws = _ProxyWorkspace(I, J, K)
        _PROXY_WORKSPACES[(I, J, K)] = ws
    lap, flx, fly = ws.lap, ws.flx, ws.fly

    np.multiply(in_field[1 : I + 3, 1 : J + 3, :], 4.0, out=lap)
    lap -= in_field[2 : I + 4, 1 : J + 3, :]
    lap -= in_field[0 : I + 2, 1 : J + 3, :]
    lap -= in_field[1 : I + 3, 2 : J + 4, :]
    lap -= in_field[1 : I + 3, 0 : J + 2, :]

    np.subtract(lap[1:, 1 : J + 1, :], lap[:-1, 1 : J + 1, :], out=flx)
    flx[
        (flx * (in_field[2 : I + 3, 2 : J + 2, :] - in_field[1 : I + 2, 2 : J + 2, :]))
        > 0
    ] = 0.0
    np.subtract(lap[1 : I + 1, 1:, :], lap[1 : I + 1, :-1, :], out=fly)
    fly[
        (fly * (in_field[2 : I + 2, 2 : J + 3, :] - in_field[2 : I + 2, 1 : J + 2, :]))
        > 0
    ] = 0.0

    np.subtract(flx[1:, :, :], flx[:-1, :, :], out=out_field)
    out_field += fly[:, 1:, :]
    out_field -= fly[:, :-1, :]
    out_field *= -coeff
    out_field += in_field[2 : I + 2, 2 : J + 2, :]


def to_kmajor(array: np.ndarray) -> np.ndarray:
    """Relayout a ``[..., K]`` field into contiguous K-major storage.

    The hand-tuned program stores its fields K-major (the paper's reshape
    optimization changes the program's data layout globally); use this to
    prepare inputs for :func:`hdiff_hand_tuned`.
    """
    return np.ascontiguousarray(array.transpose(2, 0, 1))


def from_kmajor(array: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_kmajor` (returns a [..., K] contiguous copy)."""
    return np.ascontiguousarray(array.transpose(1, 2, 0))


class _HandTunedWorkspace:
    """Preallocated cache-line-padded 2-D plane buffers (reused per size)."""

    def __init__(self, I: int, J: int, line_elems: int = 8):  # noqa: E741
        def padded(rows: int, cols: int):
            stride = -(-cols // line_elems) * line_elems
            return np.zeros((rows, stride))[:, :cols]

        self.lap = padded(I + 2, J + 2)
        self.flx = padded(I + 1, J)
        self.fly = padded(I, J + 1)
        self.gate_x = padded(I + 1, J)
        self.gate_y = padded(I, J + 1)


_WORKSPACES: dict[tuple[int, int], _HandTunedWorkspace] = {}


def hdiff_hand_tuned(
    in_field_km: np.ndarray, out_field_km: np.ndarray, coeff_km: np.ndarray
) -> None:
    """All three tuning steps: K-major layout, k-outer order, padded rows.

    Operates on **K-major** fields (``[K, I+4, J+4]`` / ``[K, I, J]``, see
    :func:`to_kmajor`): k is the outermost loop, every 2-D stencil update
    streams contiguous rows, and the scratch planes are cache-line padded
    and small enough to stay cache-resident across the k loop.
    """
    K = out_field_km.shape[0]
    I = out_field_km.shape[1]  # noqa: E741
    J = out_field_km.shape[2]
    ws = _WORKSPACES.get((I, J))
    if ws is None:
        ws = _HandTunedWorkspace(I, J)
        _WORKSPACES[(I, J)] = ws
    lap, flx, fly = ws.lap, ws.flx, ws.fly
    gate_x, gate_y = ws.gate_x, ws.gate_y

    for k in range(K):
        ink = in_field_km[k]
        np.multiply(ink[1 : I + 3, 1 : J + 3], 4.0, out=lap)
        lap -= ink[2 : I + 4, 1 : J + 3]
        lap -= ink[0 : I + 2, 1 : J + 3]
        lap -= ink[1 : I + 3, 2 : J + 4]
        lap -= ink[1 : I + 3, 0 : J + 2]

        np.subtract(lap[1:, 1 : J + 1], lap[:-1, 1 : J + 1], out=flx)
        np.subtract(ink[2 : I + 3, 2 : J + 2], ink[1 : I + 2, 2 : J + 2], out=gate_x)
        gate_x *= flx
        flx *= gate_x <= 0

        np.subtract(lap[1 : I + 1, 1:], lap[1 : I + 1, :-1], out=fly)
        np.subtract(ink[2 : I + 2, 2 : J + 3], ink[2 : I + 2, 1 : J + 2], out=gate_y)
        gate_y *= fly
        fly *= gate_y <= 0

        outk = out_field_km[k]
        np.subtract(flx[1:, :], flx[:-1, :], out=outk)
        outk += fly[:, 1:]
        outk -= fly[:, :-1]
        outk *= -coeff_km[k]
        outk += ink[2 : I + 2, 2 : J + 2]
