"""Case-study workloads (paper Section VI) and figure kernels.

- :mod:`repro.apps.bert` — the BERT encoder layer: NumPy implementations
  of the baseline and the two loop-fusion optimization stages, plus the
  SDFG used by the global-view analysis (Table I, Fig. 6).
- :mod:`repro.apps.hdiff` — horizontal diffusion: the NPBench NumPy
  baseline, the vectorized "best NPBench CPU" proxy, the hand-tuned
  variant, and the single-map SDFG the local view analyzes through its
  reshape → reorder → pad tuning steps (Table I, Figs. 7 & 8).
- :mod:`repro.apps.conv` — 2-D/3-D convolution kernels for the
  access-pattern and cache-miss figures (Figs. 4 & 5c).
- :mod:`repro.apps.linalg` — outer product and matrix multiplication
  (Figs. 3, 4c, 5a, 5b).
- :mod:`repro.apps.cloudsc` — the CLOUDSC vertical-loop extract with
  blocked ``[NBLOCKS, KLEV]`` fields: the auto-tuner's ``change_strides``
  / loop-interchange workload.
"""

from repro.apps import bert, cloudsc, conv, hdiff, linalg

__all__ = ["bert", "cloudsc", "conv", "hdiff", "linalg"]
