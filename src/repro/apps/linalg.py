"""Linear-algebra kernels used by the paper's figures.

- Outer product ``C = A ⊗ B`` (Fig. 3's parameterized view, Fig. 4c's
  related accesses).
- Matrix multiplication (Fig. 5a's cache-line overlay with a column-major
  ``B``, Fig. 5b's reuse-distance heatmap).
"""

from __future__ import annotations

import numpy as np

from repro.frontend import pmap, program
from repro.sdfg.data import Array
from repro.sdfg.dtypes import float32, float64
from repro.sdfg.sdfg import SDFG
from repro.symbolic import symbols

__all__ = [
    "outer_product_program",
    "matmul_program",
    "build_outer_product",
    "build_matmul",
    "build_fig5_matmul",
]

I, J, K = symbols("I J K")
M, N = symbols("M N")


@program
def outer_product_program(A: float64[M], B: float64[N], C: float64[M, N]):
    """C[i, j] = A[i] * B[j] — the paper's running example (Fig. 3)."""
    for i, j in pmap(M, N):
        C[i, j] = A[i] * B[j]


@program
def matmul_program(A: float32[I, K], B: float32[K, J], C: float32[I, J]):
    """Classic i-j-k matrix multiplication with sum accumulation."""
    for i, j, k in pmap(I, J, K):
        C[i, j] += A[i, k] * B[k, j]


def build_outer_product() -> SDFG:
    """Fresh outer-product SDFG (symbolic sizes M, N)."""
    return outer_product_program.to_sdfg()


def build_matmul() -> SDFG:
    """Fresh matmul SDFG (symbolic sizes I, J, K; float32 elements)."""
    return matmul_program.to_sdfg()


def build_fig5_matmul() -> SDFG:
    """The exact Fig. 5a configuration.

    ``A ∈ R^{9×10}`` and ``C ∈ R^{9×15}`` row-major, ``B ∈ R^{10×15}``
    **column-major**, 4-byte values — selecting elements with a 64-byte
    cache-line overlay reveals the differing layouts.
    """
    sdfg = build_matmul()
    b = sdfg.arrays["B"]
    assert isinstance(b, Array)
    sdfg.replace_descriptor(
        "B",
        Array(b.dtype, b.shape, strides=Array.f_strides(b.shape), alignment=64),
    )
    # Line-align every container so the overlay shows each layout cleanly.
    for name in ("A", "C"):
        desc = sdfg.arrays[name]
        assert isinstance(desc, Array)
        sdfg.replace_descriptor(
            name, Array(desc.dtype, desc.shape, strides=desc.strides, alignment=64)
        )
    return sdfg


def reference_outer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """NumPy oracle for the outer product."""
    return np.outer(a, b)


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """NumPy oracle for matmul."""
    return a @ b
