"""Python frontend: translate restricted Python functions into SDFGs.

The paper relies on the DaCe frontends to lift Python/C programs into the
SDFG IR.  This subpackage implements the equivalent for the program class
the paper's analyses target — *affine array programs*: parallel loops
(``pmap``) whose bodies assign array elements indexed by affine expressions
of the loop parameters.

Usage::

    import repro
    from repro.sdfg.dtypes import float64
    from repro.symbolic import symbols

    I, J = symbols("I J")

    @repro.program
    def outer(A: float64[I], B: float64[J], C: float64[I, J]):
        for i, j in repro.pmap(I, J):
            C[i, j] = A[i] * B[j]

    sdfg = outer.to_sdfg()
"""

from repro.frontend.program import Program, pmap, program, transient

__all__ = ["program", "pmap", "Program", "transient"]
