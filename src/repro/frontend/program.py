"""The ``@program`` decorator and the ``pmap`` iteration marker."""

from __future__ import annotations

import functools
import inspect
import textwrap
from typing import Any, Callable, Mapping

from repro.errors import FrontendError
from repro.sdfg.sdfg import SDFG

__all__ = ["pmap", "program", "Program", "transient", "TransientAnnotation"]


class TransientAnnotation:
    """Marks a parameter as a program-managed intermediate array.

    Transient parameters are allocated by the program itself — callers do
    not pass them, and fusion transformations may eliminate them entirely.
    Produced by :func:`transient`.
    """

    __slots__ = ("dtype", "shape")

    def __init__(self, dtype, shape):
        self.dtype = dtype
        self.shape = shape


def transient(annotation) -> TransientAnnotation:
    """Wrap a ``dtype[shape]`` annotation to declare a transient array.

    Example::

        @program
        def f(A: float64[I], tmp: transient(float64[I]), B: float64[I]):
            ...
    """
    if not (isinstance(annotation, tuple) and len(annotation) == 2):
        raise FrontendError("transient() expects a dtype[shape] annotation")
    return TransientAnnotation(annotation[0], annotation[1])


def pmap(*bounds, **named_bounds):
    """Marker for a parametric parallel loop inside a ``@program`` function.

    Never executed: the frontend recognizes ``for i, j in pmap(...)``
    syntactically.  Each positional argument gives one dimension's
    iteration range:

    - an expression ``E`` → range ``0:E``;
    - a 2-tuple ``(b, e)`` → range ``b:e`` (end exclusive);
    - a 3-tuple ``(b, e, s)`` → strided range;
    - a string ``"b:e"`` or ``"b:e:s"``.

    Keyword arguments name the parameters explicitly (``pmap(i=I, j=J)``);
    positional arguments take their names from the loop target.
    """
    raise FrontendError(
        "pmap() is a frontend marker and may only appear as the iterator of "
        "a for-loop inside a @program-decorated function"
    )


class Program:
    """A parsed ``@program`` function.

    Lazily translates to an SDFG (cached) and can be called directly with
    NumPy arrays, which compiles the SDFG through the NumPy code generator
    and executes it.
    """

    def __init__(self, func: Callable):
        self.func = func
        self.name = func.__name__
        functools.update_wrapper(self, func)
        try:
            source = inspect.getsource(func)
        except (OSError, TypeError) as exc:
            raise FrontendError(
                f"cannot retrieve source of {self.name!r}; @program requires "
                "source availability"
            ) from exc
        self.source = textwrap.dedent(source)
        self._sdfg: SDFG | None = None

    def to_sdfg(self, validate: bool = True, copy: bool = True) -> SDFG:
        """Translate the function into an SDFG.

        Parsing happens once and is cached; by default every call returns
        an independent **copy**, so callers (e.g. transformations) can
        mutate the result freely.  Pass ``copy=False`` to share the cached
        instance for read-only use.
        """
        if self._sdfg is None:
            from repro.frontend.parser import parse_program

            sdfg = parse_program(self)
            if validate:
                sdfg.validate()
            self._sdfg = sdfg
        return self._sdfg.copy() if copy else self._sdfg

    def compile(self, symbols: Mapping[str, int] | None = None):
        """Compile to an executable via the NumPy code generator."""
        from repro.codegen import compile_sdfg

        return compile_sdfg(self.to_sdfg(), symbols=symbols)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        """Execute the program on NumPy arrays (compiles on first use)."""
        from repro.codegen import call_sdfg

        return call_sdfg(self.to_sdfg(), *args, **kwargs)

    def __repr__(self) -> str:
        return f"Program({self.name})"


def program(func: Callable) -> Program:
    """Decorator: parse *func* as an affine array program.

    Array parameters are annotated with ``dtype[shape...]`` (e.g.
    ``float64[I, J]``); scalar parameters with a bare dtype.  The function
    body consists of ``for ... in pmap(...)`` loops whose statements assign
    array elements (``C[i, j] = ...``), accumulate with write-conflict
    resolution (``C[i, j] += ...``) or define per-iteration locals
    (``tmp = ...``).
    """
    if not callable(func):
        raise FrontendError("@program expects a function")
    return Program(func)
