"""AST helpers shared by the frontend parser and the op-count analysis."""

from __future__ import annotations

import ast

from repro.errors import FrontendError
from repro.symbolic.expr import Expr
from repro.symbolic.parser import parse_expr

__all__ = [
    "ALLOWED_CALLS",
    "index_expressions",
    "subscript_data_name",
    "unparse",
]

#: Intrinsic functions allowed inside tasklet code.  They map 1:1 to NumPy
#: ufuncs in the code generator and are counted as arithmetic operations by
#: the op-count analysis.
ALLOWED_CALLS = frozenset(
    {
        "abs",
        "min",
        "max",
        "sqrt",
        "exp",
        "log",
        "sin",
        "cos",
        "tanh",
        "erf",
        "floor",
        "ceil",
    }
)


def unparse(node: ast.AST) -> str:
    """Source form of an AST node."""
    return ast.unparse(node)


def subscript_data_name(node: ast.Subscript) -> str:
    """The container name of ``A[...]``; rejects computed bases."""
    if not isinstance(node.value, ast.Name):
        raise FrontendError(
            f"only direct array subscripts are supported, got {unparse(node)!r}"
        )
    return node.value.id


def index_expressions(node: ast.Subscript) -> tuple[Expr, ...]:
    """Per-dimension symbolic index expressions of ``A[i, 2*j+1, 0]``.

    The indices must be affine expressions over loop parameters and size
    symbols; slices are not allowed inside tasklet expressions (element-wise
    access only).
    """
    index = node.slice
    dims = index.elts if isinstance(index, ast.Tuple) else [index]
    out = []
    for dim in dims:
        if isinstance(dim, ast.Slice):
            raise FrontendError(
                f"slice indices are not supported in tasklet expressions: "
                f"{unparse(node)!r}"
            )
        try:
            out.append(parse_expr(unparse(dim)))
        except Exception as exc:  # noqa: BLE001 — converted to FrontendError
            raise FrontendError(
                f"index {unparse(dim)!r} in {unparse(node)!r} is not an "
                f"affine expression: {exc}"
            ) from exc
    return tuple(out)
