"""AST → SDFG translation for ``@program`` functions."""

from __future__ import annotations

import ast
import itertools
from typing import TYPE_CHECKING

from repro.errors import FrontendError
from repro.frontend.astutils import ALLOWED_CALLS, index_expressions, subscript_data_name, unparse
from repro.sdfg import dtypes
from repro.sdfg.data import Array, Scalar
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit
from repro.sdfg.propagation import propagate_memlet, subset_union
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.expr import add as sym_add
from repro.symbolic.parser import parse_expr
from repro.symbolic.ranges import Range, Subset

if TYPE_CHECKING:  # pragma: no cover
    from repro.frontend.program import Program

__all__ = ["parse_program"]

_AUGOPS = {ast.Add: "sum", ast.Mult: "product"}


def parse_program(prog: "Program") -> SDFG:
    """Translate a :class:`~repro.frontend.program.Program` into an SDFG."""
    tree = ast.parse(prog.source)
    funcdef = next(
        (n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
        None,
    )
    if funcdef is None:
        raise FrontendError(f"no function definition found in {prog.name!r}")
    sdfg = SDFG(prog.name)
    _declare_arguments(sdfg, funcdef, prog)
    state = sdfg.add_state("main")
    ctx = _StateContext(sdfg, state)
    for stmt in funcdef.body:
        ctx.parse_toplevel(stmt)
    return sdfg


def _declare_arguments(sdfg: SDFG, funcdef: ast.FunctionDef, prog: "Program") -> None:
    """Register function parameters as containers from their annotations."""
    func = prog.func
    closure: dict[str, object] = dict(func.__globals__)
    if func.__closure__:
        closure.update(
            {
                name: cell.cell_contents
                for name, cell in zip(func.__code__.co_freevars, func.__closure__)
            }
        )
    args = funcdef.args
    if args.kwonlyargs or args.vararg or args.kwarg or args.posonlyargs:
        raise FrontendError(
            f"{prog.name!r}: only plain positional parameters are supported"
        )
    for arg in args.args:
        if arg.annotation is None:
            raise FrontendError(
                f"parameter {arg.arg!r} of {prog.name!r} needs a dtype[shape] "
                "annotation"
            )
        try:
            annotation = eval(  # noqa: S307 - annotations are trusted source
                compile(ast.Expression(arg.annotation), filename="<annotation>", mode="eval"),
                closure,
            )
        except Exception as exc:  # noqa: BLE001 — converted to FrontendError
            raise FrontendError(
                f"cannot evaluate annotation of parameter {arg.arg!r}: {exc}"
            ) from exc
        from repro.frontend.program import TransientAnnotation

        if isinstance(annotation, TransientAnnotation):
            sdfg.add_transient(arg.arg, list(annotation.shape), annotation.dtype)
        elif isinstance(annotation, dtypes.Dtype):
            sdfg.add_scalar(arg.arg, annotation)
        elif (
            isinstance(annotation, tuple)
            and len(annotation) == 2
            and isinstance(annotation[0], dtypes.Dtype)
        ):
            dtype, shape = annotation
            sdfg.add_array(arg.arg, list(shape), dtype)
        else:
            raise FrontendError(
                f"parameter {arg.arg!r}: annotation must be a dtype or "
                f"dtype[shape], got {annotation!r}"
            )


class _StateContext:
    """Tracks access-node versions while statements extend one state."""

    def __init__(self, sdfg: SDFG, state: SDFGState):
        self.sdfg = sdfg
        self.state = state
        #: Latest access node per container (dataflow versioning).
        self.latest: dict[str, AccessNode] = {}
        self._tmp_counter = itertools.count()

    # -- access-node versioning ------------------------------------------------
    def read_node(self, data: str) -> AccessNode:
        node = self.latest.get(data)
        if node is None:
            node = self.state.add_access(data)
            self.latest[data] = node
        return node

    def write_node(self, data: str) -> AccessNode:
        node = self.state.add_access(data)
        self.latest[data] = node
        return node

    def fresh_name(self, hint: str) -> str:
        while True:
            name = f"__{hint}_{next(self._tmp_counter)}"
            if name not in self.sdfg.arrays:
                return name

    # -- top-level statements ----------------------------------------------------
    def parse_toplevel(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return  # docstring
        if isinstance(stmt, ast.Pass):
            return
        if isinstance(stmt, ast.For):
            self._parse_pmap(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise FrontendError(
                    "@program functions return through their array parameters; "
                    "'return <value>' is not supported"
                )
            return
        raise FrontendError(
            f"unsupported top-level statement: {unparse(stmt)!r} (only "
            "'for ... in pmap(...)' loops are allowed)"
        )

    # -- pmap loops ----------------------------------------------------------------
    def _parse_pmap(self, stmt: ast.For) -> None:
        params = self._loop_params(stmt.target)
        ranges = self._pmap_ranges(stmt.iter, params)
        if stmt.orelse:
            raise FrontendError("for/else is not supported on pmap loops")
        for p in params:
            if p in self.sdfg.arrays:
                raise FrontendError(
                    f"loop parameter {p!r} shadows a container of the same name"
                )

        label = f"map_{len(self.state.map_entries())}"
        entry, exit_ = self.state.add_map(label, dict(zip(params, ranges)))
        body = _MapBodyParser(self, entry, exit_, params)
        for inner in stmt.body:
            body.parse_statement(inner)
        body.finalize()

    def _loop_params(self, target: ast.expr) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, ast.Tuple) and all(
            isinstance(e, ast.Name) for e in target.elts
        ):
            return [e.id for e in target.elts]  # type: ignore[union-attr]
        raise FrontendError(
            f"pmap loop target must be a name or tuple of names, got "
            f"{unparse(target)!r}"
        )

    def _pmap_ranges(self, iter_node: ast.expr, params: list[str]) -> list[Range]:
        call = iter_node
        if not isinstance(call, ast.Call):
            raise FrontendError(
                f"for-loops must iterate over pmap(...), got {unparse(iter_node)!r}"
            )
        func = call.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if func_name != "pmap":
            raise FrontendError(
                f"for-loops must iterate over pmap(...), got call to {func_name!r}"
            )
        bounds: list[ast.expr] = list(call.args)
        if call.keywords:
            names = [kw.arg for kw in call.keywords]
            if bounds or names != params:
                raise FrontendError(
                    "pmap keyword arguments must match the loop target names "
                    f"exactly (expected {params}, got {names})"
                )
            bounds = [kw.value for kw in call.keywords]
        if len(bounds) != len(params):
            raise FrontendError(
                f"pmap has {len(bounds)} dimensions but the loop target binds "
                f"{len(params)} names"
            )
        return [self._bound_to_range(b) for b in bounds]

    def _bound_to_range(self, node: ast.expr) -> Range:
        if isinstance(node, ast.Tuple):
            parts = [parse_expr(unparse(e)) for e in node.elts]
            if len(parts) == 2:
                return Range(parts[0], sym_add(parts[1], -1))
            if len(parts) == 3:
                return Range(parts[0], sym_add(parts[1], -1), parts[2])
            raise FrontendError(
                f"pmap tuple bound must have 2 or 3 entries, got {unparse(node)!r}"
            )
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return Range.from_string(node.value)
        try:
            end = parse_expr(unparse(node))
        except Exception as exc:  # noqa: BLE001 — converted to FrontendError
            raise FrontendError(
                f"invalid pmap bound {unparse(node)!r}: {exc}"
            ) from exc
        return Range(0, sym_add(end, -1))


class _MapBodyParser:
    """Parses the statements inside one pmap scope."""

    def __init__(
        self,
        ctx: _StateContext,
        entry: MapEntry,
        exit_: MapExit,
        params: list[str],
    ):
        self.ctx = ctx
        self.state = ctx.state
        self.sdfg = ctx.sdfg
        self.entry = entry
        self.exit = exit_
        self.params = set(params)
        #: local name -> (container name, access node producing it)
        self.locals: dict[str, tuple[str, AccessNode]] = {}
        #: per container: list of inner read memlets (for outer aggregation)
        self.reads: dict[str, list[Memlet]] = {}
        self.writes: dict[str, list[Memlet]] = {}
        #: tasklets created by this body (to attach scope-keeping edges)
        self.tasklets: list = []

    # -- statements -----------------------------------------------------------
    def parse_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise FrontendError(
                    f"multiple assignment targets are not supported: "
                    f"{unparse(stmt)!r}"
                )
            self._parse_assign(stmt.targets[0], stmt.value, wcr=None)
            return
        if isinstance(stmt, ast.AugAssign):
            wcr = _AUGOPS.get(type(stmt.op))
            if wcr is None:
                raise FrontendError(
                    f"unsupported accumulation operator in {unparse(stmt)!r} "
                    "(only += and *= map to write-conflict resolution)"
                )
            if not isinstance(stmt.target, ast.Subscript):
                raise FrontendError(
                    f"accumulation requires an array element target: "
                    f"{unparse(stmt)!r}"
                )
            self._parse_assign(stmt.target, stmt.value, wcr=wcr)
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return  # stray docstring/comment expression
        raise FrontendError(
            f"unsupported statement inside pmap: {unparse(stmt)!r}"
        )

    def _parse_assign(self, target: ast.expr, value: ast.expr, wcr: str | None) -> None:
        builder = _TaskletBuilder(self)
        code_rhs = builder.rewrite(value)

        if isinstance(target, ast.Subscript):
            data = subscript_data_name(target)
            if data not in self.sdfg.arrays:
                raise FrontendError(f"assignment to undefined container {data!r}")
            indices = index_expressions(target)
            desc = self.sdfg.arrays[data]
            if len(indices) != len(desc.shape):
                raise FrontendError(
                    f"{data!r} has rank {len(desc.shape)} but is indexed with "
                    f"{len(indices)} indices"
                )
            tasklet_name = f"{data}_write_{len(self.state.tasklets())}"
            tasklet = self.state.add_tasklet(
                tasklet_name, sorted(builder.connectors), ["_out"], f"_out = {code_rhs}"
            )
            self.tasklets.append(tasklet)
            builder.wire_inputs(tasklet)
            memlet = Memlet(data, Subset.from_indices(list(indices)), wcr=wcr)
            self.state.add_edge(tasklet, "_out", self.exit, f"IN_{data}", memlet)
            self.exit.add_out_connector(f"OUT_{data}")
            self.writes.setdefault(data, []).append(memlet)
            return

        if isinstance(target, ast.Name):
            if wcr is not None:
                raise FrontendError("accumulation into locals is not supported")
            name = target.id
            if name in self.params:
                raise FrontendError(f"cannot assign to loop parameter {name!r}")
            container = self.ctx.fresh_name(name)
            self.sdfg.add_scalar(container, self._local_dtype(), transient=True)
            tasklet = self.state.add_tasklet(
                f"{name}_def_{len(self.state.tasklets())}",
                sorted(builder.connectors),
                ["_out"],
                f"_out = {code_rhs}",
            )
            self.tasklets.append(tasklet)
            builder.wire_inputs(tasklet)
            access = self.state.add_access(container)
            self.state.add_edge(tasklet, "_out", access, None, Memlet(container))
            self.locals[name] = (container, access)
            return

        raise FrontendError(f"unsupported assignment target {unparse(target)!r}")

    def _local_dtype(self) -> dtypes.Dtype:
        """Element type for body locals: widest floating type in use."""
        for desc in self.sdfg.arrays.values():
            if desc.dtype.is_floating:
                return desc.dtype
        return dtypes.float64

    # -- scope closing -----------------------------------------------------------
    def finalize(self) -> None:
        """Create the aggregated outer edges once the body is parsed."""
        for data, memlets in self.reads.items():
            propagated = [propagate_memlet(m, self.entry.map) for m in memlets]
            subset = propagated[0].subset
            for p in propagated[1:]:
                subset = subset_union(subset, p.subset)
            volume = propagated[0].volume()
            for p in propagated[1:]:
                volume = sym_add(volume, p.volume())
            outer = Memlet(data, subset, volume_hint=volume)
            src = self.ctx.read_node(data)
            self.entry.add_out_connector(f"OUT_{data}")
            self.state.add_edge(src, None, self.entry, f"IN_{data}", outer)
        for data, memlets in self.writes.items():
            propagated = [propagate_memlet(m, self.entry.map) for m in memlets]
            subset = propagated[0].subset
            for p in propagated[1:]:
                subset = subset_union(subset, p.subset)
            volume = propagated[0].volume()
            for p in propagated[1:]:
                volume = sym_add(volume, p.volume())
            wcr = memlets[0].wcr
            outer = Memlet(data, subset, wcr=wcr, volume_hint=volume)
            dst = self.ctx.write_node(data)
            self.state.add_edge(self.exit, f"OUT_{data}", dst, None, outer)
        # Keep computation attached to the scope even without data inputs
        # (e.g. `C[i, j] = 0`): an empty ordering edge from the entry.
        for tasklet in self.tasklets:
            if not self.state.in_edges(tasklet):
                self.state.add_edge(self.entry, None, tasklet, None, None)


class _TaskletBuilder(ast.NodeTransformer):
    """Rewrites an expression AST into tasklet code, collecting inputs."""

    def __init__(self, body: _MapBodyParser):
        self.body = body
        self.connectors: set[str] = set()
        #: connector -> ("array", data, indices) or ("local", container, node)
        self.bindings: dict[str, tuple] = {}
        self._array_conns: dict[tuple, str] = {}

    def rewrite(self, node: ast.expr) -> str:
        return unparse(self.visit(_copy_ast(node)))

    # -- visitors -------------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        data = subscript_data_name(node)
        if data not in self.body.sdfg.arrays:
            raise FrontendError(f"read of undefined container {data!r}")
        indices = index_expressions(node)
        key = (data, indices)
        conn = self._array_conns.get(key)
        if conn is None:
            conn = f"_in_{data}_{len(self._array_conns)}"
            self._array_conns[key] = conn
            self.connectors.add(conn)
            self.bindings[conn] = ("array", data, indices)
        return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), node)

    def visit_Name(self, node: ast.Name) -> ast.AST:
        name = node.id
        if name in self.body.params:
            return node  # loop parameter: a runtime value in the tasklet
        if name in self.body.locals:
            conn = f"_inl_{name}"
            if conn not in self.connectors:
                self.connectors.add(conn)
                container, access = self.body.locals[name]
                self.bindings[conn] = ("local", container, access)
            return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), node)
        if name in self.body.sdfg.arrays:
            desc = self.body.sdfg.arrays[name]
            if isinstance(desc, Array):
                raise FrontendError(
                    f"array {name!r} used without subscript in a tasklet "
                    "expression"
                )
            conn = f"_in_{name}"
            if conn not in self.connectors:
                self.connectors.add(conn)
                self.bindings[conn] = ("scalar", name)
            return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), node)
        if name in self.body.sdfg.symbols or name in ALLOWED_CALLS:
            return node
        raise FrontendError(f"unknown name {name!r} in tasklet expression")

    def visit_Call(self, node: ast.Call) -> ast.AST:
        if not isinstance(node.func, ast.Name) or node.func.id not in ALLOWED_CALLS:
            raise FrontendError(
                f"call to {unparse(node.func)!r} is not allowed in tasklet "
                f"expressions (allowed: {sorted(ALLOWED_CALLS)})"
            )
        node.args = [self.visit(a) for a in node.args]
        return node

    def generic_visit(self, node: ast.AST) -> ast.AST:
        allowed = (
            ast.BinOp,
            ast.UnaryOp,
            ast.Constant,
            ast.IfExp,
            ast.Compare,
            ast.BoolOp,
            ast.operator,
            ast.unaryop,
            ast.cmpop,
            ast.boolop,
            ast.expr_context,
        )
        if not isinstance(node, allowed):
            raise FrontendError(
                f"unsupported syntax in tasklet expression: {unparse(node)!r}"
            )
        return super().generic_visit(node)

    # -- wiring ------------------------------------------------------------------
    def wire_inputs(self, tasklet) -> None:
        state = self.body.state
        entry = self.body.entry
        for conn in sorted(self.connectors):
            binding = self.bindings[conn]
            if binding[0] == "array":
                _, data, indices = binding
                memlet = Memlet(data, Subset.from_indices(list(indices)))
                entry.add_in_connector(f"IN_{data}")
                state.add_edge(entry, f"OUT_{data}", tasklet, conn, memlet)
                self.body.reads.setdefault(data, []).append(memlet)
            elif binding[0] == "scalar":
                _, name = binding
                memlet = Memlet(name)
                entry.add_in_connector(f"IN_{name}")
                state.add_edge(entry, f"OUT_{name}", tasklet, conn, memlet)
                self.body.reads.setdefault(name, []).append(memlet)
            else:  # local
                _, container, access = binding
                state.add_edge(access, None, tasklet, conn, Memlet(container))


def _copy_ast(node: ast.expr) -> ast.expr:
    """Deep-copy an expression AST so rewriting never mutates the source tree."""
    return ast.parse(unparse(node), mode="eval").body
