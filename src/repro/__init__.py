"""repro — data-movement performance analysis and visualization.

Reproduction of "Boosting Performance Optimization with Interactive Data
Movement Visualization" (Schaad, Ben-Nun, Hoefler; SC 2022) as a pure-Python
library: an SDFG-like dataflow IR, static data-movement / arithmetic-
intensity analyses (the paper's *global view*), a parameterized access-
pattern simulation engine with cache-locality estimation (the *local view*),
and SVG/HTML renderers for every visual encoding the paper describes.

Quickstart
----------
>>> import repro
>>> @repro.program
... def outer(A: repro.float64[3], B: repro.float64[4], C: repro.float64[3, 4]):
...     for i, j in repro.pmap(3, 4):
...         C[i, j] = A[i] * B[j]
>>> sdfg = outer.to_sdfg()
>>> session = repro.Session(sdfg)
>>> report = session.global_view().movement_heatmap()
"""

from repro.version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light and avoid import cycles.
    from importlib import import_module

    lazy = {
        # symbolic
        "Symbol": ("repro.symbolic", "Symbol"),
        "symbols": ("repro.symbolic", "symbols"),
        "parse_expr": ("repro.symbolic", "parse_expr"),
        "Range": ("repro.symbolic", "Range"),
        "Subset": ("repro.symbolic", "Subset"),
        # sdfg
        "SDFG": ("repro.sdfg", "SDFG"),
        "Memlet": ("repro.sdfg", "Memlet"),
        "Array": ("repro.sdfg", "Array"),
        "Scalar": ("repro.sdfg", "Scalar"),
        "dtypes": ("repro.sdfg", "dtypes"),
        "float32": ("repro.sdfg.dtypes", "float32"),
        "float64": ("repro.sdfg.dtypes", "float64"),
        "int32": ("repro.sdfg.dtypes", "int32"),
        "int64": ("repro.sdfg.dtypes", "int64"),
        # frontend
        "program": ("repro.frontend", "program"),
        "pmap": ("repro.frontend", "pmap"),
        # tool
        "Session": ("repro.tool", "Session"),
    }
    if name in lazy:
        module, attr = lazy[name]
        return getattr(import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
