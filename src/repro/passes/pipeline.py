"""The pass scheduler: topological ordering, memoization, observability.

A :class:`Pipeline` owns a registry of :class:`~repro.passes.base.Pass`
instances and answers product queries (:meth:`Pipeline.run`) by resolving
the dependency closure in topological order, serving every sub-result
from the content-addressed :class:`~repro.passes.store.ResultStore` when
its key is present and recomputing it otherwise.

Every pass execution is wrapped in a ``pass:<name>`` span of the
attached :class:`~repro.obs.trace.Tracer` and counted in the attached
:class:`~repro.obs.metrics.MetricsRegistry` (``pass.<name>.runs`` /
``.hits`` / ``.misses``), so a session can *prove* which passes re-ran
after an edit.  On every recomputation the scheduler diffs the pass's
content components against its previous run and records a human-readable
:class:`InvalidationRecord` — the ``--explain-cache`` / ``pass_report()``
payload.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from typing import Any, Hashable, Iterable

from repro.errors import PipelineError
from repro.passes.base import Pass, PassContext
from repro.passes.store import ResultStore

__all__ = ["InvalidationRecord", "Pipeline"]

#: Human-readable descriptions of fingerprint components, for reports.
_COMPONENT_TEXT = {
    "scope": "session scope (program reloaded)",
    "state": "state graph content changed",
    "states": "state graph content changed",
    "sdfg": "SDFG content changed",
    "arrays": "data descriptors changed",
    "arrays.logical": "logical data descriptors changed",
    "env": "symbol values changed",
    "sim": "simulation configuration changed",
    "line": "cache-line size changed",
    "capacity": "cache capacity changed",
}


class InvalidationRecord:
    """Why one pass re-executed instead of serving its cached result."""

    __slots__ = ("pass_name", "reasons", "transforms")

    def __init__(
        self,
        pass_name: str,
        reasons: tuple[str, ...],
        transforms: tuple[str, ...] = (),
    ):
        self.pass_name = pass_name
        self.reasons = reasons
        self.transforms = transforms

    def describe(self) -> str:
        text = "; ".join(self.reasons)
        if self.transforms:
            text += f" (after {', '.join(self.transforms)})"
        return text

    def __repr__(self) -> str:
        return f"InvalidationRecord({self.pass_name!r}: {self.describe()})"


class _LazyInputs:
    """Dependency mapping that computes a product only when subscripted.

    Passing this instead of an eagerly materialized dict lets a pass
    short-circuit expensive dependencies: e.g. ``local.classify`` served
    by the analytic locality product never forces the enumeration chain
    (trace → layout → stackdist) to run.  Results are memoized so a pass
    reading the same input twice observes one value.
    """

    __slots__ = ("_pipeline", "_ctx", "_deps", "_memo")

    def __init__(self, pipeline: Pipeline, ctx: PassContext, deps: tuple[str, ...]):
        self._pipeline = pipeline
        self._ctx = ctx
        self._deps = deps
        self._memo: dict[str, Any] = {}

    def __getitem__(self, dep: str) -> Any:
        if dep not in self._deps:
            raise KeyError(dep)
        try:
            return self._memo[dep]
        except KeyError:
            value = self._pipeline.run(dep, self._ctx)
            self._memo[dep] = value
            return value

    def __contains__(self, dep: str) -> bool:
        return dep in self._deps

    def __iter__(self):
        return iter(self._deps)

    def __len__(self) -> int:
        return len(self._deps)

    def keys(self):
        # Mapping protocol: lets ``dict(inputs)`` (and ``**inputs``)
        # materialize every dependency, matching the old eager behavior.
        return self._deps

    def get(self, dep: str, default: Any = None) -> Any:
        try:
            return self[dep]
        except KeyError:
            return default


class Pipeline:
    """Topologically scheduled, content-memoized pass execution."""

    def __init__(
        self,
        passes: Iterable[Pass] = (),
        store: ResultStore | None = None,
        tracer=None,
        metrics=None,
        history: int = 128,
    ):
        self._passes: dict[str, Pass] = {}
        self.store = store if store is not None else ResultStore()
        self.tracer = tracer
        self.metrics = metrics
        self._last_fingerprint: dict[str, dict[str, Hashable]] = {}
        self._invalidations: deque[InvalidationRecord] = deque(maxlen=history)
        #: (sequence number, transform description) of reported transforms.
        self._transforms: deque[tuple[int, str]] = deque(maxlen=history)
        self._events = 0
        self._last_seen_event: dict[str, int] = {}
        for p in passes:
            self.register(p)

    # -- registry ----------------------------------------------------------
    def register(self, pass_: Pass) -> Pass:
        if not pass_.name:
            raise PipelineError(f"pass {pass_!r} declares no product name")
        if pass_.name in self._passes:
            raise PipelineError(f"product {pass_.name!r} is already registered")
        self._passes[pass_.name] = pass_
        return pass_

    def __contains__(self, product: str) -> bool:
        return product in self._passes

    def passes(self) -> list[Pass]:
        return list(self._passes.values())

    def order(self) -> list[Pass]:
        """All registered passes in dependency (topological) order."""
        indegree: dict[str, int] = {}
        consumers: dict[str, list[str]] = {}
        for name, pass_ in self._passes.items():
            indegree.setdefault(name, 0)
            for dep in pass_.depends_on:
                if dep not in self._passes:
                    raise PipelineError(
                        f"pass {name!r} depends on unregistered product {dep!r}"
                    )
                indegree[name] = indegree.get(name, 0) + 1
                consumers.setdefault(dep, []).append(name)
        ready = deque(
            name for name in self._passes if indegree.get(name, 0) == 0
        )
        ordered: list[Pass] = []
        while ready:
            name = ready.popleft()
            ordered.append(self._passes[name])
            for consumer in consumers.get(name, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(ordered) != len(self._passes):
            cyclic = sorted(set(self._passes) - {p.name for p in ordered})
            raise PipelineError(f"dependency cycle among passes {cyclic}")
        return ordered

    # -- keys --------------------------------------------------------------
    def key(self, product: str, ctx: PassContext) -> tuple:
        """The content key of *product* under *ctx*.

        Pure in the context's content: computable without running any
        pass, so callers (e.g. the parallel sweep) can address results
        they obtained elsewhere.  Keys compose recursively — a pass's key
        embeds its dependencies' keys — making the store content-addressed
        through the whole dependency chain.
        """
        memo = ctx._components.setdefault("__keys__", {})  # type: ignore[call-overload]
        try:
            return memo[product]
        except KeyError:
            pass
        pass_ = self._resolve(product)
        fingerprint = tuple(sorted(pass_.fingerprint(ctx).items()))
        deps = tuple(self.key(dep, ctx) for dep in pass_.depends_on)
        key = (product, fingerprint, deps)
        memo[product] = key
        return key

    def _resolve(self, product: str) -> Pass:
        try:
            return self._passes[product]
        except KeyError:
            raise PipelineError(
                f"unknown product {product!r}; registered: "
                f"{sorted(self._passes)}"
            ) from None

    # -- execution ---------------------------------------------------------
    def run(self, product: str, ctx: PassContext) -> Any:
        """The product's value under *ctx*, computed or served from cache."""
        pass_ = self._resolve(product)
        key = self.key(product, ctx)
        value = self.store.get(key)
        if not ResultStore.is_miss(value):
            self._count(f"pass.{product}.hits")
            return value
        inputs = _LazyInputs(self, ctx, pass_.depends_on)
        self._record_invalidation(pass_, ctx, key)
        span = (
            self.tracer.span(f"pass:{product}")
            if self.tracer is not None
            else nullcontext()
        )
        with span:
            value = pass_.run(ctx, inputs)
        self.store.put(key, value)
        self._count(f"pass.{product}.runs")
        self._count(f"pass.{product}.misses")
        self._last_fingerprint[product] = dict(pass_.fingerprint(ctx))
        self._last_fingerprint[f"{product}@deps"] = {
            dep: self.key(dep, ctx) for dep in pass_.depends_on
        }
        self._last_seen_event[product] = self._events
        return value

    def runs(self, product: str) -> int:
        """How many times *product* actually executed (not cache hits)."""
        if self.metrics is None:
            raise PipelineError("pipeline has no metrics registry attached")
        return self.metrics.counter(f"pass.{product}.runs").value

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- invalidation accounting -------------------------------------------
    def note_transform(self, description: str) -> None:
        """Record an applied transform (for ``--explain-cache`` output).

        Correctness never depends on this call — content keys invalidate
        by construction — but reports can then attribute recomputation to
        the transform that caused it.
        """
        self._events += 1
        self._transforms.append((self._events, description))

    def _record_invalidation(
        self, pass_: Pass, ctx: PassContext, key: tuple
    ) -> None:
        previous = self._last_fingerprint.get(pass_.name)
        current = pass_.fingerprint(ctx)
        if previous is None:
            reasons: tuple[str, ...] = ("first run",)
        else:
            changed = sorted(
                component
                for component in set(previous) | set(current)
                if previous.get(component) != current.get(component)
            )
            reasons = tuple(
                _COMPONENT_TEXT.get(c, f"component {c!r} changed")
                for c in changed
            )
            prev_deps = self._last_fingerprint.get(f"{pass_.name}@deps", {})
            dep_reasons = tuple(
                f"upstream pass {dep!r} recomputed"
                for dep in pass_.depends_on
                if prev_deps.get(dep) != self.key(dep, ctx)
            )
            reasons += dep_reasons
            if not reasons:
                reasons = ("result evicted from the store",)
        since = self._last_seen_event.get(pass_.name, 0)
        transforms = tuple(
            desc for seq, desc in self._transforms if seq > since
        )
        self._invalidations.append(
            InvalidationRecord(pass_.name, reasons, transforms)
        )

    def invalidations(self) -> list[InvalidationRecord]:
        return list(self._invalidations)

    def last_invalidation(self, product: str) -> InvalidationRecord | None:
        for record in reversed(self._invalidations):
            if record.pass_name == product:
                return record
        return None

    # -- reporting ---------------------------------------------------------
    def stats(self) -> list[dict[str, Any]]:
        """Per-pass run/hit/miss counts, wall time, and last reason."""
        rows: list[dict[str, Any]] = []
        for pass_ in self.order():
            name = pass_.name
            runs = hits = 0
            if self.metrics is not None:
                runs = self.metrics.counter(f"pass.{name}.runs").value
                hits = self.metrics.counter(f"pass.{name}.hits").value
            seconds = 0.0
            if self.tracer is not None and hasattr(self.tracer, "total"):
                seconds = self.tracer.total(f"pass:{name}")
            record = self.last_invalidation(name)
            rows.append(
                {
                    "pass": name,
                    "runs": runs,
                    "hits": hits,
                    "misses": runs,
                    "seconds": seconds,
                    "last_reason": None if record is None else record.describe(),
                }
            )
        return rows

    def report(self) -> str:
        """A plain-text per-pass cache/timing table plus recent transforms."""
        rows = self.stats()
        width = max([len(r["pass"]) for r in rows] + [4])
        lines = [
            f"{'pass':<{width}}  {'runs':>5} {'hits':>5}  {'time [ms]':>10}  last recompute reason"
        ]
        for row in rows:
            reason = row["last_reason"] or "-"
            lines.append(
                f"{row['pass']:<{width}}  {row['runs']:>5} {row['hits']:>5}  "
                f"{row['seconds'] * 1e3:>10.2f}  {reason}"
            )
        if self._transforms:
            lines.append("applied transforms:")
            for _, desc in self._transforms:
                lines.append(f"  - {desc}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Pipeline(passes={len(self._passes)}, store={len(self.store)} "
            "entries)"
        )
