"""The local view's locality pipeline as chained passes.

Simulation trace → physical layout → stack distances → miss
classification → physical movement, each stage a
:class:`~repro.passes.base.Pass` with its own content key — plus
``local.analytic``, the closed-form engine (:mod:`repro.locality`) that
classification consults first and that short-circuits the enumeration
chain entirely whenever it applies.  The split follows the invalidation
boundaries that matter in the interactive loop:

- changing *strides* (e.g. :func:`~repro.transforms.layout.pad_strides_to_multiple`)
  re-runs layout and everything after it, but the simulation trace —
  keyed by **logical** descriptors only — is a cache hit;
- changing the modeled cache *capacity* re-runs only classification and
  movement: the expensive stack-distance computation is reused;
- changing a *symbol value* re-runs the whole chain, since the trace
  itself depends on the concrete sizes.

Each pass replays the legacy stage spans (``layout``, ``stackdist``,
``classify``) into the context's timings collector, so stage-level
timing consumers keep working unchanged.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.analysis.parametric import LocalSweepPoint
from repro.analysis.timing import maybe_span
from repro.errors import ReproError
from repro.locality import AnalyticLocality, analyze_locality
from repro.passes.base import Pass, PassContext
from repro.simulation import (
    CacheModel,
    MemoryModel,
    simulate_state,
)
from repro.simulation.arrays import (
    ArrayTrace,
    build_array_trace,
    per_container_misses_array,
)
from repro.simulation.movement import per_container_misses
from repro.simulation.simulator import SimulationResult
from repro.simulation.stackdist import stack_distances, stack_distances_array
from repro.simulation.vectorized import fast_line_trace

__all__ = [
    "LayoutProduct",
    "DistanceProduct",
    "AnalyticPass",
    "TracePass",
    "LayoutPass",
    "StackDistancePass",
    "ClassifyPass",
    "PhysicalMovementPass",
    "SweepPointPass",
    "local_passes",
]


class LayoutProduct:
    """Physical-layout stage output: memory model plus columnar trace.

    :attr:`trace` is the columnar :class:`ArrayTrace` when the access
    trace is array-representable, else ``None`` (object pipeline).
    :meth:`line_ids` materializes the per-event cache-line ids lazily —
    the array pipeline never needs them.
    """

    __slots__ = ("result", "memory", "trace", "_line_ids")

    def __init__(self, result: SimulationResult, memory: MemoryModel):
        self.result = result
        self.memory = memory
        self.trace: ArrayTrace | None = build_array_trace(result, memory)
        self._line_ids: list[int] | None = None

    def line_ids(self) -> list[int]:
        if self._line_ids is None:
            self._line_ids = fast_line_trace(self.result, self.memory)
        return self._line_ids


class DistanceProduct:
    """Stack-distance stage output, in array or list representation.

    :attr:`array` is a float64 NumPy array in the array pipeline, else
    ``None``.  :meth:`as_list` converts (and memoizes) a Python list, so
    repeated consumers observe the *same* list object — the identity
    contract the session cache always had.
    """

    __slots__ = ("array", "_list")

    def __init__(self, array=None, values: list[float] | None = None):
        self.array = array
        self._list = values

    def as_list(self) -> list[float]:
        if self._list is None:
            self._list = self.array.tolist()
        return self._list


class AnalyticPass(Pass):
    """Closed-form locality analysis — the enumeration chain's fast path.

    Runs the analytic engine (:mod:`repro.locality`) up front; when it
    produces a product, ``local.classify`` and ``local.point`` answer
    from it and — thanks to lazily materialized pass inputs — the
    enumeration chain (trace → layout → stackdist) never executes.
    Returns ``None`` when the engine declines (→ downstream passes fall
    back to enumeration).  ``capacity`` is deliberately *not* a key
    component: the product carries full histograms, so a capacity
    re-sweep reuses it.
    """

    name = "local.analytic"
    uses = ("scope", "state", "arrays", "env", "sim", "line")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> AnalyticLocality | None:
        env = ctx.require_env(self.name)
        try:
            with maybe_span(ctx.timings, "locality:analytic"):
                product = analyze_locality(
                    ctx.sdfg,
                    env,
                    state=ctx.state,
                    line_size=ctx.line_size,
                    include_transients=ctx.include_transients,
                    fast=ctx.fast,
                    timings=ctx.timings,
                )
        except ReproError:
            product = None
        if ctx.metrics is not None:
            if product is not None:
                ctx.metrics.counter("locality.analytic.hits").inc(
                    product.analytic_regions
                )
                ctx.metrics.counter("locality.analytic.fallbacks").inc(
                    product.fallback_regions
                )
            else:
                ctx.metrics.counter("locality.analytic.fallbacks").inc()
        return product


class TracePass(Pass):
    """Access-trace simulation at the context's concrete sizes.

    Keyed by **logical** descriptors: which elements a program touches,
    and in what order, is independent of how arrays are laid out in
    memory — so layout transforms leave this (dominant-cost) stage cached.
    """

    name = "local.trace"
    uses = ("scope", "state", "arrays.logical", "env", "sim")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> SimulationResult:
        env = ctx.require_env(self.name)
        return simulate_state(
            ctx.sdfg,
            env,
            state=ctx.state,
            include_transients=ctx.include_transients,
            fast=ctx.fast,
            timings=ctx.timings,
        )


class LayoutPass(Pass):
    """Physical memory layout + columnar trace over the simulated events."""

    name = "local.layout"
    depends_on = ("local.trace",)
    uses = ("arrays", "env", "line")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> LayoutProduct:
        env = ctx.require_env(self.name)
        with maybe_span(ctx.timings, "layout"):
            memory = MemoryModel(ctx.sdfg, env, line_size=ctx.line_size)
            return LayoutProduct(inputs["local.trace"], memory)


class StackDistancePass(Pass):
    """LRU stack distances over the interleaved line trace.

    No components of its own: the layout product's key already embeds
    everything the distances depend on.
    """

    name = "local.stackdist"
    depends_on = ("local.layout",)

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> DistanceProduct:
        layout: LayoutProduct = inputs["local.layout"]
        with maybe_span(ctx.timings, "stackdist"):
            if layout.trace is not None:
                return DistanceProduct(array=stack_distances_array(layout.trace.lines))
            return DistanceProduct(values=stack_distances(layout.line_ids()))


class ClassifyPass(Pass):
    """Per-container miss classification under the modeled capacity.

    Adding ``capacity`` here (and nowhere upstream) is what makes a
    capacity re-sweep reuse the stack distances: only this pass and its
    downstream re-run.
    """

    name = "local.classify"
    depends_on = (
        "local.analytic", "local.trace", "local.layout", "local.stackdist"
    )
    uses = ("line", "capacity")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> dict:
        analytic: AnalyticLocality | None = inputs["local.analytic"]
        if analytic is not None:
            with maybe_span(ctx.timings, "classify"):
                return analytic.miss_counts(ctx.capacity_lines)
        layout: LayoutProduct = inputs["local.layout"]
        distances: DistanceProduct = inputs["local.stackdist"]
        model = CacheModel(
            line_size=ctx.line_size, capacity_lines=ctx.capacity_lines
        )
        with maybe_span(ctx.timings, "classify"):
            if layout.trace is not None:
                return per_container_misses_array(
                    layout.trace, distances.array, model
                )
            return per_container_misses(
                inputs["local.trace"].events,
                layout.memory,
                model,
                distances.as_list(),
            )


class PhysicalMovementPass(Pass):
    """Estimated physical traffic per container: misses × line size."""

    name = "local.physmove"
    depends_on = ("local.classify",)
    uses = ("line",)

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> dict[str, int]:
        return {
            name: counts.misses * ctx.line_size
            for name, counts in inputs["local.classify"].items()
        }


class SweepPointPass(Pass):
    """Assemble one :class:`LocalSweepPoint` from the chain's products."""

    name = "local.point"
    depends_on = (
        "local.analytic", "local.trace", "local.classify", "local.physmove"
    )
    uses = ("env",)

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> LocalSweepPoint:
        env = ctx.require_env(self.name)
        analytic: AnalyticLocality | None = inputs["local.analytic"]
        total = (
            analytic.total_events
            if analytic is not None
            else inputs["local.trace"].num_events
        )
        return LocalSweepPoint(
            params=dict(env),
            misses=inputs["local.classify"],
            moved_bytes=inputs["local.physmove"],
            total_accesses=total,
            seconds=perf_counter() - ctx.created_at,
        )


def local_passes() -> tuple[Pass, ...]:
    """One fresh instance of every local-view pass."""
    return (
        AnalyticPass(),
        TracePass(),
        LayoutPass(),
        StackDistancePass(),
        ClassifyPass(),
        PhysicalMovementPass(),
        SweepPointPass(),
    )
