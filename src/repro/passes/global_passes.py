"""Global-view analyses as incremental pipeline passes.

The symbolic metrics behind the global view's overlays — logical data
movement, operation counts, arithmetic intensity, and whole-program
totals — each become a :class:`~repro.passes.base.Pass`.  Symbolic
passes depend only on graph content, so slider moves (a new symbol
environment) re-run *only* the cheap evaluation passes; conversely, a
transform invalidates the symbolic passes but an unchanged environment
lets the evaluation passes reuse their own key structure.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.intensity import scope_intensities
from repro.analysis.movement import edge_movement_bytes, total_movement_bytes
from repro.analysis.opcount import program_ops, scope_ops
from repro.analysis.parametric import evaluate_metrics_grid
from repro.passes.base import Pass, PassContext

__all__ = [
    "MovementPass",
    "OpCountPass",
    "IntensityPass",
    "ProgramTotalsPass",
    "MovementEvalPass",
    "OpCountEvalPass",
    "IntensityEvalPass",
    "ProgramTotalsEvalPass",
    "global_passes",
]


class MovementPass(Pass):
    """Symbolic per-edge movement volumes, in both counting modes.

    The product maps ``"unique"`` (distinct elements crossing each edge —
    the heatmap metric) and ``"counted"`` (access counts) to per-edge
    byte expressions.  Depends on the focus state's graph content and the
    *logical* descriptors only: element sizes matter, strides do not.
    """

    name = "global.movement"
    uses = ("scope", "state", "arrays.logical")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> Any:
        return {
            "unique": edge_movement_bytes(ctx.sdfg, ctx.state, unique=True),
            "counted": edge_movement_bytes(ctx.sdfg, ctx.state, unique=False),
        }


class OpCountPass(Pass):
    """Symbolic per-node arithmetic-operation counts of the focus state."""

    name = "global.opcount"
    uses = ("scope", "state")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> Any:
        if ctx.state is not None:
            return scope_ops(ctx.state)
        out: dict = {}
        for state in ctx.sdfg.states():
            out.update(scope_ops(state))
        return out


class IntensityPass(Pass):
    """Symbolic arithmetic intensity, reusing the opcount product."""

    name = "global.intensity"
    depends_on = ("global.opcount",)
    uses = ("scope", "state", "arrays.logical")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> Any:
        ops = inputs["global.opcount"]
        states = [ctx.state] if ctx.state is not None else ctx.sdfg.states()
        out: dict = {}
        for state in states:
            out.update(scope_intensities(ctx.sdfg, state, ops=ops))
        return out


class ProgramTotalsPass(Pass):
    """Whole-program symbolic totals: movement (both modes) and ops."""

    name = "global.totals"
    uses = ("scope", "states", "arrays.logical")

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> Any:
        return {
            "movement_unique": total_movement_bytes(ctx.sdfg, unique=True),
            "movement_counted": total_movement_bytes(ctx.sdfg, unique=False),
            "ops": program_ops(ctx.sdfg),
        }


class _EvalPass(Pass):
    """Evaluate one symbolic product under the context's environment.

    Keyed only by ``env`` plus the upstream pass's key (embedded in this
    pass's own key), so a slider move re-runs just this evaluation while
    an unchanged environment over unchanged content is a pure cache hit.

    Evaluation goes through the compiled engine
    (:mod:`repro.symbolic.compiled`): each metric expression is lowered
    once per distinct structure and cached process-wide, so repeated
    slider moves over the same product pay only the vectorized
    evaluation.  :meth:`evaluate_grid` exposes the batched form — one
    compiled call for a whole parameter grid.
    """

    source = ""

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> Any:
        env = ctx.require_env(self.name)
        grid = self.evaluate_grid(
            inputs[self.source],
            [env],
            metrics=ctx.metrics,
            tracer=ctx.timings,
        )
        return self._first_point(grid)

    @classmethod
    def evaluate_grid(
        cls, product: Any, envs, *, metrics=None, tracer=None
    ) -> Any:
        """Evaluate *product* at every environment of *envs*, batched.

        Mirrors the shape of the single-point product, with each scalar
        replaced by a list ordered like *envs*.
        """
        return evaluate_metrics_grid(
            product, envs, metrics_registry=metrics, tracer=tracer
        )

    @staticmethod
    def _first_point(grid: Any) -> Any:
        return {key: values[0] for key, values in grid.items()}


class MovementEvalPass(_EvalPass):
    name = "global.movement.eval"
    depends_on = ("global.movement",)
    uses = ("env",)
    source = "global.movement"

    @classmethod
    def evaluate_grid(
        cls, product: Any, envs, *, metrics=None, tracer=None
    ) -> Any:
        return {
            mode: evaluate_metrics_grid(
                mode_metrics, envs, metrics_registry=metrics, tracer=tracer
            )
            for mode, mode_metrics in product.items()
        }

    @staticmethod
    def _first_point(grid: Any) -> Any:
        return {
            mode: {key: values[0] for key, values in per_mode.items()}
            for mode, per_mode in grid.items()
        }


class OpCountEvalPass(_EvalPass):
    name = "global.opcount.eval"
    depends_on = ("global.opcount",)
    uses = ("env",)
    source = "global.opcount"


class IntensityEvalPass(_EvalPass):
    name = "global.intensity.eval"
    depends_on = ("global.intensity",)
    uses = ("env",)
    source = "global.intensity"


class ProgramTotalsEvalPass(_EvalPass):
    name = "global.totals.eval"
    depends_on = ("global.totals",)
    uses = ("env",)
    source = "global.totals"


def global_passes() -> tuple[Pass, ...]:
    """One fresh instance of every global-view pass."""
    return (
        MovementPass(),
        OpCountPass(),
        IntensityPass(),
        ProgramTotalsPass(),
        MovementEvalPass(),
        OpCountEvalPass(),
        IntensityEvalPass(),
        ProgramTotalsEvalPass(),
    )
