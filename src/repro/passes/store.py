"""Content-addressed result store for the analysis-pass pipeline.

Pass results are memoized under *content keys* — tuples built from the
pass name, the content fingerprints of everything the pass reads, and
(recursively) its dependencies' keys.  A key therefore changes exactly
when some input content changes; invalidation is never an explicit event,
it is the absence of the new key in the store.

The store wraps every value in a cell so that ``None`` (or any falsy
product) is a legal cached result, and delegates storage to a pluggable
*backing* cache — any object with the ``get``/``put``/``clear``/``info``
protocol of :class:`~repro.tool.session.SimulationCache` — so a session
can keep exposing one shared LRU with one set of hit/miss counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["ResultStore"]

_MISS = object()


class _LRUBacking:
    """Minimal bounded LRU used when no external backing cache is given."""

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: tuple, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def info(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }


class ResultStore:
    """Cell-wrapping facade over a bounded LRU of pass results."""

    def __init__(self, backing=None, maxsize: int = 256):
        self.backing = backing if backing is not None else _LRUBacking(maxsize)

    def get(self, key: tuple, default: Any = _MISS) -> Any:
        """The stored value, or *default* (a private sentinel) on a miss."""
        cell = self.backing.get(key)
        if cell is None:
            return default
        return cell[0]

    def contains(self, key: tuple) -> bool:
        """Key presence without touching the hit/miss counters."""
        return key in self.backing

    def put(self, key: tuple, value: Any) -> None:
        self.backing.put(key, (value,))

    def clear(self) -> None:
        self.backing.clear()

    def __len__(self) -> int:
        return len(self.backing)

    def info(self) -> dict[str, int]:
        return self.backing.info()

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS

    def __repr__(self) -> str:
        return f"ResultStore({self.info()})"
