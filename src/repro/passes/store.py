"""Content-addressed result store for the analysis-pass pipeline.

Pass results are memoized under *content keys* — tuples built from the
pass name, the content fingerprints of everything the pass reads, and
(recursively) its dependencies' keys.  A key therefore changes exactly
when some input content changes; invalidation is never an explicit event,
it is the absence of the new key in the store.

The store wraps every value in a cell so that ``None`` (or any falsy
product) is a legal cached result, and delegates storage to a pluggable
*backing* cache — any object with the ``get``/``put``/``clear``/``info``
protocol of :class:`~repro.tool.session.SimulationCache` — so a session
can keep exposing one shared LRU with one set of hit/miss counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.storage.sizing import approx_sizeof

__all__ = ["ResultStore"]

_MISS = object()


class _LRUBacking:
    """Minimal bounded LRU used when no external backing cache is given.

    Bounded two ways: by entry *count* (``maxsize``) and — because a few
    large local-view products can dwarf hundreds of tiny symbolic
    entries — by approximate *bytes* (``max_bytes``, measured with
    *sizeof*, default :func:`~repro.storage.sizing.approx_sizeof`).
    """

    def __init__(
        self,
        maxsize: int,
        max_bytes: int | None = None,
        sizeof: Callable[[Any], int] | None = None,
    ):
        self.maxsize = int(maxsize)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._sizeof = sizeof if sizeof is not None else approx_sizeof
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._sizes: dict[tuple, int] = {}
        self.approx_bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def _measure(self, value: Any) -> int:
        try:
            return int(self._sizeof(value))
        except Exception:  # noqa: BLE001 — fault barrier: sizing must never break caching
            return 0

    def _over_budget(self) -> bool:
        if len(self._entries) > self.maxsize:
            return True
        return self.max_bytes is not None and self.approx_bytes > self.max_bytes

    def put(self, key: tuple, value: Any) -> None:
        if key in self._entries:
            self.approx_bytes -= self._sizes.pop(key, 0)
        self._entries[key] = value
        self._entries.move_to_end(key)
        size = self._measure(value)
        self._sizes[key] = size
        self.approx_bytes += size
        # The just-inserted entry is exempt: evicting a single oversized
        # product would only buy a put/miss recompute loop.
        while len(self._entries) > 1 and self._over_budget():
            evicted, _ = self._entries.popitem(last=False)
            self.approx_bytes -= self._sizes.pop(evicted, 0)

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self.approx_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def info(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "approx_bytes": self.approx_bytes,
            "max_bytes": 0 if self.max_bytes is None else self.max_bytes,
        }


class ResultStore:
    """Cell-wrapping facade over a bounded LRU of pass results."""

    def __init__(
        self,
        backing=None,
        maxsize: int = 256,
        max_bytes: int | None = None,
    ):
        self.backing = (
            backing
            if backing is not None
            else _LRUBacking(maxsize, max_bytes=max_bytes)
        )

    def get(self, key: tuple, default: Any = _MISS) -> Any:
        """The stored value, or *default* (a private sentinel) on a miss."""
        cell = self.backing.get(key)
        if cell is None:
            return default
        return cell[0]

    def contains(self, key: tuple) -> bool:
        """Key presence without touching the hit/miss counters."""
        return key in self.backing

    def put(self, key: tuple, value: Any) -> None:
        self.backing.put(key, (value,))

    def clear(self) -> None:
        self.backing.clear()

    def __len__(self) -> int:
        return len(self.backing)

    def info(self) -> dict[str, int]:
        return self.backing.info()

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS

    def __repr__(self) -> str:
        return f"ResultStore({self.info()})"
