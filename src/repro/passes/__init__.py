"""Incremental analysis-pass pipeline with content-addressed invalidation.

Analyses are :class:`~repro.passes.base.Pass` objects declaring their
dependencies and the content components that determine their output; a
:class:`~repro.passes.pipeline.Pipeline` schedules them topologically and
memoizes every result in a :class:`~repro.passes.store.ResultStore` under
keys built from SDFG content hashes (:mod:`repro.sdfg.serialize`).
Invalidation is purely structural — mutate the graph, rebind a symbol, or
retune the cache model, and exactly the passes whose key components
changed re-execute; everything else is a cache hit.

Quick start::

    from repro.passes import PassContext, build_pipeline

    pipe = build_pipeline()
    ctx = PassContext(sdfg, state=state, env={"N": 64})
    misses = pipe.run("local.classify", ctx)
"""

from __future__ import annotations

from repro.passes.base import COMPONENTS, Pass, PassContext
from repro.passes.global_passes import global_passes
from repro.passes.local_passes import (
    DistanceProduct,
    LayoutProduct,
    local_passes,
)
from repro.passes.pipeline import InvalidationRecord, Pipeline
from repro.passes.store import ResultStore

__all__ = [
    "COMPONENTS",
    "Pass",
    "PassContext",
    "Pipeline",
    "InvalidationRecord",
    "ResultStore",
    "LayoutProduct",
    "DistanceProduct",
    "global_passes",
    "local_passes",
    "default_passes",
    "build_pipeline",
]


def default_passes() -> tuple[Pass, ...]:
    """Fresh instances of every built-in pass (global + local)."""
    return global_passes() + local_passes()


def build_pipeline(
    store: ResultStore | None = None,
    tracer=None,
    metrics=None,
) -> Pipeline:
    """A pipeline with every built-in pass registered."""
    return Pipeline(
        default_passes(), store=store, tracer=tracer, metrics=metrics
    )
