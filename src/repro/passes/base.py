"""Pass and context abstractions of the incremental analysis pipeline.

Every analysis in the library — the global view's symbolic metrics, their
parametric evaluations, and the local view's simulation → layout →
stack-distance → miss-classification → physical-movement chain — is a
:class:`Pass`: a named unit of work that declares which upstream products
it consumes (:attr:`Pass.depends_on`) and which *content components* of
the analysis context determine its output (:attr:`Pass.uses`).

A :class:`PassContext` bundles one analysis question — an SDFG, an
optional focus state, a symbol environment, and the cache-model
configuration — and lazily computes the content fingerprints the
scheduler keys results by.  Fingerprints come from
:mod:`repro.sdfg.serialize`'s stable hashing, so a context over a mutated
SDFG can never alias a context over its pre-mutation content.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Hashable, Mapping

from repro.errors import PipelineError
from repro.sdfg.serialize import (
    arrays_fingerprint,
    sdfg_fingerprint,
    state_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdfg.sdfg import SDFG
    from repro.sdfg.state import SDFGState

__all__ = ["Pass", "PassContext", "COMPONENTS"]

#: Recognized content-component names a pass may list in :attr:`Pass.uses`.
COMPONENTS = (
    "scope",          # session scope (program name, load generation)
    "state",          # focus state's content hash (all states when unset)
    "states",         # every state's content hash (whole-program passes)
    "sdfg",           # whole-SDFG content hash (structure + descriptors)
    "arrays",         # physical descriptor hashes, in allocation order
    "arrays.logical", # descriptor hashes w/o layout fields (dtype/shape)
    "env",            # the concrete symbol assignment
    "sim",            # simulation configuration (transients, fast path)
    "line",           # cache-line size in bytes
    "capacity",       # modeled cache capacity in lines
)


class PassContext:
    """One analysis question plus memoized content fingerprints.

    Fingerprint components are computed at most once per context; facades
    create a fresh context per query, so a mutation of the underlying
    SDFG (a transform, a descriptor swap) is always observed by the next
    query's fingerprints.
    """

    def __init__(
        self,
        sdfg: "SDFG",
        state: "SDFGState | None" = None,
        env: Mapping[str, int] | None = None,
        line_size: int = 64,
        capacity_lines: int = 512,
        include_transients: bool = False,
        fast: bool = True,
        scope: tuple = (),
        timings=None,
        metrics=None,
    ):
        self.sdfg = sdfg
        self.state = state
        self.env = None if env is None else {k: int(v) for k, v in env.items()}
        self.line_size = int(line_size)
        self.capacity_lines = int(capacity_lines)
        self.include_transients = bool(include_transients)
        self.fast = bool(fast)
        self.scope = tuple(scope)
        self.timings = timings
        self.metrics = metrics
        self.created_at = perf_counter()
        self._components: dict[str, Hashable] = {}

    def require_env(self, pass_name: str) -> dict[str, int]:
        if self.env is None:
            raise PipelineError(
                f"pass {pass_name!r} needs a symbol environment, but the "
                "context has none (pass env= when building the context)"
            )
        return self.env

    def component(self, name: str) -> Hashable:
        """The named content component, computed lazily and memoized."""
        try:
            return self._components[name]
        except KeyError:
            pass
        value = self._compute_component(name)
        self._components[name] = value
        return value

    def adopt_components(self, other: "PassContext") -> None:
        """Share *other*'s already-computed graph fingerprints.

        Valid only when both contexts view the same SDFG under the same
        configuration and differ at most in their symbol environment —
        the parameter-sweep case, where fingerprinting the graph once
        per point would be pure waste.  Environment-dependent entries
        (``env`` and the per-context key memo) are never copied.
        """
        for name, value in other._components.items():
            if name in ("env", "__keys__"):
                continue
            self._components.setdefault(name, value)

    def _compute_component(self, name: str) -> Hashable:
        if name == "scope":
            return self.scope
        if name == "state":
            if self.state is not None:
                return state_fingerprint(self.state)
            return self.component("states")
        if name == "states":
            return tuple(state_fingerprint(s) for s in self.sdfg.states())
        if name == "sdfg":
            return sdfg_fingerprint(self.sdfg)
        if name == "arrays":
            return arrays_fingerprint(self.sdfg)
        if name == "arrays.logical":
            return arrays_fingerprint(self.sdfg, logical=True)
        if name == "env":
            return None if self.env is None else tuple(sorted(self.env.items()))
        if name == "sim":
            return (self.include_transients, self.fast)
        if name == "line":
            return self.line_size
        if name == "capacity":
            return self.capacity_lines
        raise PipelineError(f"unknown context component {name!r}")

    def __repr__(self) -> str:
        state = self.state.name if self.state is not None else None
        return (
            f"PassContext({self.sdfg.name!r}, state={state!r}, env={self.env}, "
            f"line={self.line_size}, capacity={self.capacity_lines})"
        )


class Pass:
    """One unit of analysis work in the incremental pipeline.

    Subclasses declare:

    - :attr:`name` — the product this pass produces (its registry key);
    - :attr:`depends_on` — product names consumed as inputs;
    - :attr:`uses` — the context components that, together with the
      dependencies' cache keys, *fully determine* the output.  Listing
      too few components makes caching unsound; listing too many only
      costs unnecessary recomputation.

    and implement :meth:`run`.  Passes are stateless: all inputs arrive
    through the context and the ``inputs`` mapping, so one instance can
    serve any number of pipelines.
    """

    name: str = ""
    depends_on: tuple[str, ...] = ()
    uses: tuple[str, ...] = ()

    def fingerprint(self, ctx: PassContext) -> dict[str, Hashable]:
        """The content components keying this pass's result."""
        return {component: ctx.component(component) for component in self.uses}

    def run(self, ctx: PassContext, inputs: dict[str, Any]) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        deps = ", ".join(self.depends_on)
        return f"{type(self).__name__}({self.name!r}, depends_on=[{deps}])"
