"""A classic three-state circuit breaker for flaky dependencies.

Wrapped around the sweep worker pool and the persistent disk-cache
tier: consecutive dependency failures trip the breaker *open*, callers
stop touching the dependency (pool sweeps degrade to serial evaluation,
disk caching degrades to memory-only), and after ``reset_timeout``
seconds a single *half-open* probe is let through — success closes the
breaker, failure re-opens it for another cooldown.

This differs from the permanent degradation the disk cache already had
(PR 5): permanent degradation is right for conditions that cannot heal
within a process lifetime (``ENOSPC``, an unwritable directory), while
the breaker handles *transient* faults — a NFS blip, a dying worker
host — that deserve periodic re-probing instead of giving up forever.

Thread-safe; every transition is observable through the attached
metrics registry (``breaker.<name>.state`` state gauge plus
``.opened`` / ``.probes`` / ``.failures`` counters).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    Parameters
    ----------
    name:
        Metric namespace (``breaker.<name>.*``).
    failure_threshold:
        Consecutive :meth:`record_failure` calls that trip the breaker.
    reset_timeout:
        Seconds the breaker stays open before allowing one probe.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Lifetime transition log entries ``(state, at)`` — bounded.
        self.transitions: list[tuple[str, float]] = [(CLOSED, clock())]
        self._set_state_metric(CLOSED)

    # -- observability -----------------------------------------------------
    def _count(self, suffix: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"breaker.{self.name}.{suffix}").inc()

    def _set_state_metric(self, state: str) -> None:
        if self.metrics is not None:
            self.metrics.state(f"breaker.{self.name}.state").set(state)

    def _transition(self, state: str) -> None:
        self._state = state
        if len(self.transitions) < 256:
            self.transitions.append((state, self._clock()))
        self._set_state_metric(state)

    # -- state machine -----------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._transition(HALF_OPEN)
            self._probing = False

    def allow(self) -> bool:
        """May the protected dependency be used for this call?

        Closed: always.  Open: never (until the cooldown elapses).
        Half-open: exactly one caller gets ``True`` — the probe — and
        everyone else waits for its verdict.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                self._count("probes")
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._count("failures")
            if self._state == HALF_OPEN:
                # The probe failed: back to a full cooldown.
                self._opened_at = self._clock()
                self._transition(OPEN)
                self._count("opened")
                self._probing = False
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(OPEN)
                self._count("opened")

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "transitions": [
                    {"state": state, "at": at} for state, at in self.transitions
                ],
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"
