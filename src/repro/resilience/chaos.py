"""Deterministic fault injection at named sites (``REPRO_CHAOS``).

Resilience code is only trustworthy if its failure paths actually run,
so the library carries its own chaos harness: production code calls
:func:`inject` at *named sites* (pool spawn, worker evaluation, disk
reads/writes, response sends), and a :class:`Chaos` spec — parsed from
the ``REPRO_CHAOS`` environment variable or installed programmatically —
decides deterministically whether that call fails, sleeps, or kills the
process.  With no spec active, :func:`inject` is a cheap no-op.

Spec grammar (sites separated by ``;``, options by ``:``)::

    REPRO_CHAOS="disk.read:kind=raise:exc=oserror:every=2"
    REPRO_CHAOS="worker.kill:kind=kill:times=1;pool.spawn:kind=raise:times=2"
    REPRO_CHAOS="eval.slow:kind=sleep:delay=0.2:rate=0.5:seed=7"

Options per site:

===========  ===============================================================
``kind``     ``raise`` (default), ``sleep`` or ``kill``
``exc``      for ``raise``: ``oserror`` (default, ``EIO``), ``connreset``,
             ``runtime``
``delay``    for ``sleep``: seconds to stall (default 0.1)
``every``    fire on every Nth call to the site (1-indexed)
``times``    fire on the first N calls only
``after``    fire on every call after the first N
``rate``     fire with probability R per call, from a seeded RNG
``seed``     RNG seed for ``rate`` (default 0) — same seed, same sequence
===========  ===============================================================

Triggers compose with AND when combined (e.g. ``every=2:times=4`` fires
on calls 2 and 4 only).  Counters are per-process, so worker processes —
which inherit ``REPRO_CHAOS`` through the environment — each run their
own deterministic schedule.

The catalog of sites wired through the library (see DESIGN.md §16):

=================  =========================================================
``pool.spawn``     creating the sweep worker pool (executor)
``worker.kill``    inside a pool worker, before evaluating a point
``eval.slow``      before any in-process/worker point evaluation
``eval.error``     before any in-process/worker point evaluation
``disk.read``      reading a persistent-cache entry
``disk.write``     writing a persistent-cache entry
``http.send``      writing an HTTP response or stream line
=================  =========================================================
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from typing import Any, Mapping

from repro.errors import ReproError

__all__ = ["Chaos", "ChaosSpecError", "SiteSpec", "active", "inject", "install", "uninstall"]

_KINDS = ("raise", "sleep", "kill")
_EXCS = ("oserror", "connreset", "runtime")


class ChaosSpecError(ReproError):
    """A ``REPRO_CHAOS`` spec that cannot be parsed."""


class SiteSpec:
    """Parsed injection rule for one named site."""

    __slots__ = (
        "site", "kind", "exc", "delay", "every", "times", "after",
        "rate", "seed", "calls", "fired", "_rng", "_lock",
    )

    def __init__(
        self,
        site: str,
        kind: str = "raise",
        exc: str = "oserror",
        delay: float = 0.1,
        every: int | None = None,
        times: int | None = None,
        after: int | None = None,
        rate: float | None = None,
        seed: int = 0,
    ):
        if kind not in _KINDS:
            raise ChaosSpecError(f"site {site!r}: unknown kind {kind!r} {_KINDS}")
        if exc not in _EXCS:
            raise ChaosSpecError(f"site {site!r}: unknown exc {exc!r} {_EXCS}")
        if every is not None and every < 1:
            raise ChaosSpecError(f"site {site!r}: every must be >= 1")
        if rate is not None and not (0.0 <= rate <= 1.0):
            raise ChaosSpecError(f"site {site!r}: rate must be in [0, 1]")
        self.site = site
        self.kind = kind
        self.exc = exc
        self.delay = float(delay)
        self.every = every
        self.times = times
        self.after = after
        self.rate = rate
        self.seed = int(seed)
        self.calls = 0
        self.fired = 0
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def should_fire(self) -> bool:
        """Count one call at this site; decide deterministically."""
        with self._lock:
            self.calls += 1
            n = self.calls
            fire = self.every is not None or self.times is not None or \
                self.after is not None or self.rate is not None
            if self.every is not None and n % self.every != 0:
                fire = False
            if self.times is not None and n > self.times:
                fire = False
            if self.after is not None and n <= self.after:
                fire = False
            if fire and self.rate is not None:
                fire = self._rng.random() < self.rate
            if fire:
                self.fired += 1
            return fire

    def execute(self) -> None:
        """Carry out the configured fault (raise / sleep / SIGKILL)."""
        if self.kind == "sleep":
            time.sleep(self.delay)
            return
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - the line above does not return
        if self.exc == "connreset":
            raise ConnectionResetError(f"chaos: injected disconnect at {self.site}")
        if self.exc == "runtime":
            raise RuntimeError(f"chaos: injected failure at {self.site}")
        import errno

        raise OSError(errno.EIO, f"chaos: injected I/O error at {self.site}")

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "calls": self.calls,
            "fired": self.fired,
        }


class Chaos:
    """A set of site specs; the active instance drives :func:`inject`."""

    def __init__(self, sites: Mapping[str, SiteSpec]):
        self.sites = dict(sites)

    @classmethod
    def parse(cls, spec: str) -> "Chaos":
        """Parse the ``REPRO_CHAOS`` grammar into a :class:`Chaos`."""
        sites: dict[str, SiteSpec] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            site = parts[0].strip()
            if not site:
                raise ChaosSpecError(f"empty site name in {clause!r}")
            kwargs: dict[str, Any] = {}
            for part in parts[1:]:
                name, sep, value = part.partition("=")
                if not sep:
                    raise ChaosSpecError(
                        f"site {site!r}: expected key=value, got {part!r}"
                    )
                name = name.strip()
                value = value.strip()
                try:
                    if name in ("every", "times", "after", "seed"):
                        kwargs[name] = int(value)
                    elif name in ("delay", "rate"):
                        kwargs[name] = float(value)
                    elif name in ("kind", "exc"):
                        kwargs[name] = value
                    else:
                        raise ChaosSpecError(
                            f"site {site!r}: unknown option {name!r}"
                        )
                except ValueError:
                    raise ChaosSpecError(
                        f"site {site!r}: bad value for {name}: {value!r}"
                    ) from None
            if not any(k in kwargs for k in ("every", "times", "after", "rate")):
                kwargs["every"] = 1  # a bare site fires on every call
            sites[site] = SiteSpec(site, **kwargs)
        if not sites:
            raise ChaosSpecError(f"chaos spec has no sites: {spec!r}")
        return cls(sites)

    def fire(self, site: str) -> None:
        spec = self.sites.get(site)
        if spec is not None and spec.should_fire():
            spec.execute()

    def snapshot(self) -> dict[str, Any]:
        """Per-site call/fire counts (served under ``/v1/metrics``)."""
        return {name: spec.snapshot() for name, spec in self.sites.items()}


#: Lazily initialized from ``REPRO_CHAOS``; ``None`` means "no chaos".
_UNSET = object()
_active: Any = _UNSET
_active_lock = threading.Lock()


def active() -> Chaos | None:
    """The process-wide chaos instance (env-loaded on first use)."""
    global _active
    if _active is _UNSET:
        with _active_lock:
            if _active is _UNSET:
                spec = os.environ.get("REPRO_CHAOS", "").strip()
                _active = Chaos.parse(spec) if spec else None
    return _active


def install(spec: str | Chaos | None) -> Chaos | None:
    """Install a chaos instance programmatically (tests, ``--chaos``).

    Accepts a spec string, a ready :class:`Chaos`, or ``None`` to
    disable injection regardless of the environment.
    """
    global _active
    with _active_lock:
        _active = Chaos.parse(spec) if isinstance(spec, str) else spec
    return _active


def uninstall() -> None:
    """Forget the active instance; the next call re-reads the environment."""
    global _active
    with _active_lock:
        _active = _UNSET


def inject(site: str) -> None:
    """Fault-injection hook: no-op unless an active spec targets *site*."""
    chaos = active()
    if chaos is not None:
        chaos.fire(site)
