"""Request deadlines propagated through the analysis layers.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
serve layer creates one from the ``X-Repro-Deadline-Ms`` header (or a
``deadline_ms`` body field), hands it to the coalescer — whose waiters
individually stop waiting when *their* deadline passes — and arms it
against the evaluation's :class:`~repro.analysis.executor.CancelToken`
so in-flight work stops cooperatively at the next point boundary.

Deadline expiry and client disconnect share the cancellation machinery
but stay distinguishable: an armed deadline cancels with the reason
``"deadline exceeded"``, which ends up verbatim in the
:class:`~repro.analysis.executor.SweepPointError` records of abandoned
points and in terminal stream events.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import ReproError

__all__ = ["Deadline", "DeadlineExceeded", "DEADLINE_REASON"]

#: Cancellation reason carried by deadline-armed tokens.
DEADLINE_REASON = "deadline exceeded"


class DeadlineExceeded(ReproError):
    """The request's deadline passed before its result was ready.

    The serve layer maps this to HTTP 504; streaming endpoints emit a
    terminal error event instead (the status line is already out).
    """


class Deadline:
    """An absolute monotonic-clock deadline.

    Construct via :meth:`after` (relative seconds) or :meth:`after_ms`
    (the wire format).  The raw :attr:`at` value is comparable across
    every component of one process, which is all deadline propagation
    needs — deadlines never cross process boundaries (workers are
    cancelled from the coordinating side instead).
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = float(at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def after_ms(cls, ms: float) -> "Deadline":
        return cls.after(float(ms) / 1000.0)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def tighten(self, other: "Deadline | None") -> "Deadline":
        """The earlier of two deadlines (``other`` may be ``None``)."""
        if other is None or self.at <= other.at:
            return self
        return other

    def arm(self, token: Any, reason: str = DEADLINE_REASON) -> threading.Timer:
        """Cancel *token* (a :class:`CancelToken`) when the deadline hits.

        Returns the daemon :class:`threading.Timer`; the caller cancels
        it once the work finished in time.
        """
        timer = threading.Timer(self.remaining(), token.cancel, args=(reason,))
        timer.daemon = True
        timer.start()
        return timer

    def raise_if_expired(self) -> None:
        if self.expired:
            raise DeadlineExceeded(DEADLINE_REASON)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"
