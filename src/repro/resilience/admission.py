"""Admission control: bounded per-endpoint concurrency with load shedding.

The serve layer admits each request through this controller before any
work happens.  Every endpoint has a concurrency *limit* and a bounded
wait *queue*; a request that finds the endpoint saturated **and** the
queue full is shed immediately with :class:`Overloaded` (HTTP 429 +
``Retry-After``) instead of piling onto an unbounded backlog — under
overload the server answers *fast* with "try later" rather than slowly
with everything.

All bookkeeping is event-loop-confined, exactly like the coalescer:
acquire/release run only from coroutines on the owning loop, so no
locks are needed and a shed decision is a dictionary lookup plus a
counter — microseconds, which is what keeps shed latency flat while
the workers are saturated.

``Retry-After`` hints come from a per-endpoint EWMA of recent service
times: the suggested delay is roughly "how long until the work ahead of
you drains", clamped to [1, 30] seconds.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Mapping

__all__ = ["AdmissionController", "EndpointLimit", "Overloaded"]


class Overloaded(Exception):
    """The endpoint is saturated and its wait queue is full (shed)."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = int(retry_after)


class EndpointLimit:
    """Admission configuration and live state for one endpoint."""

    __slots__ = ("limit", "queue_limit", "active", "waiters", "ewma_seconds")

    def __init__(self, limit: int, queue_limit: int):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.limit = int(limit)
        self.queue_limit = int(queue_limit)
        self.active = 0
        self.waiters: deque[asyncio.Future] = deque()
        #: Exponentially weighted service time; seeds the Retry-After hint.
        self.ewma_seconds = 0.1

    def retry_after(self) -> int:
        backlog = self.active + len(self.waiters)
        estimate = self.ewma_seconds * max(1, backlog) / self.limit
        return max(1, min(30, round(estimate)))


#: Default per-endpoint limits: interactive endpoints are wide — they
#: coalesce, so admitted concurrency is mostly cheap waiters, and a
#: tight limit would split an identical burst into sequential
#: evaluation groups.  The streaming endpoints (which hold a worker for
#: a whole grid/search) are narrow.  Unlisted endpoints share ``"*"``.
DEFAULT_LIMITS: dict[str, tuple[int, int]] = {
    "/v1/local/view": (32, 32),
    "/v1/global/heatmap": (32, 32),
    "/v1/sweep": (2, 2),
    "/v1/tune": (1, 2),
    "*": (16, 16),
}


class AdmissionController:
    """Bounded admission per endpoint with fast-fail shedding."""

    def __init__(
        self,
        limits: Mapping[str, tuple[int, int]] | None = None,
        metrics=None,
    ):
        merged = dict(DEFAULT_LIMITS)
        if limits:
            merged.update(limits)
        default = merged.pop("*")
        self._default = default
        self._limits: dict[str, EndpointLimit] = {
            path: EndpointLimit(*cfg) for path, cfg in merged.items()
        }
        self._metrics = metrics

    # -- observability -----------------------------------------------------
    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _gauges(self, endpoint: str, state: EndpointLimit) -> None:
        if self._metrics is not None:
            self._metrics.gauge(f"admission.{endpoint}.active").set(state.active)
            self._metrics.gauge(f"admission.{endpoint}.queued").set(
                len(state.waiters)
            )

    # -- admission ---------------------------------------------------------
    def _state(self, path: str) -> EndpointLimit:
        state = self._limits.get(path)
        if state is None:
            state = self._limits[path] = EndpointLimit(*self._default)
        return state

    async def acquire(self, path: str, endpoint: str) -> None:
        """Admit one request for *path*, waiting in the bounded queue.

        Raises :class:`Overloaded` when the endpoint is saturated and
        the queue is full.  *endpoint* is the metric-friendly name.
        On queue-wait cancellation (client gone, deadline expired) the
        slot is released correctly.
        """
        state = self._state(path)
        if state.active < state.limit:
            state.active += 1
            self._count(f"admission.{endpoint}.admitted")
            self._gauges(endpoint, state)
            return
        if len(state.waiters) >= state.queue_limit:
            self._count(f"admission.{endpoint}.shed")
            self._gauges(endpoint, state)
            raise Overloaded(
                f"{path} is saturated ({state.limit} in flight, "
                f"{len(state.waiters)} queued)",
                state.retry_after(),
            )
        future = asyncio.get_running_loop().create_future()
        state.waiters.append(future)
        self._count(f"admission.{endpoint}.queued_waits")
        self._gauges(endpoint, state)
        try:
            await future
        except asyncio.CancelledError:
            # Either still queued (remove us) or a release() already
            # granted the slot (pass it on instead of leaking it).
            if future in state.waiters:
                state.waiters.remove(future)
            elif future.done() and not future.cancelled():
                # release() granted us the slot (active already counts
                # it) but we will never use it — hand it onward.
                state.active -= 1
                self._release_state(path, endpoint, state)
            self._gauges(endpoint, state)
            raise
        # Granted: release() already incremented active on our behalf.
        self._count(f"admission.{endpoint}.admitted")
        self._gauges(endpoint, state)

    def release(self, path: str, endpoint: str, seconds: float | None = None) -> None:
        """Return one slot; hands it straight to the oldest queued waiter."""
        state = self._state(path)
        if seconds is not None:
            state.ewma_seconds += 0.3 * (seconds - state.ewma_seconds)
        state.active -= 1
        self._release_state(path, endpoint, state)
        self._gauges(endpoint, state)

    def _release_state(self, path: str, endpoint: str, state: EndpointLimit) -> None:
        while state.waiters and state.active < state.limit:
            future = state.waiters.popleft()
            if future.done():
                continue  # waiter already cancelled
            state.active += 1
            future.set_result(None)
            break

    def snapshot(self) -> dict[str, Any]:
        return {
            path: {
                "limit": state.limit,
                "queue_limit": state.queue_limit,
                "active": state.active,
                "queued": len(state.waiters),
                "ewma_seconds": round(state.ewma_seconds, 6),
            }
            for path, state in sorted(self._limits.items())
        }
