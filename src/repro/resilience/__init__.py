"""Production resilience primitives for the analysis service.

The serve/executor/storage layers compose these to keep the service up
under overload and component failure (DESIGN.md §16):

- :mod:`~repro.resilience.admission` — bounded per-endpoint concurrency
  with fast-fail 429 load shedding;
- :mod:`~repro.resilience.deadline` — request deadlines propagated down
  to cooperative cancellation of in-flight analyses;
- :mod:`~repro.resilience.breaker` — circuit breakers around the worker
  pool and the persistent disk cache;
- :mod:`~repro.resilience.drain` — SIGTERM-initiated graceful drain;
- :mod:`~repro.resilience.chaos` — deterministic fault injection at
  named sites (``REPRO_CHAOS``), so every failure path above is
  exercised by tests and benchmarks instead of trusted on faith.
"""

from repro.resilience.admission import AdmissionController, EndpointLimit, Overloaded
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import Chaos, ChaosSpecError
from repro.resilience.deadline import DEADLINE_REASON, Deadline, DeadlineExceeded
from repro.resilience.drain import DrainState

__all__ = [
    "AdmissionController",
    "Chaos",
    "ChaosSpecError",
    "CircuitBreaker",
    "DEADLINE_REASON",
    "Deadline",
    "DeadlineExceeded",
    "DrainState",
    "EndpointLimit",
    "Overloaded",
]
