"""Graceful-drain lifecycle for the long-lived analysis service.

A :class:`DrainState` tracks the server's lifecycle phase and its
in-flight request count, thread-safely (signal handlers, the event
loop, and test threads all touch it):

- ``serving`` — normal operation; requests enter and exit freely;
- ``draining`` — SIGTERM arrived: ``/v1/healthz`` reports draining (so
  load balancers stop routing here), new work is refused with 503, and
  in-flight requests — including open NDJSON streams — run to
  completion;
- ``stopped`` — the drain finished (or timed out and was forced).

:meth:`wait_idle` blocks until the in-flight count reaches zero or the
drain timeout passes; the caller then force-cancels whatever is left.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["DrainState"]

SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"


class DrainState:
    """Thread-safe lifecycle phase + in-flight request accounting."""

    def __init__(self, metrics=None):
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._phase = SERVING
        self._inflight = 0
        self._metrics = metrics
        self._set_phase_metric(SERVING)

    def _set_phase_metric(self, phase: str) -> None:
        if self._metrics is not None:
            self._metrics.state("serve.phase").set(phase)

    @property
    def phase(self) -> str:
        with self._lock:
            return self._phase

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._phase != SERVING

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def enter(self) -> bool:
        """Register one request; ``False`` when no longer admitting."""
        with self._lock:
            if self._phase != SERVING:
                return False
            self._inflight += 1
            if self._metrics is not None:
                self._metrics.gauge("serve.inflight").set(self._inflight)
            return True

    def exit(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._metrics is not None:
                self._metrics.gauge("serve.inflight").set(self._inflight)
            if self._inflight <= 0:
                self._idle.notify_all()

    def begin_drain(self) -> bool:
        """Flip to draining; ``True`` on the first call, idempotent after."""
        with self._lock:
            if self._phase != SERVING:
                return False
            self._phase = DRAINING
            self._set_phase_metric(DRAINING)
            if self._metrics is not None:
                self._metrics.counter("serve.drain.initiated").inc()
            return True

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until in-flight work finished; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                if not self._idle.wait(timeout=remaining):
                    return False
            return True

    def stop(self, forced: bool) -> None:
        with self._lock:
            self._phase = STOPPED
            self._set_phase_metric(STOPPED)
            if self._metrics is not None and forced:
                self._metrics.counter("serve.drain.forced").inc()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"phase": self._phase, "inflight": self._inflight}

    def __repr__(self) -> str:
        return f"DrainState({self.phase!r}, inflight={self.inflight})"
