"""Hash-consed expression DAGs and compiled batched grid evaluation.

This module provides the two halves of the batched sweep engine:

1. **Interning** (:func:`intern`): rebuild an immutable :class:`Expr`
   tree as a *hash-consed DAG* with structural sharing — one canonical
   node per distinct subexpression, process-wide.  Canonical nodes
   compare by pointer identity (``a is b`` iff structurally equal),
   which makes downstream memoization (the compile cache, the lowering
   memo) cheap and immune to the ``id()``-reuse pitfalls of caching on
   transient objects.  The table holds nodes weakly, so interning never
   leaks expressions that nothing else references.

2. **Compilation** (:func:`compile_expr`): lower the canonical DAG to a
   :class:`GridFn` — a topologically-ordered sequence of vectorized
   NumPy instructions that evaluates *all sweep points at once*.
   Inputs are parameter arrays of shape ``(n_points,)``; each distinct
   subexpression is computed exactly once per grid regardless of how
   often it appears in the tree.

Integer semantics
-----------------
The tree interpreter (`Expr.evaluate` / :func:`evaluate_int`) computes
with exact Python integers.  The compiled fast path uses ``int64``
arrays with a conservative per-instruction magnitude bound; whenever a
result *could* exceed the exact-representable range the evaluation
transparently restarts in **object mode** (NumPy object arrays holding
Python ints), which reproduces Python's arbitrary-precision semantics
element-wise.  ``FloorDiv``/``Mod`` use NumPy's ``floor_divide`` /
``remainder``, which match Python's floored semantics on negative
operands.  Integer ``base ** negative`` (a float in Python) also
escalates to object mode.

Division by zero
----------------
The tree evaluator raises :class:`~repro.errors.EvaluationError` when a
``Div``/``FloorDiv``/``Mod`` denominator is zero.  The batched
evaluator pins the same contract grid-wide: if *any* point's
denominator is zero, the whole grid call raises ``EvaluationError``
naming the offending subexpression (no partial results).

The compile cache keyed by ``(canonical expr, params)`` is bounded
(LRU) and exposes ``expr.compile.hits`` / ``expr.compile.misses``
counters plus a ``symbolic:compile`` tracer span per actual lowering.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.errors import EvaluationError, SymbolicError
from repro.symbolic.expr import (
    Add,
    Div,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Number,
    Pow,
    Symbol,
    sympify,
)

__all__ = [
    "intern",
    "interned_count",
    "GridFn",
    "compile_expr",
    "evaluate_grid",
    "compile_cache_info",
    "clear_compile_cache",
]

# Results with magnitude strictly below 2**63 fit an int64 exactly.
_INT64_LIMIT = 2 ** 63
# Integers up to 2**53 convert to float64 without rounding; anything
# larger mixed into a float operation forces object mode to keep the
# compiled result bit-equal to the interpreter's Python arithmetic.
_FLOAT_EXACT_LIMIT = 2 ** 53


# ---------------------------------------------------------------------------
# Interning (hash-consing)
# ---------------------------------------------------------------------------

#: Canonical node per structural key.  Weak values: a canonical node is
#: dropped as soon as no expression references it anymore.
_intern_table: "weakref.WeakValueDictionary[tuple, Expr]" = weakref.WeakValueDictionary()
_intern_lock = threading.RLock()


def _intern_key(node: Expr, children: tuple[Expr, ...]) -> tuple:
    """Structural identity key of *node* given already-canonical children.

    Children are keyed by ``id()`` — sound precisely because they are
    canonical: one live object per distinct subexpression, and the
    table's weak values keep them alive while any referencing key
    exists (each canonical composite holds strong refs to its
    children).
    """
    cls = type(node).__name__
    if isinstance(node, Number):  # covers Integer, distinguished by cls
        return (cls, node.value, type(node.value).__name__)
    if isinstance(node, Symbol):
        return (cls, node.name)
    return (cls, tuple(id(c) for c in children))


def _rebuild(node: Expr, children: tuple[Expr, ...]) -> Expr:
    """Reconstruct *node* with canonical *children* (no re-simplification:
    the tree is already canonical; smart constructors are not re-run)."""
    if isinstance(node, (Number, Symbol)):
        return node
    if isinstance(node, (Add, Mul, Min, Max)):
        # Identity comparison, not ``==``: Expr equality is structural,
        # and a structurally-equal child may still be a different
        # (non-canonical) object that must be swapped out.
        if len(children) == len(node.args) and all(
            c is original for c, original in zip(children, node.args)
        ):
            return node
        return type(node)(children)
    if isinstance(node, (Pow, Div, FloorDiv, Mod)):
        if children[0] is node.left and children[1] is node.right:
            return node
        return type(node)(children[0], children[1])
    raise SymbolicError(f"cannot intern {type(node).__name__} nodes")


def intern(expr: Expr) -> Expr:
    """Return the canonical hash-consed form of *expr*.

    The result is structurally equal to *expr*, and pointer-identical
    to every other interned expression with the same structure:
    ``intern(a) is intern(b)`` iff ``a == b``.  Interning is idempotent
    (``intern(intern(e)) is intern(e)``) and never mutates its input.
    """
    expr = sympify(expr)
    # Iterative post-order: children are canonicalized before parents.
    memo: dict[int, Expr] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    with _intern_lock:
        while stack:
            node, ready = stack.pop()
            if id(node) in memo:
                continue
            children = node.children()
            if not ready:
                stack.append((node, True))
                for c in children:
                    if id(c) not in memo:
                        stack.append((c, False))
                continue
            canon_children = tuple(memo[id(c)] for c in children)
            key = _intern_key(node, canon_children)
            canonical = _intern_table.get(key)
            if canonical is None:
                canonical = _rebuild(node, canon_children)
                _intern_table[key] = canonical
            memo[id(node)] = canonical
        return memo[id(expr)]


def interned_count() -> int:
    """Number of canonical nodes currently alive in the intern table."""
    with _intern_lock:
        return len(_intern_table)


# ---------------------------------------------------------------------------
# Lowering: canonical DAG -> instruction list
# ---------------------------------------------------------------------------

# Instruction opcodes.  Each instruction is
# ``(op, dst, a, b, payload)`` over a flat slot vector; ``a``/``b`` are
# source slot indices (or -1), ``payload`` carries op-specific data
# (constant value, parameter index, or the subexpression's string form
# for error messages).
_CONST = 0
_PARAM = 1
_ADD = 2
_MUL = 3
_POW = 4
_DIV = 5
_FDIV = 6
_MOD = 7
_MIN = 8
_MAX = 9

_OP_NAMES = {
    _DIV: "division",
    _FDIV: "floor division",
    _MOD: "modulo",
}


class _Escalate(Exception):
    """Internal: int64 fast mode cannot guarantee exactness; rerun in
    object mode."""


class GridFn:
    """A compiled expression: evaluates a whole parameter grid at once.

    Call with a mapping of parameter name to value sequence (all the
    same length ``n``) and get back an array of shape ``(n,)`` holding
    the expression's value at each point.  Results are exact: integer
    results equal :func:`~repro.symbolic.expr.evaluate_int` point for
    point, float results equal ``Expr.evaluate``.
    """

    __slots__ = ("expr", "params", "_program", "_n_slots", "_out_slot")

    def __init__(
        self,
        expr: Expr,
        params: tuple[str, ...],
        program: list[tuple[int, int, int, int, object]],
        n_slots: int,
        out_slot: int,
    ):
        self.expr = expr
        self.params = params
        self._program = program
        self._n_slots = n_slots
        self._out_slot = out_slot

    @property
    def n_ops(self) -> int:
        """Number of instructions (== distinct subexpressions)."""
        return len(self._program)

    def __call__(
        self, grids: Mapping[str, Sequence[int | float]]
    ) -> np.ndarray:
        """Evaluate on per-parameter value arrays of equal length."""
        n: int | None = None
        columns: list[np.ndarray] = []
        object_mode = False
        for name in self.params:
            if name not in grids:
                raise EvaluationError(
                    f"no value provided for symbol {name!r}"
                )
            try:
                col = np.asarray(grids[name])
            except OverflowError:
                col = np.asarray(grids[name], dtype=object)
            if col.ndim != 1:
                col = col.reshape(-1)
            if col.dtype == object or col.dtype.kind not in "if":
                col = np.asarray(list(grids[name]), dtype=object)
                object_mode = True
            if n is None:
                n = col.shape[0]
            elif col.shape[0] != n:
                raise EvaluationError(
                    f"parameter grid for {name!r} has {col.shape[0]} points, "
                    f"expected {n}"
                )
            columns.append(col)
        if n is None:
            n = 1  # constant expression: a single broadcast point
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if not object_mode:
            try:
                return self._run_fast(columns, n)
            except _Escalate:
                object_mode = True
        cols = [
            c
            if c.dtype == object
            else np.array([v.item() for v in c], dtype=object)
            for c in columns
        ]
        return self._run_object(cols, n)

    def eval_points(
        self, envs: Sequence[Mapping[str, int | float]]
    ) -> np.ndarray:
        """Evaluate on a sequence of per-point environments."""
        try:
            grids = {name: [env[name] for env in envs] for name in self.params}
        except KeyError as exc:
            raise EvaluationError(
                f"no value provided for symbol {exc.args[0]!r}"
            ) from exc
        if not self.params:
            out = self(grids)
            return np.broadcast_to(out, (len(envs),)) if len(envs) != 1 else out
        return self(grids)

    # -- int64 fast mode --------------------------------------------------
    def _run_fast(self, columns: list[np.ndarray], n: int) -> np.ndarray:
        vals: list[np.ndarray | np.generic | float | None] = [None] * self._n_slots
        # Magnitude bound per slot; ``None`` marks float-valued slots
        # (floats follow IEEE and need no overflow tracking).
        bounds: list[int | None] = [None] * self._n_slots

        def as_float_operand(slot: int):
            # An int operand feeding a float op must fit float64 exactly.
            b = bounds[slot]
            if b is not None and b > _FLOAT_EXACT_LIMIT:
                raise _Escalate
            return vals[slot]

        for op, dst, a, b, payload in self._program:
            if op == _CONST:
                value = payload
                if isinstance(value, int):
                    if abs(value) >= _INT64_LIMIT:
                        raise _Escalate
                    vals[dst] = np.int64(value)
                    bounds[dst] = abs(value)
                else:
                    vals[dst] = float(value)
                continue
            if op == _PARAM:
                col = columns[payload]
                if col.dtype.kind == "i":
                    col = col.astype(np.int64, copy=False)
                    vals[dst] = col
                    bounds[dst] = max(abs(int(col.min())), abs(int(col.max())))
                else:
                    vals[dst] = col.astype(np.float64, copy=False)
                continue

            ba, bb = bounds[a], bounds[b]
            both_int = ba is not None and bb is not None
            if op == _ADD:
                if both_int:
                    bound = ba + bb
                    if bound >= _INT64_LIMIT:
                        raise _Escalate
                    bounds[dst] = bound
                    vals[dst] = np.add(vals[a], vals[b])
                else:
                    vals[dst] = np.add(as_float_operand(a), as_float_operand(b))
            elif op == _MUL:
                if both_int:
                    bound = ba * bb
                    if bound >= _INT64_LIMIT:
                        raise _Escalate
                    bounds[dst] = bound
                    vals[dst] = np.multiply(vals[a], vals[b])
                else:
                    vals[dst] = np.multiply(
                        as_float_operand(a), as_float_operand(b)
                    )
            elif op == _POW:
                if both_int:
                    exp = vals[b]
                    emin = int(np.min(exp))
                    if emin < 0:
                        raise _Escalate  # int ** negative is a float in Python
                    emax = int(np.max(exp))
                    if ba <= 1:
                        bound = 1
                    elif emax == 0:
                        bound = 1
                    elif emax * math.log2(ba) >= 62.5:
                        raise _Escalate
                    else:
                        bound = ba ** emax
                        if bound >= _INT64_LIMIT:
                            raise _Escalate
                    bounds[dst] = bound
                    vals[dst] = np.power(vals[a], vals[b])
                else:
                    vals[dst] = np.power(
                        as_float_operand(a), as_float_operand(b)
                    )
            elif op in (_DIV, _FDIV, _MOD):
                den = vals[b]
                if np.any(np.equal(den, 0)):
                    raise EvaluationError(
                        f"{_OP_NAMES[op]} by zero in {payload}"
                    )
                if op == _DIV:
                    vals[dst] = np.true_divide(
                        as_float_operand(a), as_float_operand(b)
                    )
                elif both_int:
                    if op == _FDIV:
                        # |a // b| <= max(|a|, 1) for |b| >= 1.
                        bounds[dst] = max(ba, 1)
                        vals[dst] = np.floor_divide(vals[a], vals[b])
                    else:
                        bounds[dst] = bb
                        vals[dst] = np.remainder(vals[a], vals[b])
                else:
                    fa, fb = as_float_operand(a), as_float_operand(b)
                    vals[dst] = (
                        np.floor_divide(fa, fb)
                        if op == _FDIV
                        else np.remainder(fa, fb)
                    )
            elif op == _MIN or op == _MAX:
                fn = np.minimum if op == _MIN else np.maximum
                if both_int:
                    bounds[dst] = max(ba, bb)
                    vals[dst] = fn(vals[a], vals[b])
                else:
                    vals[dst] = fn(as_float_operand(a), as_float_operand(b))

        out = vals[self._out_slot]
        result = np.asarray(out)
        if result.ndim == 0:
            result = np.broadcast_to(result, (n,))
        return result

    # -- exact object mode ------------------------------------------------
    def _run_object(self, columns: list[np.ndarray], n: int) -> np.ndarray:
        """Evaluate with Python objects element-wise: exact big-int
        arithmetic and Python operator semantics throughout."""
        vals: list[object] = [None] * self._n_slots
        for op, dst, a, b, payload in self._program:
            if op == _CONST:
                vals[dst] = payload
            elif op == _PARAM:
                vals[dst] = columns[payload]
            elif op == _ADD:
                vals[dst] = np.add(vals[a], vals[b])
            elif op == _MUL:
                vals[dst] = np.multiply(vals[a], vals[b])
            elif op == _POW:
                vals[dst] = np.power(vals[a], vals[b])
            elif op in (_DIV, _FDIV, _MOD):
                den = vals[b]
                if np.any(np.equal(den, 0)):
                    raise EvaluationError(
                        f"{_OP_NAMES[op]} by zero in {payload}"
                    )
                if op == _DIV:
                    vals[dst] = np.true_divide(vals[a], vals[b])
                elif op == _FDIV:
                    vals[dst] = np.floor_divide(vals[a], vals[b])
                else:
                    vals[dst] = np.remainder(vals[a], vals[b])
            elif op == _MIN:
                vals[dst] = np.minimum(vals[a], vals[b])
            elif op == _MAX:
                vals[dst] = np.maximum(vals[a], vals[b])
        out = vals[self._out_slot]
        result = np.asarray(out, dtype=object)
        if result.ndim == 0:
            result = np.broadcast_to(result, (n,))
        return result


def _lower(expr: Expr, params: tuple[str, ...]) -> GridFn:
    """Lower the canonical DAG rooted at *expr* to a :class:`GridFn`."""
    param_index = {name: i for i, name in enumerate(params)}
    missing = sorted(expr.free_symbols() - set(params))
    if missing:
        raise EvaluationError(
            f"no value provided for symbol {missing[0]!r}"
        )

    program: list[tuple[int, int, int, int, object]] = []
    slot_of: dict[int, int] = {}  # id(canonical node) -> slot

    def emit(op: int, a: int, b: int, payload: object) -> int:
        dst = len(program)
        program.append((op, dst, a, b, payload))
        return dst

    def fold(op: int, slots: list[int], node: Expr) -> int:
        # Left-fold n-ary ops into binary chains, matching the
        # interpreter's sequential accumulation order (relevant for
        # float rounding).
        acc = slots[0]
        payload = str(node) if op in _OP_NAMES else None
        for s in slots[1:]:
            acc = emit(op, acc, s, payload)
        return acc

    # Iterative post-order over the DAG (identity-deduplicated).
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in slot_of:
            continue
        children = node.children()
        if not ready:
            stack.append((node, True))
            for c in children:
                if id(c) not in slot_of:
                    stack.append((c, False))
            continue
        if isinstance(node, Symbol):
            slot = emit(_PARAM, -1, -1, param_index[node.name])
        elif isinstance(node, Number):
            slot = emit(_CONST, -1, -1, node.value)
        elif isinstance(node, Add):
            slot = fold(_ADD, [slot_of[id(c)] for c in children], node)
        elif isinstance(node, Mul):
            # The interpreter seeds the product with int 1, so a pure
            # left-fold over the (canonically sorted) args matches it.
            slot = fold(_MUL, [slot_of[id(c)] for c in children], node)
        elif isinstance(node, Min):
            slot = fold(_MIN, [slot_of[id(c)] for c in children], node)
        elif isinstance(node, Max):
            slot = fold(_MAX, [slot_of[id(c)] for c in children], node)
        elif isinstance(node, Pow):
            slot = emit(_POW, slot_of[id(node.left)], slot_of[id(node.right)], None)
        elif isinstance(node, (Div, FloorDiv, Mod)):
            op = {Div: _DIV, FloorDiv: _FDIV, Mod: _MOD}[type(node)]
            slot = emit(op, slot_of[id(node.left)], slot_of[id(node.right)], str(node))
        else:
            raise SymbolicError(
                f"cannot compile {type(node).__name__} nodes"
            )
        slot_of[id(node)] = slot

    return GridFn(expr, params, program, len(program), slot_of[id(expr)])


# ---------------------------------------------------------------------------
# Compile cache
# ---------------------------------------------------------------------------


class _CompileCache:
    """Bounded LRU of compiled :class:`GridFn` keyed by canonical expr.

    The key holds the *canonical* (interned) expression itself, never a
    raw ``id()``: object ids are recycled by the allocator, so an
    id-keyed cache can silently serve a stale compilation for a new
    expression that happens to reuse the address.  Hashing a canonical
    node is cheap (memoized structural hash, identity fast path).
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, GridFn]" = OrderedDict()

    def lookup(self, key: tuple) -> GridFn | None:
        with self._lock:
            fn = self._entries.get(key)
            if fn is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            else:
                self.misses += 1
            return fn

    def store(self, key: tuple, fn: GridFn) -> None:
        with self._lock:
            self._entries[key] = fn
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def info(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_compile_cache = _CompileCache()


def compile_cache_info() -> dict:
    """Snapshot of the process-wide compile cache (hits/misses/entries)."""
    return _compile_cache.info()


def clear_compile_cache() -> None:
    """Drop all cached compilations and reset the hit/miss counters."""
    _compile_cache.clear()


def compile_expr(
    expr: Expr,
    params: Sequence[str] | None = None,
    *,
    metrics=None,
    tracer=None,
) -> GridFn:
    """Compile *expr* for batched evaluation over *params*.

    *params* defaults to the expression's free symbols (sorted).  The
    compilation is cached per canonical expression; pass a
    ``MetricsRegistry`` as *metrics* to count ``expr.compile.hits`` /
    ``expr.compile.misses``, and a ``Tracer`` as *tracer* to record a
    ``symbolic:compile`` span around each actual lowering.
    """
    expr = sympify(expr)
    if params is None:
        params = tuple(sorted(expr.free_symbols()))
    else:
        params = tuple(params)
    canonical = intern(expr)
    key = (canonical, params)
    fn = _compile_cache.lookup(key)
    if fn is not None:
        if metrics is not None:
            metrics.counter("expr.compile.hits").inc()
        return fn
    if metrics is not None:
        metrics.counter("expr.compile.misses").inc()
    if tracer is not None:
        # Works with both span collectors: the hierarchical Tracer and
        # StageTimings yield an attribute sink with a ``set()`` method.
        with tracer.span("symbolic:compile") as span:
            span.set(expr=str(canonical)[:120])
            fn = _lower(canonical, params)
    elif metrics is not None:
        with metrics.timer("expr.compile.seconds"):
            fn = _lower(canonical, params)
    else:
        fn = _lower(canonical, params)
    _compile_cache.store(key, fn)
    return fn


def evaluate_grid(
    expr: Expr,
    envs: Sequence[Mapping[str, int | float]],
    *,
    metrics=None,
    tracer=None,
) -> np.ndarray:
    """Evaluate *expr* at every environment in *envs* with one compiled
    batched call.  Equivalent to ``[expr.evaluate(env) for env in envs]``
    (and to :func:`evaluate_int` for integer results), but vectorized."""
    fn = compile_expr(expr, metrics=metrics, tracer=tracer)
    return fn.eval_points(envs)
