"""Immutable symbolic expression trees with canonicalizing constructors.

The engine supports exactly the operations the IR and analyses need:
integer/float constants, named symbols, n-ary addition and multiplication,
integer power, true division (for arithmetic-intensity ratios), floor
division and modulo (for index arithmetic), and n-ary ``Min``/``Max``.

Expressions are immutable and hashable; structural equality is value
equality.  Construction goes through the *smart constructors* (:func:`add`,
:func:`mul`, :func:`pow_`, ...) which eagerly apply cheap, always-correct
simplifications: constant folding, flattening of associative operations,
identity/absorbing-element elimination and a canonical term order.  Python
operators on :class:`Expr` delegate to the smart constructors, so
``Symbol("I") * 2 + 3`` builds a canonical tree directly.

Design notes
------------
- All simplification here is *sound for integers and reals alike* except
  ``FloorDiv``/``Mod`` folding, which is only applied to integer constants.
- Expressions over symbols known to be nonnegative (the common case for
  sizes) can be compared with :func:`Expr.is_nonnegative` heuristics used by
  the range algebra.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Mapping, Union

from repro.errors import EvaluationError, SymbolicError

__all__ = [
    "Expr",
    "Number",
    "Integer",
    "Symbol",
    "Add",
    "Mul",
    "Pow",
    "Div",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "sympify",
    "add",
    "sub",
    "mul",
    "neg",
    "div",
    "floor_div",
    "ceiling_div",
    "mod",
    "pow_",
    "smin",
    "smax",
]

#: Anything convertible to an expression.
ExprLike = Union["Expr", int, float, str]


def sympify(value: ExprLike) -> "Expr":
    """Convert *value* into an :class:`Expr`.

    Accepts existing expressions (returned unchanged), Python ints/floats
    (wrapped in :class:`Integer`/:class:`Number`), and strings (parsed with
    :func:`repro.symbolic.parser.parse_expr`).
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise SymbolicError("booleans are not valid symbolic values")
    if isinstance(value, int):
        return Integer(value)
    if isinstance(value, float):
        if value.is_integer():
            return Integer(int(value))
        return Number(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return Integer(value.numerator)
        return Number(float(value))
    if isinstance(value, str):
        # Imported lazily to avoid a circular import at module load time.
        from repro.symbolic.parser import parse_expr

        return parse_expr(value)
    raise SymbolicError(f"cannot convert {value!r} of type {type(value).__name__} to Expr")


class Expr:
    """Base class of all symbolic expression nodes.

    Subclasses must set ``_sort_class`` (canonical ordering rank) and
    implement :meth:`_key`, :meth:`free_symbols`, :meth:`evaluate` and
    :meth:`subs`.
    """

    #: ``__weakref__`` lets the hash-consing intern table
    #: (:mod:`repro.symbolic.compiled`) hold canonical nodes weakly, so
    #: interning never leaks expressions that nothing else references.
    __slots__ = ("_hash", "__weakref__")

    #: Rank used for canonical ordering between node classes.
    _sort_class: int = 99

    # -- identity ---------------------------------------------------------
    def _key(self) -> tuple:
        raise NotImplementedError

    def sort_key(self) -> tuple:
        """Total-order key used to canonically sort commutative operands."""
        return (self._sort_class,) + self._key()

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            if isinstance(other, (int, float)):
                try:
                    other = sympify(other)
                except SymbolicError:
                    return NotImplemented
            else:
                return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((type(self).__name__,) + self._key())
            object.__setattr__(self, "_hash", h)
        return h

    # -- pickling ---------------------------------------------------------
    def __getstate__(self) -> dict:
        """Slot values, minus the memoized ``_hash`` and ``__weakref__``.

        ``_hash`` derives from string hashes, which are salted per
        process (``PYTHONHASHSEED``); persisting it would make an
        unpickled expression hash differently from an equal one built
        fresh in the receiving process.  ``__weakref__`` (the intern
        table's hook) is per-object bookkeeping and not picklable.
        """
        state: dict = {}
        for cls in type(self).__mro__:
            for slot in getattr(cls, "__slots__", ()):
                if slot in ("_hash", "__weakref__"):
                    continue
                try:
                    state[slot] = getattr(self, slot)
                except AttributeError:
                    pass
        return state

    def __setstate__(self, state: dict) -> None:
        # Immutability is enforced through ``__setattr__``; restore the
        # raw slots the way the constructors do.
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- core protocol ----------------------------------------------------
    def free_symbols(self) -> frozenset[str]:
        """Names of all symbols occurring in the expression."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        """Numerically evaluate under the symbol assignment *env*.

        Raises :class:`~repro.errors.EvaluationError` if a free symbol has
        no value in *env*.
        """
        raise NotImplementedError

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Expr":
        """Substitute symbols by name, re-simplifying the result."""
        raise NotImplementedError

    def atoms(self) -> frozenset["Expr"]:
        """All leaf nodes (symbols and constants) in the tree."""
        leaves: set[Expr] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            children = node.children()
            if not children:
                leaves.add(node)
            else:
                stack.extend(children)
        return frozenset(leaves)

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    # -- convenience ------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when the expression contains no free symbols."""
        return not self.free_symbols()

    def is_nonnegative(self) -> bool | None:
        """Best-effort sign analysis: True / False / None (unknown).

        Symbols are *assumed nonnegative* — in this library symbols denote
        data sizes and loop parameters, which are nonnegative by convention
        (the same assumption DaCe makes for its size symbols).
        """
        return None

    # -- operators --------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return add(self, sympify(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return add(sympify(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return sub(self, sympify(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return sub(sympify(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return mul(self, sympify(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return mul(sympify(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return div(self, sympify(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return div(sympify(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return floor_div(self, sympify(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return floor_div(sympify(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return mod(self, sympify(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return mod(sympify(other), self)

    def __pow__(self, other: ExprLike) -> "Expr":
        return pow_(self, sympify(other))

    def __rpow__(self, other: ExprLike) -> "Expr":
        return pow_(sympify(other), self)

    def __neg__(self) -> "Expr":
        return neg(self)

    def __pos__(self) -> "Expr":
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self!s})"


class Number(Expr):
    """A floating-point constant.

    Integer-valued constants are represented by the :class:`Integer`
    subclass; :func:`sympify` normalizes automatically.
    """

    __slots__ = ("value",)
    _sort_class = 0

    def __init__(self, value: float):
        object.__setattr__(self, "value", float(value))

    def __setattr__(self, name, value):  # immutability
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self) -> tuple:
        return (self.value,)

    def free_symbols(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        return self.value

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return self

    def is_nonnegative(self) -> bool | None:
        return self.value >= 0

    def __str__(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Number({self.value!r})"


class Integer(Number):
    """An integer constant."""

    __slots__ = ()

    def __init__(self, value: int):
        object.__setattr__(self, "value", int(value))

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int:
        return self.value

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Integer({self.value})"


#: Shared constants.
ZERO = Integer(0)
ONE = Integer(1)
NEG_ONE = Integer(-1)


class Symbol(Expr):
    """A named free symbol (size parameter, loop variable, ...)."""

    __slots__ = ("name",)
    _sort_class = 1

    def __init__(self, name: str):
        if not name or not name.isidentifier():
            raise SymbolicError(f"invalid symbol name {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Symbol is immutable")

    def _key(self) -> tuple:
        return (self.name,)

    def free_symbols(self) -> frozenset[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        if env is None or self.name not in env:
            raise EvaluationError(f"no value provided for symbol {self.name!r}")
        return env[self.name]

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        if self.name in mapping:
            return sympify(mapping[self.name])
        return self

    def is_nonnegative(self) -> bool | None:
        # Symbols denote sizes / loop indices: assumed nonnegative.
        return True

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"


class _NaryOp(Expr):
    """Shared machinery for commutative n-ary operations (Add/Mul/Min/Max)."""

    __slots__ = ("args",)
    _symbol = "?"

    def __init__(self, args: tuple[Expr, ...]):
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self) -> tuple:
        return tuple(a.sort_key() for a in self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_symbols()
        return out


class Add(_NaryOp):
    """Canonical n-ary sum.  Built via :func:`add`."""

    __slots__ = ()
    _sort_class = 4
    _symbol = "+"

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        return sum(a.evaluate(env) for a in self.args)

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return add(*(a.subs(mapping) for a in self.args))

    def is_nonnegative(self) -> bool | None:
        signs = [a.is_nonnegative() for a in self.args]
        if all(s is True for s in signs):
            return True
        return None

    def __str__(self) -> str:
        parts: list[str] = []
        for i, a in enumerate(self.args):
            s = str(a)
            if i > 0:
                if s.startswith("-"):
                    parts.append(" - ")
                    s = s[1:]
                else:
                    parts.append(" + ")
            parts.append(s)
        return "".join(parts)


class Mul(_NaryOp):
    """Canonical n-ary product.  Built via :func:`mul`."""

    __slots__ = ()
    _sort_class = 3
    _symbol = "*"

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        out: int | float = 1
        for a in self.args:
            out *= a.evaluate(env)
        return out

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return mul(*(a.subs(mapping) for a in self.args))

    def is_nonnegative(self) -> bool | None:
        neg_count = 0
        for a in self.args:
            s = a.is_nonnegative()
            if s is None:
                return None
            if s is False:
                neg_count += 1
        return neg_count % 2 == 0

    def __str__(self) -> str:
        parts: list[str] = []
        args = self.args
        # Render a leading -1 coefficient as a unary minus.
        prefix = ""
        if isinstance(args[0], Integer) and args[0].value == -1 and len(args) > 1:
            prefix = "-"
            args = args[1:]
        for a in args:
            s = str(a)
            # Add binds looser than *, and Div/FloorDiv/Mod share * precedence
            # left-associatively, so all need parentheses as factors.
            if isinstance(a, (Add, Div, FloorDiv, Mod)) or (
                isinstance(a, (Integer, Number)) and a.value < 0
            ):
                s = f"({s})"
            parts.append(s)
        return prefix + "*".join(parts)


class _BinOp(Expr):
    """Shared machinery for non-commutative binary operations."""

    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: Expr, right: Expr):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self) -> tuple:
        return (self.left.sort_key(), self.right.sort_key())

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def free_symbols(self) -> frozenset[str]:
        return self.left.free_symbols() | self.right.free_symbols()

    def _operand_str(self, e: Expr) -> str:
        s = str(e)
        if isinstance(e, (Add, Mul, Div, FloorDiv, Mod, Pow)) or s.startswith("-"):
            return f"({s})"
        return s

    def __str__(self) -> str:
        return f"{self._operand_str(self.left)} {self._symbol} {self._operand_str(self.right)}"


class Pow(_BinOp):
    """Power ``left ** right``.  Built via :func:`pow_`."""

    __slots__ = ()
    _sort_class = 2
    _symbol = "**"

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        return self.left.evaluate(env) ** self.right.evaluate(env)

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return pow_(self.left.subs(mapping), self.right.subs(mapping))

    def is_nonnegative(self) -> bool | None:
        if self.left.is_nonnegative() is True:
            return True
        return None

    def __str__(self) -> str:
        return f"{self._operand_str(self.left)}**{self._operand_str(self.right)}"


class Div(_BinOp):
    """True division ``left / right`` (used for intensity ratios)."""

    __slots__ = ()
    _sort_class = 5
    _symbol = "/"

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        denom = self.right.evaluate(env)
        if denom == 0:
            raise EvaluationError(f"division by zero in {self}")
        return self.left.evaluate(env) / denom

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return div(self.left.subs(mapping), self.right.subs(mapping))

    def is_nonnegative(self) -> bool | None:
        ls, rs = self.left.is_nonnegative(), self.right.is_nonnegative()
        if ls is None or rs is None:
            return None
        return ls == rs


class FloorDiv(_BinOp):
    """Floor division ``left // right`` (index arithmetic)."""

    __slots__ = ()
    _sort_class = 6
    _symbol = "//"

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        denom = self.right.evaluate(env)
        if denom == 0:
            raise EvaluationError(f"floor division by zero in {self}")
        return self.left.evaluate(env) // denom

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return floor_div(self.left.subs(mapping), self.right.subs(mapping))

    def is_nonnegative(self) -> bool | None:
        ls, rs = self.left.is_nonnegative(), self.right.is_nonnegative()
        if ls is True and rs is True:
            return True
        return None


class Mod(_BinOp):
    """Modulo ``left % right`` (index arithmetic, Python semantics)."""

    __slots__ = ()
    _sort_class = 7
    _symbol = "%"

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        denom = self.right.evaluate(env)
        if denom == 0:
            raise EvaluationError(f"modulo by zero in {self}")
        return self.left.evaluate(env) % denom

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return mod(self.left.subs(mapping), self.right.subs(mapping))

    def is_nonnegative(self) -> bool | None:
        if self.right.is_nonnegative() is True:
            return True  # Python % sign follows the divisor
        return None


class Min(_NaryOp):
    """N-ary minimum.  Built via :func:`smin`."""

    __slots__ = ()
    _sort_class = 8

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        return min(a.evaluate(env) for a in self.args)

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return smin(*(a.subs(mapping) for a in self.args))

    def is_nonnegative(self) -> bool | None:
        signs = [a.is_nonnegative() for a in self.args]
        if all(s is True for s in signs):
            return True
        if any(s is False for s in signs):
            return False
        return None

    def __str__(self) -> str:
        return "Min(" + ", ".join(str(a) for a in self.args) + ")"


class Max(_NaryOp):
    """N-ary maximum.  Built via :func:`smax`."""

    __slots__ = ()
    _sort_class = 9

    def evaluate(self, env: Mapping[str, int | float] | None = None) -> int | float:
        return max(a.evaluate(env) for a in self.args)

    def subs(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return smax(*(a.subs(mapping) for a in self.args))

    def is_nonnegative(self) -> bool | None:
        signs = [a.is_nonnegative() for a in self.args]
        if any(s is True for s in signs):
            return True
        if all(s is False for s in signs):
            return False
        return None

    def __str__(self) -> str:
        return "Max(" + ", ".join(str(a) for a in self.args) + ")"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def _const(value: int | float) -> Number:
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, int):
        return Integer(value)
    return Number(value)


def add(*terms: ExprLike) -> Expr:
    """Canonical sum of *terms*.

    Flattens nested sums, folds constants, drops zeros, collects like terms
    (``x + x`` → ``2*x``) and sorts the operands canonically.
    """
    flat: list[Expr] = []
    const: int | float = 0
    stack = [sympify(t) for t in terms]
    stack.reverse()
    while stack:
        t = stack.pop()
        if isinstance(t, Add):
            stack.extend(reversed(t.args))
            continue
        # Distribute a numeric coefficient over a sum at collection time so
        # differences like I - (I - 1) cancel: c*(a + b) -> c*a + c*b.
        # (Doing this here rather than in mul() keeps canonicalization
        # confluent: standalone products never auto-expand.)
        if (
            isinstance(t, Mul)
            and len(t.args) == 2
            and isinstance(t.args[0], Number)
            and isinstance(t.args[1], Add)
        ):
            coeff = t.args[0]
            stack.extend(mul(coeff, child) for child in reversed(t.args[1].args))
            continue
        flat.append(t)

    # Collect like terms keyed by their non-constant factor.
    coeffs: dict[Expr, int | float] = {}
    order: list[Expr] = []
    for t in flat:
        if isinstance(t, Number):
            const += t.value
            continue
        coeff: int | float = 1
        base: Expr = t
        if isinstance(t, Mul) and isinstance(t.args[0], Number):
            coeff = t.args[0].value
            rest = t.args[1:]
            base = rest[0] if len(rest) == 1 else Mul(rest)
        if base not in coeffs:
            coeffs[base] = 0
            order.append(base)
        coeffs[base] += coeff

    out: list[Expr] = []
    for base in order:
        c = coeffs[base]
        if c == 0:
            continue
        if c == 1:
            out.append(base)
        else:
            out.append(mul(_const(c), base))
    if const != 0 or not out:
        out.append(_const(const))
    if len(out) == 1:
        return out[0]
    out.sort(key=Expr.sort_key)
    return Add(tuple(out))


def sub(a: ExprLike, b: ExprLike) -> Expr:
    """``a - b``."""
    return add(sympify(a), neg(sympify(b)))


def neg(a: ExprLike) -> Expr:
    """``-a``."""
    return mul(NEG_ONE, sympify(a))


def mul(*factors: ExprLike) -> Expr:
    """Canonical product of *factors*.

    Flattens nested products, folds constants, short-circuits on zero,
    merges equal bases into powers and sorts operands canonically.
    """
    flat: list[Expr] = []
    const: int | float = 1
    for f in (sympify(f) for f in factors):
        if isinstance(f, Mul):
            flat.extend(f.args)
        else:
            flat.append(f)

    powers: dict[Expr, Expr] = {}
    order: list[Expr] = []
    for f in flat:
        if isinstance(f, Number):
            const *= f.value
            continue
        base, exp = (f.left, f.right) if isinstance(f, Pow) else (f, ONE)
        if base not in powers:
            powers[base] = ZERO
            order.append(base)
        powers[base] = add(powers[base], exp)

    if const == 0:
        return ZERO

    out: list[Expr] = []
    for base in order:
        exp = powers[base]
        p = pow_(base, exp)
        if isinstance(p, Number):
            const *= p.value
        elif not (isinstance(p, Integer) and p.value == 1):
            out.append(p)
    if const == 0:
        return ZERO
    if not out:
        return _const(const)
    out.sort(key=Expr.sort_key)
    if const != 1:
        out.insert(0, _const(const))
    if len(out) == 1:
        return out[0]
    return Mul(tuple(out))


def pow_(base: ExprLike, exp: ExprLike) -> Expr:
    """``base ** exp`` with constant folding and power laws."""
    base = sympify(base)
    exp = sympify(exp)
    if isinstance(exp, Integer):
        if exp.value == 0:
            return ONE
        if exp.value == 1:
            return base
    if isinstance(base, Integer) and base.value == 1:
        return ONE
    if isinstance(base, Number) and isinstance(exp, Number):
        try:
            result = base.value ** exp.value
        except (OverflowError, ZeroDivisionError) as exc:
            raise SymbolicError(f"cannot fold {base}**{exp}: {exc}") from exc
        if isinstance(result, complex):
            raise SymbolicError(f"{base}**{exp} is not real")
        return _const(result)
    if isinstance(base, Pow) and isinstance(exp, Integer) and isinstance(base.right, Integer):
        return pow_(base.left, Integer(base.right.value * exp.value))
    return Pow(base, exp)


def _provably_nonzero(e: Expr) -> bool:
    """True when *e* can be shown to never evaluate to zero.

    Uses the size-symbol bounds (:func:`int_lower_bound` /
    :func:`int_upper_bound`): an expression bounded away from zero on
    either side cannot vanish.  Folds that divide by a sub-expression
    (``x / x -> 1``, ``0 // d -> 0``) are only sound under this check —
    without it they would silently erase a division-by-zero error the
    evaluator is contractually required to raise.
    """
    if isinstance(e, Number):
        return e.value != 0
    lb = int_lower_bound(e)
    if lb is not None and lb >= 1:
        return True
    ub = int_upper_bound(e)
    return ub is not None and ub <= -1


def div(a: ExprLike, b: ExprLike) -> Expr:
    """True division ``a / b`` with cancellation of exact constants."""
    a, b = sympify(a), sympify(b)
    if isinstance(b, Integer) and b.value == 1:
        return a
    if isinstance(b, Integer) and b.value == 0:
        raise SymbolicError(f"symbolic division by zero: {a} / 0")
    if isinstance(a, Integer) and a.value == 0 and _provably_nonzero(b):
        return ZERO
    if isinstance(a, Number) and isinstance(b, Number):
        if isinstance(a, Integer) and isinstance(b, Integer) and a.value % b.value == 0:
            return Integer(a.value // b.value)
        return _const(a.value / b.value)
    if a == b and _provably_nonzero(b):
        return ONE
    return Div(a, b)


def floor_div(a: ExprLike, b: ExprLike) -> Expr:
    """Floor division ``a // b`` with integer constant folding.

    Constant folding uses Python's floor semantics (``(-7) // 2 == -4``),
    matching both the tree evaluator and the compiled grid evaluator.
    """
    a, b = sympify(a), sympify(b)
    if isinstance(b, Integer) and b.value == 1:
        return a
    if isinstance(b, Integer) and b.value == 0:
        raise SymbolicError(f"symbolic floor division by zero: {a} // 0")
    if isinstance(a, Integer) and a.value == 0 and _provably_nonzero(b):
        return ZERO
    if isinstance(a, Integer) and isinstance(b, Integer):
        return Integer(a.value // b.value)
    if a == b and _provably_nonzero(b):
        return ONE
    return FloorDiv(a, b)


def ceiling_div(a: ExprLike, b: ExprLike) -> Expr:
    """Ceiling division ``ceil(a / b)`` expressed as ``(a + b - 1) // b``.

    Assumes a positive divisor, the universal case for tile/line sizes.
    """
    a, b = sympify(a), sympify(b)
    return floor_div(add(a, b, NEG_ONE), b)


def mod(a: ExprLike, b: ExprLike) -> Expr:
    """Modulo ``a % b`` (Python semantics) with integer constant folding.

    Constant folding follows Python's floored modulo, where the sign of
    the result tracks the divisor (``(-7) % 2 == 1``, ``7 % -2 == -1``).
    """
    a, b = sympify(a), sympify(b)
    if isinstance(b, Integer) and b.value == 0:
        raise SymbolicError(f"symbolic modulo by zero: {a} % 0")
    if isinstance(b, Integer) and b.value == 1:
        return ZERO
    if isinstance(a, Integer) and a.value == 0 and _provably_nonzero(b):
        return ZERO
    if isinstance(a, Integer) and isinstance(b, Integer):
        return Integer(a.value % b.value)
    if a == b and _provably_nonzero(b):
        return ZERO
    return Mod(a, b)


def int_lower_bound(expr: Expr) -> int | float | None:
    """Conservative lower bound of *expr* under the size-symbol assumption.

    Symbols in this library denote data sizes and loop extents, which are
    assumed to be **positive integers (>= 1)** — the same convention DaCe
    applies to its size symbols.  Returns ``None`` when no bound can be
    established.
    """
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Symbol):
        return 1
    if isinstance(expr, Add):
        total: int | float = 0
        for a in expr.args:
            lb = int_lower_bound(a)
            if lb is None:
                return None
            total += lb
        return total
    if isinstance(expr, Mul):
        # Positive-constant times bounded rest, or all-nonnegative product.
        first = expr.args[0]
        if isinstance(first, Number) and first.value < 0:
            rest = mul(*expr.args[1:])
            ub = int_upper_bound(rest)
            if ub is None:
                return None
            return first.value * ub
        bounds = [int_lower_bound(a) for a in expr.args]
        if any(b is None or b < 0 for b in bounds):
            return None
        out: int | float = 1
        for b in bounds:
            out *= b  # type: ignore[operand-type]
        return out
    if isinstance(expr, Pow):
        base_lb = int_lower_bound(expr.left)
        if base_lb is not None and base_lb >= 0 and isinstance(expr.right, Integer):
            if expr.right.value >= 0:
                return base_lb ** expr.right.value
        return None
    if isinstance(expr, Min):
        bounds = [int_lower_bound(a) for a in expr.args]
        if any(b is None for b in bounds):
            return None
        return min(bounds)  # type: ignore[arg-type]
    if isinstance(expr, Max):
        known = [b for b in (int_lower_bound(a) for a in expr.args) if b is not None]
        return max(known) if known else None
    if isinstance(expr, Mod):
        if expr.right.is_nonnegative() is True:
            return 0
        return None
    if isinstance(expr, (FloorDiv, Div)):
        num_lb = int_lower_bound(expr.left)
        den_lb = int_lower_bound(expr.right)
        if num_lb is not None and num_lb >= 0 and den_lb is not None and den_lb >= 1:
            return 0
        return None
    return None


def int_upper_bound(expr: Expr) -> int | float | None:
    """Conservative upper bound of *expr* (``None`` when unbounded/unknown).

    Symbols are unbounded above, so any expression growing with a symbol
    has no finite upper bound.
    """
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Symbol):
        return None
    if isinstance(expr, Add):
        total: int | float = 0
        for a in expr.args:
            ub = int_upper_bound(a)
            if ub is None:
                return None
            total += ub
        return total
    if isinstance(expr, Mul):
        first = expr.args[0]
        if isinstance(first, Number) and first.value < 0:
            rest = mul(*expr.args[1:])
            lb = int_lower_bound(rest)
            if lb is None:
                return None
            return first.value * lb
        bounds = [int_upper_bound(a) for a in expr.args]
        lowers = [int_lower_bound(a) for a in expr.args]
        if any(b is None for b in bounds) or any(l is None or l < 0 for l in lowers):
            return None
        out: int | float = 1
        for b in bounds:
            out *= b  # type: ignore[operand-type]
        return out
    if isinstance(expr, Min):
        known = [b for b in (int_upper_bound(a) for a in expr.args) if b is not None]
        return min(known) if known else None
    if isinstance(expr, Max):
        bounds = [int_upper_bound(a) for a in expr.args]
        if any(b is None for b in bounds):
            return None
        return max(bounds)  # type: ignore[arg-type]
    return None


def proves_le(a: Expr, b: Expr) -> bool:
    """True when ``a <= b`` can be proven under the size-symbol assumption."""
    diff = sub(b, a)
    lb = int_lower_bound(diff)
    return lb is not None and lb >= 0


def _minmax(cls: type, fold, args: Iterable[ExprLike]) -> Expr:
    flat: list[Expr] = []
    for a in (sympify(x) for x in args):
        if isinstance(a, cls):
            flat.extend(a.args)  # type: ignore[attr-defined]
        else:
            flat.append(a)
    if not flat:
        raise SymbolicError(f"{cls.__name__} requires at least one argument")
    consts = [a for a in flat if isinstance(a, Number)]
    symbolic: list[Expr] = []
    for a in flat:
        if not isinstance(a, Number) and a not in symbolic:
            symbolic.append(a)
    out = list(symbolic)
    if consts:
        out.append(_const(fold(c.value for c in consts)))
    # Prune arguments provably dominated by another argument: for Min drop
    # any a with some b <= a; for Max drop any a with some b >= a.  This is
    # what lets propagated bounds like Min(0, I-1) fold to 0 under the
    # positive-size-symbol assumption.
    if len(out) > 1:
        keep: list[Expr] = []
        for i, a in enumerate(out):
            dominated = False
            for j, b in enumerate(out):
                if i == j:
                    continue
                if cls is Min:
                    better = proves_le(b, a)
                else:
                    better = proves_le(a, b)
                if better:
                    # Tie-break equal arguments by index to keep exactly one.
                    if (cls is Min and proves_le(a, b)) or (
                        cls is Max and proves_le(b, a)
                    ):
                        if j < i:
                            dominated = True
                            break
                    else:
                        dominated = True
                        break
            if not dominated:
                keep.append(a)
        out = keep
    if len(out) == 1:
        return out[0]
    out.sort(key=Expr.sort_key)
    return cls(tuple(out))


def smin(*args: ExprLike) -> Expr:
    """N-ary symbolic minimum with constant folding and deduplication."""
    return _minmax(Min, min, args)


def smax(*args: ExprLike) -> Expr:
    """N-ary symbolic maximum with constant folding and deduplication."""
    return _minmax(Max, max, args)


def symbols(names: str) -> tuple[Symbol, ...]:
    """Create several symbols at once: ``I, J, K = symbols("I J K")``."""
    return tuple(Symbol(n) for n in names.replace(",", " ").split())


def evaluate_int(expr: ExprLike, env: Mapping[str, int | float] | None = None) -> int:
    """Evaluate *expr* and require an integral result.

    Raises :class:`~repro.errors.EvaluationError` when the result is not an
    integer (within floating-point tolerance for float intermediates).
    """
    value = sympify(expr).evaluate(env)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        rounded = round(value)
        if math.isclose(value, rounded, rel_tol=0, abs_tol=1e-9):
            return int(rounded)
    raise EvaluationError(f"expected an integer result from {expr}, got {value!r}")
