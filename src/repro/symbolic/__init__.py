"""Symbolic expression engine.

The IR annotates memlets, map ranges and data descriptors with *symbolic*
integer expressions (e.g. data-movement volumes such as ``B*H*SM*SM``), which
the global view re-evaluates on the fly when the user changes parameter
values (the paper's "parametric scaling analysis", Section IV-D).

This subpackage implements that engine from scratch:

- :mod:`repro.symbolic.expr` — immutable expression trees with eager
  canonicalizing constructors (:class:`Symbol`, :class:`Integer`, ``Add``,
  ``Mul``, ``Pow``, ``FloorDiv``, ``Mod``, ``Min``, ``Max``...);
  simplification and evaluation live in the constructors and node methods.
- :mod:`repro.symbolic.parser` — parse strings like ``"(I+4)*(J+4)*K"`` into
  expression trees (round-trips with ``str()``).
- :mod:`repro.symbolic.ranges` — inclusive integer ranges and
  multi-dimensional subsets with symbolic bounds, the building block of
  memlet subsets and map iteration spaces.
"""

from repro.symbolic.expr import (
    Add,
    Div,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Number,
    Pow,
    Symbol,
    add,
    ceiling_div,
    div,
    floor_div,
    mod,
    mul,
    neg,
    pow_,
    smax,
    smin,
    sub,
    symbols,
    sympify,
    evaluate_int,
)
from repro.symbolic.parser import parse_expr
from repro.symbolic.ranges import Range, Subset

__all__ = [
    "Expr",
    "Number",
    "Integer",
    "Symbol",
    "Add",
    "Mul",
    "Pow",
    "Div",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "add",
    "sub",
    "mul",
    "neg",
    "div",
    "floor_div",
    "ceiling_div",
    "mod",
    "pow_",
    "smin",
    "smax",
    "symbols",
    "sympify",
    "evaluate_int",
    "parse_expr",
    "Range",
    "Subset",
]
