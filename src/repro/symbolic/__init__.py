"""Symbolic expression engine.

The IR annotates memlets, map ranges and data descriptors with *symbolic*
integer expressions (e.g. data-movement volumes such as ``B*H*SM*SM``), which
the global view re-evaluates on the fly when the user changes parameter
values (the paper's "parametric scaling analysis", Section IV-D).

This subpackage implements that engine from scratch:

- :mod:`repro.symbolic.expr` — immutable expression trees with eager
  canonicalizing constructors (:class:`Symbol`, :class:`Integer`, ``Add``,
  ``Mul``, ``Pow``, ``FloorDiv``, ``Mod``, ``Min``, ``Max``...);
  simplification and evaluation live in the constructors and node methods.
- :mod:`repro.symbolic.parser` — parse strings like ``"(I+4)*(J+4)*K"`` into
  expression trees (round-trips with ``str()``).
- :mod:`repro.symbolic.ranges` — inclusive integer ranges and
  multi-dimensional subsets with symbolic bounds, the building block of
  memlet subsets and map iteration spaces.
- :mod:`repro.symbolic.compiled` — hash-consed DAG interning
  (:func:`intern`) and batched compilation (:func:`compile_expr`):
  evaluate a symbolic metric over a whole parameter grid with one
  sequence of vectorized NumPy ops, proven equal to the tree
  interpreter by the differential suite in ``tests/test_compiled_expr.py``.
"""

from repro.symbolic.compiled import (
    GridFn,
    clear_compile_cache,
    compile_cache_info,
    compile_expr,
    evaluate_grid,
    intern,
    interned_count,
)
from repro.symbolic.expr import (
    Add,
    Div,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Number,
    Pow,
    Symbol,
    add,
    ceiling_div,
    div,
    floor_div,
    mod,
    mul,
    neg,
    pow_,
    smax,
    smin,
    sub,
    symbols,
    sympify,
    evaluate_int,
)
from repro.symbolic.parser import parse_expr
from repro.symbolic.ranges import Range, Subset

__all__ = [
    "Expr",
    "Number",
    "Integer",
    "Symbol",
    "Add",
    "Mul",
    "Pow",
    "Div",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "add",
    "sub",
    "mul",
    "neg",
    "div",
    "floor_div",
    "ceiling_div",
    "mod",
    "pow_",
    "smin",
    "smax",
    "symbols",
    "sympify",
    "evaluate_int",
    "parse_expr",
    "Range",
    "Subset",
    "GridFn",
    "intern",
    "interned_count",
    "compile_expr",
    "evaluate_grid",
    "compile_cache_info",
    "clear_compile_cache",
]
