"""Parse strings into symbolic expressions.

The grammar is the arithmetic subset of Python expressions: integer and
float literals, identifiers (symbols), ``+ - * / // % **``, unary ``+ -``,
parentheses, and the function calls ``Min(...)``, ``Max(...)``,
``min(...)``, ``max(...)``, ``ceil_div(a, b)``.

``str(parse_expr(s))`` round-trips: parsing the printed form yields an
equal expression.
"""

from __future__ import annotations

import ast

from repro.errors import ParseError
from repro.symbolic import expr as E

__all__ = ["parse_expr"]


_BINOPS = {
    ast.Add: lambda a, b: E.add(a, b),
    ast.Sub: E.sub,
    ast.Mult: lambda a, b: E.mul(a, b),
    ast.Div: E.div,
    ast.FloorDiv: E.floor_div,
    ast.Mod: E.mod,
    ast.Pow: E.pow_,
}

_FUNCS = {
    "min": E.smin,
    "max": E.smax,
    "Min": E.smin,
    "Max": E.smax,
    "ceil_div": E.ceiling_div,
}


def parse_expr(text: str) -> E.Expr:
    """Parse *text* into a canonical :class:`~repro.symbolic.expr.Expr`.

    Raises :class:`~repro.errors.ParseError` on syntax errors or
    unsupported constructs.
    """
    if not isinstance(text, str):
        raise ParseError(f"expected a string, got {type(text).__name__}")
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as exc:
        raise ParseError(f"cannot parse expression {text!r}: {exc.msg}") from exc
    return _convert(tree.body, text)


def _convert(node: ast.expr, source: str) -> E.Expr:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            raise ParseError(f"unsupported literal {node.value!r} in {source!r}")
        return E.sympify(node.value)
    if isinstance(node, ast.Name):
        return E.Symbol(node.id)
    if isinstance(node, ast.BinOp):
        op = type(node.op)
        if op not in _BINOPS:
            raise ParseError(f"unsupported operator {op.__name__} in {source!r}")
        return _BINOPS[op](_convert(node.left, source), _convert(node.right, source))
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            return E.neg(_convert(node.operand, source))
        if isinstance(node.op, ast.UAdd):
            return _convert(node.operand, source)
        raise ParseError(f"unsupported unary operator in {source!r}")
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _FUNCS:
            func = getattr(node.func, "id", ast.dump(node.func))
            raise ParseError(f"unsupported function {func!r} in {source!r}")
        if node.keywords:
            raise ParseError(f"keyword arguments are not supported in {source!r}")
        args = [_convert(a, source) for a in node.args]
        try:
            return _FUNCS[node.func.id](*args)
        except TypeError as exc:
            raise ParseError(f"bad arguments to {node.func.id} in {source!r}: {exc}") from exc
    raise ParseError(f"unsupported syntax {type(node).__name__} in {source!r}")
