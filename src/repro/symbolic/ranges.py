"""Integer ranges and multi-dimensional subsets with symbolic bounds.

These are the building blocks of memlet subsets (what part of an array an
edge moves) and map iteration spaces (which index combinations a parallel
loop executes).

Conventions
-----------
- A :class:`Range` stores ``(begin, end, step)`` with an **inclusive** end,
  mirroring the DaCe convention: ``Range(0, N-1)`` covers ``0..N-1``.
- The *string* form uses Python-style half-open slices for familiarity:
  ``"0:N"`` parses to ``Range(0, N-1)``; a bare expression ``"i"`` parses to
  the point ``Range(i, i)``; ``"0:N:2"`` parses to ``Range(0, N-1, 2)``.
  Printing inverts this mapping, so parse/print round-trips.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import EvaluationError, ParseError, SymbolicError
from repro.symbolic.expr import (
    Expr,
    ExprLike,
    Integer,
    add,
    evaluate_int,
    floor_div,
    mul,
    sub,
    sympify,
)

__all__ = ["Range", "Subset"]


class Range:
    """A one-dimensional symbolic range ``begin:end:step`` (end inclusive)."""

    __slots__ = ("begin", "end", "step")

    def __init__(self, begin: ExprLike, end: ExprLike, step: ExprLike = 1):
        self.begin = sympify(begin)
        self.end = sympify(end)
        self.step = sympify(step)
        if isinstance(self.step, Integer) and self.step.value == 0:
            raise SymbolicError("range step cannot be zero")

    # -- construction -----------------------------------------------------
    @classmethod
    def point(cls, index: ExprLike) -> "Range":
        """The single-element range covering exactly *index*."""
        index = sympify(index)
        return cls(index, index)

    @classmethod
    def from_string(cls, text: str) -> "Range":
        """Parse a Python-slice-style string (see module docstring)."""
        parts = _split_top_level(text, ":")
        if len(parts) == 1:
            return cls.point(sympify(parts[0].strip()))
        if len(parts) == 2:
            begin, end_excl = (sympify(p.strip()) for p in parts)
            return cls(begin, sub(end_excl, 1))
        if len(parts) == 3:
            begin = sympify(parts[0].strip())
            end_excl = sympify(parts[1].strip())
            step = sympify(parts[2].strip())
            return cls(begin, sub(end_excl, 1), step)
        raise ParseError(f"invalid range string {text!r}")

    # -- properties -------------------------------------------------------
    @property
    def is_point(self) -> bool:
        """True when the range statically covers exactly one index."""
        return self.begin == self.end

    def num_elements(self) -> Expr:
        """Number of covered indices: ``(end - begin) // step + 1``."""
        if self.is_point:
            return Integer(1)
        span = sub(self.end, self.begin)
        if self.step == Integer(1):
            return add(span, 1)
        return add(floor_div(span, self.step), 1)

    def free_symbols(self) -> frozenset[str]:
        return self.begin.free_symbols() | self.end.free_symbols() | self.step.free_symbols()

    # -- transformation ---------------------------------------------------
    def subs(self, mapping: Mapping[str, ExprLike]) -> "Range":
        return Range(self.begin.subs(mapping), self.end.subs(mapping), self.step.subs(mapping))

    def offset_by(self, delta: ExprLike) -> "Range":
        """Shift both bounds by *delta* (step unchanged)."""
        delta = sympify(delta)
        return Range(add(self.begin, delta), add(self.end, delta), self.step)

    def scaled_by(self, factor: ExprLike) -> "Range":
        """Multiply bounds and step by *factor*."""
        factor = sympify(factor)
        return Range(mul(self.begin, factor), mul(self.end, factor), mul(self.step, factor))

    # -- concretization ---------------------------------------------------
    def concretize(self, env: Mapping[str, int | float] | None = None) -> range:
        """Evaluate to a Python :class:`range` (end exclusive, as usual)."""
        begin = evaluate_int(self.begin, env)
        end = evaluate_int(self.end, env)
        step = evaluate_int(self.step, env)
        if step == 0:
            raise EvaluationError("range step evaluated to zero")
        if step > 0:
            return range(begin, end + 1, step)
        return range(begin, end - 1, step)

    def iter_indices(self, env: Mapping[str, int | float] | None = None) -> Iterator[int]:
        """Iterate the concrete indices covered by this range."""
        return iter(self.concretize(env))

    def size(self, env: Mapping[str, int | float] | None = None) -> int:
        """Concrete number of covered indices."""
        return len(self.concretize(env))

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return (self.begin, self.end, self.step) == (other.begin, other.end, other.step)

    def __hash__(self) -> int:
        return hash((Range, self.begin, self.end, self.step))

    def __str__(self) -> str:
        if self.is_point:
            return str(self.begin)
        end_excl = add(self.end, 1)
        if self.step == Integer(1):
            return f"{self.begin}:{end_excl}"
        return f"{self.begin}:{end_excl}:{self.step}"

    def __repr__(self) -> str:
        return f"Range({self.begin!s}, {self.end!s}, {self.step!s})"


class Subset:
    """A multi-dimensional subset: one :class:`Range` per dimension."""

    __slots__ = ("ranges",)

    def __init__(self, ranges: Iterable[Range]):
        self.ranges = tuple(ranges)
        if not all(isinstance(r, Range) for r in self.ranges):
            raise SymbolicError("Subset requires Range elements")

    # -- construction -----------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Subset":
        """Parse ``"0:N, i, 2*j:2*j+2"`` into a subset (see module doc)."""
        dims = _split_top_level(text, ",")
        if dims == [""]:
            raise ParseError("empty subset string")
        return cls(Range.from_string(d) for d in dims)

    @classmethod
    def from_indices(cls, indices: Sequence[ExprLike]) -> "Subset":
        """A point subset from per-dimension index expressions."""
        return cls(Range.point(i) for i in indices)

    @classmethod
    def full(cls, shape: Sequence[ExprLike]) -> "Subset":
        """The subset covering an entire array of the given *shape*."""
        return cls(Range(0, sub(sympify(s), 1)) for s in shape)

    # -- properties -------------------------------------------------------
    @property
    def dims(self) -> int:
        return len(self.ranges)

    @property
    def is_point(self) -> bool:
        return all(r.is_point for r in self.ranges)

    def indices(self) -> tuple[Expr, ...]:
        """For a point subset, the per-dimension index expressions."""
        if not self.is_point:
            raise SymbolicError(f"subset {self} is not a single point")
        return tuple(r.begin for r in self.ranges)

    def num_elements(self) -> Expr:
        """Total number of covered elements (product over dimensions)."""
        if not self.ranges:
            return Integer(1)
        return mul(*(r.num_elements() for r in self.ranges))

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for r in self.ranges:
            out |= r.free_symbols()
        return out

    # -- transformation ---------------------------------------------------
    def subs(self, mapping: Mapping[str, ExprLike]) -> "Subset":
        return Subset(r.subs(mapping) for r in self.ranges)

    def permuted(self, order: Sequence[int]) -> "Subset":
        """Reorder dimensions: new dim *k* is old dim ``order[k]``."""
        if sorted(order) != list(range(self.dims)):
            raise SymbolicError(f"invalid permutation {order!r} for {self.dims} dims")
        return Subset(self.ranges[i] for i in order)

    # -- concretization ---------------------------------------------------
    def concretize(self, env: Mapping[str, int | float] | None = None) -> tuple[range, ...]:
        """Evaluate each dimension to a Python :class:`range`."""
        return tuple(r.concretize(env) for r in self.ranges)

    def iter_points(
        self, env: Mapping[str, int | float] | None = None
    ) -> Iterator[tuple[int, ...]]:
        """Iterate all concrete index tuples in row-major (last dim fastest)."""
        concrete = self.concretize(env)
        if not concrete:
            yield ()
            return
        # Manual odometer: avoids itertools.product materializing iterators
        # anew and keeps deterministic row-major order.
        iters = [list(c) for c in concrete]
        if any(not it for it in iters):
            return
        pos = [0] * len(iters)
        while True:
            yield tuple(it[p] for it, p in zip(iters, pos))
            dim = len(iters) - 1
            while dim >= 0:
                pos[dim] += 1
                if pos[dim] < len(iters[dim]):
                    break
                pos[dim] = 0
                dim -= 1
            if dim < 0:
                return

    def size(self, env: Mapping[str, int | float] | None = None) -> int:
        """Concrete total number of covered elements."""
        total = 1
        for c in self.concretize(env):
            total *= len(c)
        return total

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subset):
            return NotImplemented
        return self.ranges == other.ranges

    def __hash__(self) -> int:
        return hash((Subset, self.ranges))

    def __str__(self) -> str:
        return ", ".join(str(r) for r in self.ranges)

    def __repr__(self) -> str:
        return f"Subset[{self!s}]"


def _split_top_level(text: str, sep: str) -> list[str]:
    """Split *text* on *sep* outside parentheses/brackets."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced parentheses in {text!r}")
        if ch == sep and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ParseError(f"unbalanced parentheses in {text!r}")
    parts.append("".join(current).strip())
    return parts
