"""Dataflow graph node types.

Node taxonomy (mirroring SDFGs):

- :class:`AccessNode` — a read/write point of a named data container.
- :class:`Tasklet` — a fine-grained computation with named connectors and a
  Python-expression code body (the unit the arithmetic-operation counter
  analyzes).
- :class:`MapEntry` / :class:`MapExit` — the boundary of a *parametric
  parallel scope* ("parallel loops ... shown as boxes with trapezoidal
  header bars", paper Section V-A).  Both share one :class:`Map` object
  holding the parameters and their symbolic ranges.
- :class:`NestedSDFG` — a whole SDFG embedded as a node (graph folding in
  the global view collapses these).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import ReproError
from repro.symbolic.expr import Expr, ExprLike
from repro.symbolic.ranges import Range, Subset

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdfg.sdfg import SDFG

__all__ = ["Node", "AccessNode", "Tasklet", "Map", "MapEntry", "MapExit", "NestedSDFG"]

_node_counter = itertools.count()


class Node:
    """Base class of dataflow nodes.

    Nodes have identity semantics (two access nodes for the same array are
    distinct graph nodes) plus a stable, globally unique id used for
    deterministic ordering and serialization.
    """

    __slots__ = ("uid", "in_connectors", "out_connectors")

    def __init__(
        self,
        in_connectors: Sequence[str] = (),
        out_connectors: Sequence[str] = (),
    ):
        self.uid = next(_node_counter)
        self.in_connectors: list[str] = list(in_connectors)
        self.out_connectors: list[str] = list(out_connectors)

    def add_in_connector(self, name: str) -> str:
        if name not in self.in_connectors:
            self.in_connectors.append(name)
        return name

    def add_out_connector(self, name: str) -> str:
        if name not in self.out_connectors:
            self.out_connectors.append(name)
        return name

    @property
    def label(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label}, uid={self.uid})"


class AccessNode(Node):
    """A point where a named data container is read or written."""

    __slots__ = ("data",)

    def __init__(self, data: str):
        super().__init__()
        if not data:
            raise ReproError("AccessNode requires a container name")
        self.data = data

    @property
    def label(self) -> str:
        return self.data


class Tasklet(Node):
    """A fine-grained computation.

    The *code* is a single Python expression statement of the form
    ``out_conn = <expression over in connectors>`` (or several such
    statements separated by semicolons/newlines).  Connector names bind the
    code to incoming/outgoing memlets.
    """

    __slots__ = ("name", "code")

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: str,
    ):
        super().__init__(in_connectors=inputs, out_connectors=outputs)
        self.name = name
        if not outputs:
            raise ReproError(f"tasklet {name!r} requires at least one output")
        self.code = code

    @property
    def label(self) -> str:
        return self.name


class Map:
    """A parametric parallel iteration space shared by an entry/exit pair."""

    __slots__ = ("label", "params", "ranges")

    def __init__(self, label: str, params: Sequence[str], ranges: Sequence[Range]):
        if len(params) != len(ranges):
            raise ReproError(
                f"map {label!r}: {len(params)} params but {len(ranges)} ranges"
            )
        if len(set(params)) != len(params):
            raise ReproError(f"map {label!r} has duplicate parameters")
        self.label = label
        self.params: list[str] = list(params)
        self.ranges: list[Range] = list(ranges)

    @property
    def iteration_space(self) -> Subset:
        """The map's iteration space as a subset (one range per param)."""
        return Subset(self.ranges)

    def num_iterations(self) -> Expr:
        """Symbolic total number of iterations."""
        return self.iteration_space.num_elements()

    def range_of(self, param: str) -> Range:
        try:
            return self.ranges[self.params.index(param)]
        except ValueError:
            raise ReproError(f"map {self.label!r} has no parameter {param!r}") from None

    def reordered(self, order: Sequence[int]) -> "Map":
        """A copy with permuted parameter order (the loop-reorder transform)."""
        if sorted(order) != list(range(len(self.params))):
            raise ReproError(f"invalid parameter order {order!r}")
        return Map(
            self.label,
            [self.params[i] for i in order],
            [self.ranges[i] for i in order],
        )

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Map":
        """Substitute symbols in the ranges (not the parameter names)."""
        return Map(self.label, self.params, [r.subs(mapping) for r in self.ranges])

    def __repr__(self) -> str:
        space = ", ".join(f"{p}={r}" for p, r in zip(self.params, self.ranges))
        return f"Map({self.label}: {space})"


class MapEntry(Node):
    """Scope-opening node of a parallel map.

    Connector convention: data entering the scope arrives at ``IN_<name>``
    and leaves toward the scope body from ``OUT_<name>``.
    """

    __slots__ = ("map", "exit_node")

    def __init__(self, map_obj: Map):
        super().__init__()
        self.map = map_obj
        #: Set by the state when the matching exit is created.
        self.exit_node: "MapExit | None" = None

    @property
    def label(self) -> str:
        return self.map.label


class MapExit(Node):
    """Scope-closing node of a parallel map (connectors mirror the entry)."""

    __slots__ = ("map", "entry_node")

    def __init__(self, map_obj: Map, entry: MapEntry):
        super().__init__()
        self.map = map_obj
        self.entry_node = entry
        entry.exit_node = self

    @property
    def label(self) -> str:
        return self.map.label


class NestedSDFG(Node):
    """An SDFG embedded as a single dataflow node.

    ``symbol_mapping`` maps inner symbol names to outer expressions,
    enabling the parametric analyses to see through the nesting.
    """

    __slots__ = ("sdfg", "symbol_mapping")

    def __init__(
        self,
        sdfg: "SDFG",
        inputs: Sequence[str],
        outputs: Sequence[str],
        symbol_mapping: Mapping[str, ExprLike] | None = None,
    ):
        super().__init__(in_connectors=inputs, out_connectors=outputs)
        self.sdfg = sdfg
        self.symbol_mapping: dict[str, ExprLike] = dict(symbol_mapping or {})

    @property
    def label(self) -> str:
        return self.sdfg.name
