"""Structural validation of SDFGs.

Checks the invariants every analysis in this library relies on; run via
:meth:`repro.sdfg.sdfg.SDFG.validate`.
"""

from __future__ import annotations

from repro.errors import InvalidSDFGError
from repro.graph import has_cycle
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, NestedSDFG, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState

__all__ = ["validate_sdfg", "validate_state"]


def validate_sdfg(sdfg: SDFG) -> None:
    """Validate *sdfg*; raises :class:`InvalidSDFGError` on violations."""
    if not sdfg.states():
        raise InvalidSDFGError(f"SDFG {sdfg.name!r} has no states", sdfg)
    names = [s.name for s in sdfg.states()]
    if len(set(names)) != len(names):
        raise InvalidSDFGError(f"duplicate state names in {sdfg.name!r}", sdfg)
    for state in sdfg.states():
        validate_state(state, sdfg)
    for node in _all_nested(sdfg):
        node.sdfg.validate()


def _all_nested(sdfg: SDFG) -> list[NestedSDFG]:
    return [
        n
        for state in sdfg.states()
        for n in state.nodes()
        if isinstance(n, NestedSDFG)
    ]


def _check_bounds(memlet, desc, edge) -> None:
    """Flag subsets provably outside the container's extent.

    Only *provable* violations raise: when both a subset bound and the
    corresponding shape extent are integer constants (symbolic bounds with
    free parameters are checked at simulation time instead).
    """
    from repro.symbolic.expr import Integer

    for dim, (rng, extent) in enumerate(zip(memlet.subset.ranges, desc.shape)):
        if isinstance(rng.begin, Integer) and rng.begin.value < 0:
            raise InvalidSDFGError(
                f"memlet {memlet!r} dimension {dim} starts at negative index "
                f"{rng.begin}",
                edge,
            )
        if (
            isinstance(rng.end, Integer)
            and isinstance(extent, Integer)
            and rng.end.value >= extent.value
        ):
            raise InvalidSDFGError(
                f"memlet {memlet!r} dimension {dim} ends at {rng.end} but "
                f"container extent is {extent}",
                edge,
            )


def validate_state(state: SDFGState, sdfg: SDFG | None = None) -> None:
    """Validate a single dataflow state."""
    sdfg = sdfg or state.sdfg
    if has_cycle(state.graph):
        raise InvalidSDFGError(f"state {state.name!r} contains a dataflow cycle", state)

    for node in state.nodes():
        if isinstance(node, AccessNode):
            if sdfg is not None and node.data not in sdfg.arrays:
                raise InvalidSDFGError(
                    f"access node references undefined container {node.data!r}",
                    node,
                )
        if isinstance(node, Tasklet):
            if not state.out_edges(node):
                raise InvalidSDFGError(
                    f"tasklet {node.name!r} has no outgoing edges", node
                )
        if isinstance(node, MapEntry):
            if node.exit_node is None or not state.graph.has_node(node.exit_node):
                raise InvalidSDFGError(
                    f"map entry {node.label!r} has no matching exit in the state",
                    node,
                )

    for edge in state.edges():
        conn = edge.data
        if conn is None:
            raise InvalidSDFGError("edge is missing its Connection payload", edge)
        memlet = conn.memlet
        if memlet is None:
            continue  # empty (ordering-only) edge
        if sdfg is not None:
            if memlet.data not in sdfg.arrays:
                raise InvalidSDFGError(
                    f"memlet references undefined container {memlet.data!r}", edge
                )
            desc = sdfg.arrays[memlet.data]
            if memlet.subset.dims != len(desc.shape):
                raise InvalidSDFGError(
                    f"memlet {memlet!r} has {memlet.subset.dims} dims but "
                    f"container {memlet.data!r} has rank {len(desc.shape)}",
                    edge,
                )
            _check_bounds(memlet, desc, edge)
        # Connector consistency.
        if conn.src_conn is not None and conn.src_conn not in edge.src.out_connectors:
            raise InvalidSDFGError(
                f"source connector {conn.src_conn!r} missing on {edge.src!r}", edge
            )
        if conn.dst_conn is not None and conn.dst_conn not in edge.dst.in_connectors:
            raise InvalidSDFGError(
                f"destination connector {conn.dst_conn!r} missing on {edge.dst!r}",
                edge,
            )

    # Scope balance: every map entry reachable set must close at its exit.
    try:
        state.scope_dict()
    except Exception as exc:  # noqa: BLE001 — scope computation signals imbalance
        raise InvalidSDFGError(f"invalid scope structure: {exc}", state) from exc

    # Tasklet connector/edge agreement.
    for node in state.tasklets():
        in_conns = {e.data.dst_conn for e in state.in_edges(node) if e.data.dst_conn}
        for conn in node.in_connectors:
            if conn not in in_conns:
                raise InvalidSDFGError(
                    f"tasklet {node.name!r} input connector {conn!r} is not fed "
                    "by any edge",
                    node,
                )
        out_conns = {e.data.src_conn for e in state.out_edges(node) if e.data.src_conn}
        for conn in node.out_connectors:
            if conn not in out_conns:
                raise InvalidSDFGError(
                    f"tasklet {node.name!r} output connector {conn!r} has no "
                    "outgoing edge",
                    node,
                )
