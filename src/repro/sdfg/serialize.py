"""JSON serialization and content hashing of SDFGs.

The paper's tool ships SDFGs from the analysis backend to the renderer as
JSON documents; this module provides the equivalent round-trippable format.
All symbolic expressions serialize as strings (re-parsed on load), node
cross-references serialize as per-state indices.

The same canonical documents double as *content fingerprints* for the
incremental analysis pipeline (:mod:`repro.passes`): every node, edge,
state, data descriptor and whole SDFG hashes to a stable hex digest.
Digests are SHA-256 over canonical JSON — dictionary keys sorted, compact
separators — so they are independent of dict construction order, process
hash seeds, and round trips through :func:`dumps`/:func:`loads`.  Two
orderings *are* semantic and therefore preserved in the hash document:

- graph (node/edge) order, which fixes the simulated execution sequence;
- container registration order, which fixes the physical allocation
  order :class:`~repro.simulation.layout.MemoryModel` assigns addresses by
  (hashed as an ordered name/descriptor pair list, not a JSON object).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import ReproError
from repro.sdfg import dtypes
from repro.sdfg.data import Array, Data, Scalar
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, Map, MapEntry, MapExit, NestedSDFG, Node, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.symbolic.ranges import Range, Subset

__all__ = [
    "to_json",
    "from_json",
    "dumps",
    "loads",
    "canonical_json",
    "data_fingerprint",
    "node_fingerprint",
    "edge_fingerprint",
    "state_fingerprint",
    "arrays_fingerprint",
    "sdfg_fingerprint",
]


# -- serialization -----------------------------------------------------------


def _data_to_json(desc: Data) -> dict[str, Any]:
    if isinstance(desc, Scalar):
        return {
            "type": "Scalar",
            "dtype": desc.dtype.name,
            "transient": desc.transient,
        }
    if isinstance(desc, Array):
        return {
            "type": "Array",
            "dtype": desc.dtype.name,
            "shape": [str(s) for s in desc.shape],
            "strides": [str(s) for s in desc.strides],
            "start_offset": str(desc.start_offset),
            "alignment": desc.alignment,
            "transient": desc.transient,
        }
    raise ReproError(f"cannot serialize descriptor {desc!r}")


def _subset_to_json(subset: Subset) -> list[list[str]]:
    return [[str(r.begin), str(r.end), str(r.step)] for r in subset.ranges]


def _memlet_to_json(memlet: Memlet | None) -> dict[str, Any] | None:
    if memlet is None:
        return None
    return {
        "data": memlet.data,
        "subset": _subset_to_json(memlet.subset),
        "wcr": memlet.wcr,
        "volume_hint": None if memlet.volume_hint is None else str(memlet.volume_hint),
    }


def _node_to_json(node: Node, node_ids: dict[Node, int]) -> dict[str, Any]:
    if isinstance(node, AccessNode):
        return {"type": "AccessNode", "data": node.data}
    if isinstance(node, Tasklet):
        return {
            "type": "Tasklet",
            "name": node.name,
            "inputs": list(node.in_connectors),
            "outputs": list(node.out_connectors),
            "code": node.code,
        }
    if isinstance(node, MapEntry):
        return {
            "type": "MapEntry",
            "label": node.map.label,
            "params": list(node.map.params),
            "ranges": [[str(r.begin), str(r.end), str(r.step)] for r in node.map.ranges],
        }
    if isinstance(node, MapExit):
        return {"type": "MapExit", "entry": node_ids[node.entry_node]}
    if isinstance(node, NestedSDFG):
        return {
            "type": "NestedSDFG",
            "sdfg": to_json(node.sdfg),
            "inputs": list(node.in_connectors),
            "outputs": list(node.out_connectors),
            "symbol_mapping": {k: str(v) for k, v in node.symbol_mapping.items()},
        }
    raise ReproError(f"cannot serialize node {node!r}")


def _state_to_json(state: SDFGState) -> dict[str, Any]:
    nodes = state.nodes()
    node_ids = {n: i for i, n in enumerate(nodes)}
    return {
        "name": state.name,
        "nodes": [_node_to_json(n, node_ids) for n in nodes],
        "edges": [
            {
                "src": node_ids[e.src],
                "dst": node_ids[e.dst],
                "src_conn": e.data.src_conn,
                "dst_conn": e.data.dst_conn,
                "memlet": _memlet_to_json(e.data.memlet),
            }
            for e in state.edges()
        ],
    }


def to_json(sdfg: SDFG) -> dict[str, Any]:
    """Serialize *sdfg* to a JSON-compatible dictionary."""
    states = sdfg.states()
    state_ids = {s: i for i, s in enumerate(states)}
    return {
        "format": "repro-sdfg",
        "version": 1,
        "name": sdfg.name,
        "symbols": sorted(sdfg.symbols),
        "arrays": {name: _data_to_json(d) for name, d in sdfg.arrays.items()},
        "states": [_state_to_json(s) for s in states],
        "start_state": state_ids[sdfg.start_state] if states else None,
        "interstate_edges": [
            {
                "src": state_ids[e.src],
                "dst": state_ids[e.dst],
                "condition": e.data.condition,
                "assignments": dict(e.data.assignments),
            }
            for e in sdfg.interstate_edges()
        ],
    }


def dumps(sdfg: SDFG, indent: int | None = 2) -> str:
    """Serialize *sdfg* to a JSON string."""
    return json.dumps(to_json(sdfg), indent=indent)


# -- deserialization -----------------------------------------------------------


def _subset_from_json(doc: list[list[str]]) -> Subset:
    return Subset(Range(b, e, s) for b, e, s in doc)


def _memlet_from_json(doc: dict[str, Any] | None) -> Memlet | None:
    if doc is None:
        return None
    return Memlet(
        doc["data"],
        _subset_from_json(doc["subset"]),
        wcr=doc.get("wcr"),
        volume_hint=doc.get("volume_hint"),
    )


def _node_from_json(doc: dict[str, Any], nodes_so_far: list[Node]) -> Node:
    kind = doc["type"]
    if kind == "AccessNode":
        return AccessNode(doc["data"])
    if kind == "Tasklet":
        return Tasklet(doc["name"], doc["inputs"], doc["outputs"], doc["code"])
    if kind == "MapEntry":
        ranges = [Range(b, e, s) for b, e, s in doc["ranges"]]
        return MapEntry(Map(doc["label"], doc["params"], ranges))
    if kind == "MapExit":
        entry = nodes_so_far[doc["entry"]]
        if not isinstance(entry, MapEntry):
            raise ReproError("MapExit entry reference does not point to a MapEntry")
        return MapExit(entry.map, entry)
    if kind == "NestedSDFG":
        return NestedSDFG(
            from_json(doc["sdfg"]),
            doc["inputs"],
            doc["outputs"],
            doc.get("symbol_mapping"),
        )
    raise ReproError(f"unknown node type {kind!r}")


def from_json(doc: dict[str, Any]) -> SDFG:
    """Deserialize an SDFG from :func:`to_json` output."""
    if doc.get("format") != "repro-sdfg":
        raise ReproError("not a repro-sdfg document")
    sdfg = SDFG(doc["name"])
    for sym in doc.get("symbols", []):
        sdfg.add_symbol(sym)
    for name, d in doc.get("arrays", {}).items():
        if d["type"] == "Scalar":
            sdfg.add_scalar(name, dtypes.by_name(d["dtype"]), transient=d["transient"])
        else:
            sdfg.add_array(
                name,
                d["shape"],
                dtypes.by_name(d["dtype"]),
                strides=d["strides"],
                start_offset=d["start_offset"],
                alignment=d["alignment"],
                transient=d["transient"],
            )

    states: list[SDFGState] = []
    for sdoc in doc.get("states", []):
        state = sdfg.add_state(sdoc["name"])
        states.append(state)
        nodes: list[Node] = []
        for ndoc in sdoc["nodes"]:
            node = _node_from_json(ndoc, nodes)
            nodes.append(node)
            state.add_node(node)
        for edoc in sdoc["edges"]:
            src, dst = nodes[edoc["src"]], nodes[edoc["dst"]]
            state.add_edge(
                src,
                edoc["src_conn"],
                dst,
                edoc["dst_conn"],
                _memlet_from_json(edoc["memlet"]),
            )

    start = doc.get("start_state")
    if start is not None and states:
        sdfg._start_state = states[start]
    for edoc in doc.get("interstate_edges", []):
        sdfg.add_interstate_edge(
            states[edoc["src"]],
            states[edoc["dst"]],
            condition=edoc.get("condition"),
            assignments=edoc.get("assignments"),
        )
    return sdfg


def loads(text: str) -> SDFG:
    """Deserialize an SDFG from a JSON string."""
    return from_json(json.loads(text))


# -- content hashing -----------------------------------------------------------


def canonical_json(doc: Any) -> str:
    """Deterministic JSON text of *doc*: sorted keys, compact separators.

    Dict key order is normalized away (it is presentation, not content);
    list order is preserved (graph order and container registration order
    are semantic — see the module docstring).
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)


def _digest(doc: Any) -> str:
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:16]


def data_fingerprint(desc: Data, logical: bool = False) -> str:
    """Stable digest of one data descriptor.

    With ``logical=True``, only the fields that determine the *logical*
    access pattern contribute (dtype, shape, transience) — physical layout
    fields (strides, start offset, alignment) are excluded, so e.g. stride
    padding does not perturb logical fingerprints.
    """
    doc = _data_to_json(desc)
    if logical:
        doc.pop("strides", None)
        doc.pop("start_offset", None)
        doc.pop("alignment", None)
    return _digest(doc)


def node_fingerprint(node: Node) -> str:
    """Stable digest of one graph node's content.

    Self-contained (no per-state index table): a :class:`MapExit` hashes
    its entry's map content instead of a node index, so the digest does
    not depend on the node's position in a particular state.
    """
    if isinstance(node, MapExit):
        doc: dict[str, Any] = {
            "type": "MapExit",
            "label": node.map.label,
            "params": list(node.map.params),
            "ranges": [
                [str(r.begin), str(r.end), str(r.step)] for r in node.map.ranges
            ],
        }
    else:
        doc = _node_to_json(node, {})
    return _digest(doc)


def edge_fingerprint(edge, node_ids: dict[Node, int]) -> str:
    """Stable digest of one dataflow edge (endpoints by state-local index)."""
    conn = edge.data
    doc = {
        "src": node_ids[edge.src],
        "dst": node_ids[edge.dst],
        "src_conn": None if conn is None else conn.src_conn,
        "dst_conn": None if conn is None else conn.dst_conn,
        "memlet": None if conn is None else _memlet_to_json(conn.memlet),
    }
    return _digest(doc)


def state_fingerprint(state: SDFGState) -> str:
    """Stable digest of one state: Merkle over node and edge fingerprints."""
    nodes = state.nodes()
    node_ids = {n: i for i, n in enumerate(nodes)}
    doc = {
        "name": state.name,
        "nodes": [node_fingerprint(n) for n in nodes],
        "edges": [edge_fingerprint(e, node_ids) for e in state.edges()],
    }
    return _digest(doc)


def arrays_fingerprint(sdfg: SDFG, logical: bool = False) -> str:
    """Stable digest of the SDFG's data descriptors.

    The full (physical) fingerprint hashes descriptors as an *ordered*
    pair list — registration order determines allocation order and thus
    physical addresses.  The ``logical=True`` variant drops layout fields
    and sorts by name, since the logical access pattern is insensitive to
    both.
    """
    if logical:
        pairs = sorted(
            (name, data_fingerprint(desc, logical=True))
            for name, desc in sdfg.arrays.items()
        )
    else:
        pairs = [
            (name, data_fingerprint(desc)) for name, desc in sdfg.arrays.items()
        ]
    return _digest(pairs)


def sdfg_fingerprint(sdfg: SDFG) -> str:
    """Stable digest of the whole SDFG's content.

    Invariant under process restarts and :func:`dumps`/:func:`loads`
    round trips; changes whenever any state graph, data descriptor,
    symbol set or interstate structure changes.
    """
    states = sdfg.states()
    state_ids = {s: i for i, s in enumerate(states)}
    doc = {
        "name": sdfg.name,
        "symbols": sorted(sdfg.symbols),
        "arrays": [
            [name, _data_to_json(desc)] for name, desc in sdfg.arrays.items()
        ],
        "states": [state_fingerprint(s) for s in states],
        "start_state": state_ids[sdfg.start_state] if states else None,
        "interstate_edges": [
            {
                "src": state_ids[e.src],
                "dst": state_ids[e.dst],
                "condition": e.data.condition,
                "assignments": dict(e.data.assignments),
            }
            for e in sdfg.interstate_edges()
        ],
    }
    return _digest(doc)
