"""Memlet propagation through map scopes.

An edge *inside* a map scope carries a per-iteration subset expressed in
the map parameters (e.g. ``A[i, 0:K]``).  The corresponding edge *outside*
the scope must describe the union over all iterations (``A[0:I, 0:K]``)
with a volume of ``per-iteration volume × number of iterations``.  This is
how the global view obtains whole-program logical movement volumes from
per-iteration annotations.

The propagation implemented here is exact for subsets whose bounds are
monotonic in each map parameter (all affine subsets, which is the program
class the frontend accepts): the union bound per dimension is obtained by
substituting each parameter with its extreme values and taking the
symbolic min/max.
"""

from __future__ import annotations

from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import Map
from repro.symbolic.expr import Expr, Integer, mul, smax, smin
from repro.symbolic.ranges import Range, Subset

__all__ = ["propagate_memlet", "propagate_subset", "subset_union"]


def subset_union(a: Subset, b: Subset) -> Subset:
    """Smallest dense subset covering both *a* and *b* (per-dim bounds).

    Used when several reads of the same container in one scope share a
    single outer edge: the outer subset is the bounding box of the per-read
    propagated subsets.
    """
    if a.dims != b.dims:
        raise ValueError(
            f"cannot union subsets of different rank ({a.dims} vs {b.dims})"
        )
    return Subset(
        Range(smin(ra.begin, rb.begin), smax(ra.end, rb.end))
        for ra, rb in zip(a.ranges, b.ranges)
    )


def _bound_candidates(expr: Expr, map_obj: Map) -> list[Expr]:
    """All substitutions of map params by their range endpoints.

    For ``k`` parameters appearing in *expr* this enumerates up to ``2**k``
    corner substitutions; affine bounds attain their extrema at corners.
    """
    params = [p for p in map_obj.params if p in expr.free_symbols()]
    candidates = [expr]
    for p in params:
        r = map_obj.range_of(p)
        lo, hi = r.begin, r.end
        next_candidates = []
        for c in candidates:
            next_candidates.append(c.subs({p: lo}))
            next_candidates.append(c.subs({p: hi}))
        candidates = next_candidates
    return candidates


def propagate_subset(subset: Subset, map_obj: Map) -> Subset:
    """Union of *subset* over all iterations of *map_obj* (per-dim bounds)."""
    new_ranges = []
    for r in subset.ranges:
        if not (r.free_symbols() & set(map_obj.params)):
            new_ranges.append(r)
            continue
        begins = _bound_candidates(r.begin, map_obj)
        ends = _bound_candidates(r.end, map_obj)
        # The union is contiguous for step-1 map ranges; for strided maps it
        # over-approximates (conservatively) with a dense range.
        new_ranges.append(Range(smin(*begins), smax(*ends)))
    return Subset(new_ranges)


def propagate_memlet(memlet: Memlet, map_obj: Map) -> Memlet:
    """Propagate *memlet* from inside *map_obj* to outside its scope.

    The resulting memlet covers the union subset and carries an exact
    volume hint of ``inner volume × iterations``.
    """
    outer_subset = propagate_subset(memlet.subset, map_obj)
    volume = mul(memlet.volume(), map_obj.num_iterations())
    # When the union subset's element count already equals the total moved
    # volume, the hint is redundant — keep it anyway only if they differ, so
    # that repeated propagation stays exact.
    hint: Expr | None = volume
    if outer_subset.num_elements() == volume:
        hint = None
    return Memlet(memlet.data, outer_subset, wcr=memlet.wcr, volume_hint=hint)
