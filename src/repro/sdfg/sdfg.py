"""The top-level SDFG: a state machine over dataflow states."""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import ReproError
from repro.graph import Edge, OrderedMultiDiGraph
from repro.sdfg import dtypes
from repro.sdfg.data import Array, Data, Scalar
from repro.sdfg.state import SDFGState
from repro.symbolic.expr import ExprLike

__all__ = ["SDFG", "InterstateEdge"]


class InterstateEdge:
    """Transition between states: optional condition plus symbol assignments.

    Conditions and assignment values are stored as expression strings so
    they stay symbolic; the analyses here only need the assignments for
    symbol tracking.
    """

    __slots__ = ("condition", "assignments")

    def __init__(
        self,
        condition: str | None = None,
        assignments: Mapping[str, str] | None = None,
    ):
        self.condition = condition
        self.assignments: dict[str, str] = dict(assignments or {})

    def __repr__(self) -> str:
        parts = []
        if self.condition:
            parts.append(f"if {self.condition}")
        if self.assignments:
            parts.append(", ".join(f"{k}={v}" for k, v in self.assignments.items()))
        return f"InterstateEdge({'; '.join(parts)})"


class SDFG:
    """A stateful dataflow multigraph.

    Holds the program's data descriptors (:attr:`arrays`), free symbols
    (:attr:`symbols`) and a state machine of dataflow states.  Most
    programs in this library are single-state; the state machine exists for
    completeness and sequential compositions (e.g. multi-kernel programs).
    """

    def __init__(self, name: str):
        if not name or not name.isidentifier():
            raise ReproError(f"invalid SDFG name {name!r}")
        self.name = name
        #: Data descriptors by container name.
        self.arrays: dict[str, Data] = {}
        #: Free symbols (size parameters) by name.
        self.symbols: set[str] = set()
        self._states: OrderedMultiDiGraph[SDFGState, InterstateEdge] = OrderedMultiDiGraph()
        self._start_state: SDFGState | None = None

    # -- data descriptors ------------------------------------------------------
    def add_array(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype: dtypes.Dtype,
        strides: Sequence[ExprLike] | None = None,
        start_offset: ExprLike = 0,
        alignment: int = 0,
        transient: bool = False,
    ) -> Array:
        """Register an array container and return its descriptor."""
        self._check_name(name)
        desc = Array(
            dtype,
            shape,
            strides=strides,
            start_offset=start_offset,
            alignment=alignment,
            transient=transient,
        )
        self.arrays[name] = desc
        for sym in desc.free_symbols():
            self.symbols.add(sym)
        return desc

    def add_transient(
        self,
        name: str,
        shape: Sequence[ExprLike],
        dtype: dtypes.Dtype,
        strides: Sequence[ExprLike] | None = None,
    ) -> Array:
        """Register a transient (program-managed intermediate) array."""
        return self.add_array(name, shape, dtype, strides=strides, transient=True)

    def add_scalar(
        self, name: str, dtype: dtypes.Dtype, transient: bool = False
    ) -> Scalar:
        """Register a scalar container."""
        self._check_name(name)
        desc = Scalar(dtype, transient=transient)
        self.arrays[name] = desc
        return desc

    def add_symbol(self, name: str) -> str:
        """Register a free symbol (size parameter)."""
        if not name.isidentifier():
            raise ReproError(f"invalid symbol name {name!r}")
        self.symbols.add(name)
        return name

    def replace_descriptor(self, name: str, desc: Data) -> None:
        """Swap the descriptor of an existing container (layout transforms)."""
        if name not in self.arrays:
            raise ReproError(f"container {name!r} is not defined")
        self.arrays[name] = desc
        for sym in desc.free_symbols():
            self.symbols.add(sym)

    def remove_data(self, name: str) -> None:
        """Remove a container descriptor (caller removes its access nodes)."""
        if name not in self.arrays:
            raise ReproError(f"container {name!r} is not defined")
        del self.arrays[name]

    def _check_name(self, name: str) -> None:
        if not name or not name.isidentifier():
            raise ReproError(f"invalid container name {name!r}")
        if name in self.arrays:
            raise ReproError(f"container {name!r} already defined in {self.name!r}")

    # -- states -----------------------------------------------------------------
    def add_state(self, name: str | None = None, is_start: bool = False) -> SDFGState:
        """Create and register a new dataflow state."""
        if name is None:
            name = f"state_{self._states.number_of_nodes}"
        if any(s.name == name for s in self._states.nodes()):
            raise ReproError(f"state {name!r} already exists in {self.name!r}")
        state = SDFGState(name, sdfg=self)
        self._states.add_node(state)
        if is_start or self._start_state is None:
            self._start_state = state
        return state

    def add_state_after(
        self, predecessor: SDFGState, name: str | None = None
    ) -> SDFGState:
        """Create a state and connect it sequentially after *predecessor*."""
        state = self.add_state(name)
        self.add_interstate_edge(predecessor, state)
        return state

    def add_interstate_edge(
        self,
        src: SDFGState,
        dst: SDFGState,
        condition: str | None = None,
        assignments: Mapping[str, str] | None = None,
    ) -> Edge[SDFGState, InterstateEdge]:
        return self._states.add_edge(src, dst, InterstateEdge(condition, assignments))

    @property
    def start_state(self) -> SDFGState:
        if self._start_state is None:
            raise ReproError(f"SDFG {self.name!r} has no states")
        return self._start_state

    def states(self) -> list[SDFGState]:
        return self._states.nodes()

    def interstate_edges(self) -> list[Edge[SDFGState, InterstateEdge]]:
        return self._states.edges()

    def state_graph(self) -> OrderedMultiDiGraph[SDFGState, InterstateEdge]:
        return self._states

    # -- queries -----------------------------------------------------------------
    def all_states_topological(self) -> list[SDFGState]:
        """States in execution-compatible order (start state first)."""
        from repro.graph import topological_sort

        order = topological_sort(self._states)
        if self._start_state in order:
            order.remove(self._start_state)
            order.insert(0, self._start_state)
        return order

    def input_containers(self) -> list[str]:
        """Non-transient containers that are read before being written."""
        written: set[str] = set()
        inputs: list[str] = []
        for state in self.all_states_topological():
            for node in state.topological_nodes():
                from repro.sdfg.nodes import AccessNode

                if not isinstance(node, AccessNode):
                    continue
                desc = self.arrays.get(node.data)
                if desc is None or desc.transient:
                    continue
                has_reads = bool(state.out_edges(node))
                has_writes = bool(state.in_edges(node))
                if has_reads and node.data not in written and node.data not in inputs:
                    inputs.append(node.data)
                if has_writes:
                    written.add(node.data)
        return inputs

    def output_containers(self) -> list[str]:
        """Non-transient containers that are written anywhere."""
        outputs: list[str] = []
        for state in self.all_states_topological():
            for node in state.data_nodes():
                desc = self.arrays.get(node.data)
                if desc is None or desc.transient:
                    continue
                if state.in_edges(node) and node.data not in outputs:
                    outputs.append(node.data)
        return outputs

    def free_symbols(self) -> frozenset[str]:
        """All symbols the SDFG's descriptors and memlets depend on."""
        out: set[str] = set(self.symbols)
        for desc in self.arrays.values():
            out |= desc.free_symbols()
        for state in self.states():
            for _, memlet in state.all_memlets():
                out |= memlet.free_symbols()
            # Exclude map parameters: they are bound within scopes.
            for entry in state.map_entries():
                out -= set(entry.map.params)
                for r in entry.map.ranges:
                    out |= r.free_symbols()
        for state in self.states():
            for entry in state.map_entries():
                out -= set(entry.map.params)
        return frozenset(out)

    def validate(self) -> None:
        """Run structural validation; raises on the first violation."""
        from repro.sdfg.validation import validate_sdfg

        validate_sdfg(self)

    def copy(self) -> "SDFG":
        """An independent deep copy (via the JSON serialization round-trip)."""
        from repro.sdfg.serialize import from_json, to_json

        return from_json(to_json(self))

    def __iter__(self) -> Iterator[SDFGState]:
        return iter(self._states.nodes())

    def __repr__(self) -> str:
        return (
            f"SDFG({self.name!r}, states={self._states.number_of_nodes}, "
            f"arrays={len(self.arrays)})"
        )
