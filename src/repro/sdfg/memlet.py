"""Memlets: data-movement annotations on dataflow edges.

A memlet records *which subset* of *which container* moves along an edge —
"an annotation of exactly what data subsets are being accessed by each
computation in the form of a symbolic expression" (paper Section V-C).  The
global view's logical data-movement heatmap colors edges by the memlet
volume; the local view evaluates memlet subsets under concrete map
parameters to derive exact access patterns.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ReproError
from repro.sdfg.data import Data
from repro.symbolic.expr import Expr, ExprLike, Integer, mul, sympify
from repro.symbolic.ranges import Subset

__all__ = ["Memlet"]

#: Recognized write-conflict-resolution operators (reductions).
_WCR_OPS = {"sum", "product", "min", "max"}


class Memlet:
    """Movement of ``subset`` of container ``data`` along an edge.

    Parameters
    ----------
    data:
        Name of the container being accessed.
    subset:
        The accessed subset; a :class:`~repro.symbolic.ranges.Subset`, a
        subset string (``"0:N, i"``) or ``None`` for a scalar access.
    wcr:
        Optional write-conflict resolution (reduction) operator applied on
        conflicting writes: one of ``"sum"``, ``"product"``, ``"min"``,
        ``"max"``.
    volume_hint:
        Optional symbolic override of the movement volume in elements.
        When absent, the volume is the subset's element count.  Propagated
        (outer-scope) memlets use this to carry ``inner volume × map
        iterations`` even when the union subset over-approximates.
    """

    __slots__ = ("data", "subset", "wcr", "volume_hint")

    def __init__(
        self,
        data: str,
        subset: Subset | str | None = None,
        wcr: str | None = None,
        volume_hint: ExprLike | None = None,
    ):
        if not isinstance(data, str) or not data:
            raise ReproError(f"memlet requires a container name, got {data!r}")
        self.data = data
        if isinstance(subset, str):
            subset = Subset.from_string(subset)
        if subset is None:
            subset = Subset(())  # scalar
        if not isinstance(subset, Subset):
            raise ReproError(f"invalid memlet subset {subset!r}")
        self.subset = subset
        if wcr is not None and wcr not in _WCR_OPS:
            raise ReproError(f"unknown write-conflict resolution {wcr!r}")
        self.wcr = wcr
        self.volume_hint = None if volume_hint is None else sympify(volume_hint)

    # -- convenience constructors -----------------------------------------
    @classmethod
    def simple(cls, data: str, subset_str: str, wcr: str | None = None) -> "Memlet":
        """Build from a container name and subset string."""
        return cls(data, Subset.from_string(subset_str), wcr=wcr)

    @classmethod
    def full(cls, data: str, descriptor: Data) -> "Memlet":
        """A memlet covering the whole container described by *descriptor*."""
        shape = descriptor.shape
        if not shape:
            return cls(data, Subset(()))
        return cls(data, Subset.full(shape))

    # -- analysis -----------------------------------------------------------
    def volume(self) -> Expr:
        """Moved volume in elements (symbolic)."""
        if self.volume_hint is not None:
            return self.volume_hint
        return self.subset.num_elements()

    def bytes_moved(self, descriptor: Data) -> Expr:
        """Moved volume in bytes, given the container's descriptor."""
        return mul(self.volume(), Integer(descriptor.dtype.itemsize))

    def free_symbols(self) -> frozenset[str]:
        out = self.subset.free_symbols()
        if self.volume_hint is not None:
            out |= self.volume_hint.free_symbols()
        return out

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Memlet":
        """Substitute symbols in the subset (and volume hint)."""
        return Memlet(
            self.data,
            self.subset.subs(mapping),
            wcr=self.wcr,
            volume_hint=None if self.volume_hint is None else self.volume_hint.subs(mapping),
        )

    # -- identity -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memlet):
            return NotImplemented
        return (
            self.data == other.data
            and self.subset == other.subset
            and self.wcr == other.wcr
            and self.volume_hint == other.volume_hint
        )

    def __hash__(self) -> int:
        return hash((Memlet, self.data, self.subset, self.wcr))

    def __repr__(self) -> str:
        wcr = f", wcr={self.wcr}" if self.wcr else ""
        return f"Memlet({self.data}[{self.subset}]{wcr})"
