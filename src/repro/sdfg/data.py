"""Data descriptors: the shape, type and *physical layout* of containers.

The local view's spatial-locality analysis (paper Section V-D) derives the
physical data layout — "alignment, offsets, and padding used by the
compiler" — directly from the IR.  Descriptors therefore carry not just a
shape but explicit per-dimension strides (in elements), a start offset and
an alignment, from which element byte addresses are computed.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError, SymbolicError
from repro.sdfg import dtypes
from repro.symbolic.expr import Expr, ExprLike, Integer, add, evaluate_int, mul, sub, sympify
from repro.symbolic.ranges import Subset

__all__ = ["Data", "Array", "Scalar"]


class Data:
    """Base class for data descriptors."""

    __slots__ = ("dtype", "transient")

    def __init__(self, dtype: dtypes.Dtype, transient: bool = False):
        if not isinstance(dtype, dtypes.Dtype):
            raise ReproError(f"expected a Dtype, got {dtype!r}")
        self.dtype = dtype
        #: Transient containers are intermediates owned by the program
        #: (candidates for elimination via fusion); non-transients are the
        #: program's inputs/outputs.
        self.transient = transient

    @property
    def shape(self) -> tuple[Expr, ...]:
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def total_bytes(self) -> Expr:
        """Allocated size in bytes (symbolic)."""
        raise NotImplementedError


class Scalar(Data):
    """A zero-dimensional container holding a single value."""

    __slots__ = ()

    @property
    def shape(self) -> tuple[Expr, ...]:
        return ()

    def free_symbols(self) -> frozenset[str]:
        return frozenset()

    def total_bytes(self) -> Expr:
        return Integer(self.dtype.itemsize)

    def __repr__(self) -> str:
        return f"Scalar({self.dtype})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scalar):
            return NotImplemented
        return self.dtype == other.dtype and self.transient == other.transient

    def __hash__(self) -> int:
        return hash((Scalar, self.dtype, self.transient))


class Array(Data):
    """An N-dimensional array with an explicit physical layout.

    Parameters
    ----------
    dtype:
        Element type.
    shape:
        Per-dimension symbolic extents.
    strides:
        Per-dimension strides **in elements**.  Defaults to C-contiguous
        (row-major) strides derived from *shape*.
    start_offset:
        Offset (in elements) of element ``[0, ..., 0]`` from the allocation
        base — models leading padding.
    alignment:
        Requested base-address alignment in bytes (0 = allocator default).
        The layout analysis uses this to place the container on cache-line
        boundaries.
    transient:
        Whether the container is a program-managed intermediate.
    """

    __slots__ = ("_shape", "strides", "start_offset", "alignment")

    def __init__(
        self,
        dtype: dtypes.Dtype,
        shape: Sequence[ExprLike],
        strides: Sequence[ExprLike] | None = None,
        start_offset: ExprLike = 0,
        alignment: int = 0,
        transient: bool = False,
    ):
        super().__init__(dtype, transient)
        self._shape = tuple(sympify(s) for s in shape)
        if not self._shape:
            raise ReproError("Array requires at least one dimension; use Scalar")
        if strides is None:
            strides = self.c_strides(self._shape)
        self.strides = tuple(sympify(s) for s in strides)
        if len(self.strides) != len(self._shape):
            raise ReproError(
                f"strides rank {len(self.strides)} does not match shape rank {len(self._shape)}"
            )
        self.start_offset = sympify(start_offset)
        if alignment < 0:
            raise ReproError("alignment cannot be negative")
        self.alignment = int(alignment)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def c_strides(shape: Sequence[ExprLike]) -> tuple[Expr, ...]:
        """Row-major (C) strides for *shape*, in elements."""
        shape = [sympify(s) for s in shape]
        strides: list[Expr] = [Integer(1)]
        for extent in reversed(shape[1:]):
            strides.append(mul(strides[-1], extent))
        return tuple(reversed(strides))

    @staticmethod
    def f_strides(shape: Sequence[ExprLike]) -> tuple[Expr, ...]:
        """Column-major (Fortran) strides for *shape*, in elements."""
        shape = [sympify(s) for s in shape]
        strides: list[Expr] = [Integer(1)]
        for extent in shape[:-1]:
            strides.append(mul(strides[-1], extent))
        return tuple(strides)

    # -- properties -------------------------------------------------------
    @property
    def shape(self) -> tuple[Expr, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = self.start_offset.free_symbols()
        for e in self._shape + self.strides:
            out |= e.free_symbols()
        return out

    def num_elements(self) -> Expr:
        """Logical number of elements (product of the shape)."""
        return mul(*self._shape) if self._shape else Integer(1)

    def total_elements(self) -> Expr:
        """Allocated extent in elements, including stride padding.

        For positive strides this is
        ``start_offset + sum((shape_i - 1) * stride_i) + 1``.
        """
        extent: Expr = Integer(1)
        for size, stride in zip(self._shape, self.strides):
            extent = add(extent, mul(sub(size, 1), stride))
        return add(self.start_offset, extent)

    def total_bytes(self) -> Expr:
        return mul(self.total_elements(), Integer(self.dtype.itemsize))

    def is_c_contiguous(self) -> bool:
        """True when strides equal the canonical row-major strides."""
        return self.strides == self.c_strides(self._shape)

    def is_f_contiguous(self) -> bool:
        """True when strides equal the canonical column-major strides."""
        return self.strides == self.f_strides(self._shape)

    # -- addressing -------------------------------------------------------
    def element_offset(self, indices: Sequence[ExprLike]) -> Expr:
        """Offset of ``[indices]`` from the allocation base, in elements."""
        if len(indices) != self.ndim:
            raise SymbolicError(
                f"expected {self.ndim} indices, got {len(indices)}"
            )
        offset: Expr = self.start_offset
        for index, stride in zip(indices, self.strides):
            offset = add(offset, mul(sympify(index), stride))
        return offset

    def byte_offset(self, indices: Sequence[ExprLike]) -> Expr:
        """Offset of ``[indices]`` from the allocation base, in bytes."""
        return mul(self.element_offset(indices), Integer(self.dtype.itemsize))

    def concrete_element_offset(
        self, indices: Sequence[int], env: Mapping[str, int | float] | None = None
    ) -> int:
        """Concrete element offset under symbol assignment *env*."""
        return evaluate_int(self.element_offset(list(indices)), env)

    def full_subset(self) -> Subset:
        """The subset covering the whole array."""
        return Subset.full(self._shape)

    # -- layout variations --------------------------------------------------
    def with_strides(
        self, strides: Sequence[ExprLike], start_offset: ExprLike | None = None
    ) -> "Array":
        """A copy of this descriptor with different strides."""
        return Array(
            self.dtype,
            self._shape,
            strides=strides,
            start_offset=self.start_offset if start_offset is None else start_offset,
            alignment=self.alignment,
            transient=self.transient,
        )

    def permuted(self, order: Sequence[int]) -> "Array":
        """Logically reorder dimensions *and relayout* contiguously.

        This models the paper's "reshaping ``in_field`` from [I+4, J+4, K]
        to [K, I+4, J+4]" optimization: the new dimension order gets fresh
        C-contiguous strides (the data is physically rearranged).
        """
        if sorted(order) != list(range(self.ndim)):
            raise ReproError(f"invalid permutation {order!r} for rank {self.ndim}")
        new_shape = tuple(self._shape[i] for i in order)
        return Array(
            self.dtype,
            new_shape,
            strides=None,  # fresh C-contiguous layout
            start_offset=self.start_offset,
            alignment=self.alignment,
            transient=self.transient,
        )

    def transposed_view(self, order: Sequence[int]) -> "Array":
        """Reorder dimensions *without* moving data (strides permuted too)."""
        if sorted(order) != list(range(self.ndim)):
            raise ReproError(f"invalid permutation {order!r} for rank {self.ndim}")
        return Array(
            self.dtype,
            tuple(self._shape[i] for i in order),
            strides=tuple(self.strides[i] for i in order),
            start_offset=self.start_offset,
            alignment=self.alignment,
            transient=self.transient,
        )

    # -- identity -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Array):
            return NotImplemented
        return (
            self.dtype == other.dtype
            and self._shape == other._shape
            and self.strides == other.strides
            and self.start_offset == other.start_offset
            and self.alignment == other.alignment
            and self.transient == other.transient
        )

    def __hash__(self) -> int:
        return hash((Array, self.dtype, self._shape, self.strides, self.start_offset))

    def __repr__(self) -> str:
        shape = ", ".join(str(s) for s in self._shape)
        extra = ""
        if not self.is_c_contiguous():
            extra = f", strides=[{', '.join(str(s) for s in self.strides)}]"
        if self.transient:
            extra += ", transient"
        return f"Array({self.dtype}[{shape}]{extra})"
