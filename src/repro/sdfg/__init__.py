"""The dataflow intermediate representation (SDFG-like).

This subpackage implements the IR the paper's tool operates on: a *stateful
dataflow multigraph*.  A :class:`~repro.sdfg.sdfg.SDFG` is a state machine
whose states are acyclic dataflow graphs.  Dataflow nodes are data accesses
(:class:`~repro.sdfg.nodes.AccessNode`), fine-grained computations
(:class:`~repro.sdfg.nodes.Tasklet`) and parametric parallel scopes
(:class:`~repro.sdfg.nodes.MapEntry` / :class:`~repro.sdfg.nodes.MapExit`);
edges carry :class:`~repro.sdfg.memlet.Memlet` annotations that describe
*exactly which data subset* moves along the edge — the information the
paper's analyses consume.
"""

from repro.sdfg import dtypes
from repro.sdfg.data import Array, Scalar
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, Map, MapEntry, MapExit, NestedSDFG, Node, Tasklet
from repro.sdfg.sdfg import SDFG, InterstateEdge
from repro.sdfg.state import Connection, SDFGState

__all__ = [
    "SDFG",
    "SDFGState",
    "InterstateEdge",
    "Connection",
    "Memlet",
    "Array",
    "Scalar",
    "dtypes",
    "Node",
    "AccessNode",
    "Tasklet",
    "Map",
    "MapEntry",
    "MapExit",
    "NestedSDFG",
]
