"""Dataflow state: an acyclic multigraph of nodes connected by memlets."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.errors import GraphError, ReproError
from repro.graph import Edge, OrderedMultiDiGraph, topological_sort
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    Tasklet,
)
from repro.sdfg.propagation import propagate_memlet
from repro.symbolic.ranges import Range

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdfg.sdfg import SDFG

__all__ = ["Connection", "SDFGState"]


class Connection:
    """Edge payload: connector names plus the memlet moving along the edge."""

    __slots__ = ("src_conn", "dst_conn", "memlet")

    def __init__(self, src_conn: str | None, dst_conn: str | None, memlet: Memlet | None):
        self.src_conn = src_conn
        self.dst_conn = dst_conn
        self.memlet = memlet

    def __repr__(self) -> str:
        return f"Connection({self.src_conn!r} -> {self.dst_conn!r}: {self.memlet!r})"


#: Type alias for edges in a state graph.
StateEdge = Edge[Node, Connection]


class SDFGState:
    """A single dataflow graph within an SDFG.

    The state owns an ordered multigraph of :class:`~repro.sdfg.nodes.Node`
    objects whose edges carry :class:`Connection` payloads (connector names
    plus a memlet).  Convenience constructors build common structures —
    in particular :meth:`add_mapped_tasklet`, which assembles the canonical
    "map over a tasklet" pattern with correctly propagated outer memlets.
    """

    def __init__(self, name: str, sdfg: "SDFG | None" = None):
        if not name:
            raise ReproError("state requires a name")
        self.name = name
        self.sdfg = sdfg
        self.graph: OrderedMultiDiGraph[Node, Connection] = OrderedMultiDiGraph()

    # -- nodes --------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        return self.graph.add_node(node)

    def remove_node(self, node: Node) -> None:
        self.graph.remove_node(node)

    def nodes(self) -> list[Node]:
        return self.graph.nodes()

    def edges(self) -> list[StateEdge]:
        return self.graph.edges()

    def in_edges(self, node: Node) -> list[StateEdge]:
        return self.graph.in_edges(node)

    def out_edges(self, node: Node) -> list[StateEdge]:
        return self.graph.out_edges(node)

    def topological_nodes(self) -> list[Node]:
        return topological_sort(self.graph)

    def data_nodes(self) -> list[AccessNode]:
        """All access nodes in the state."""
        return [n for n in self.graph.nodes() if isinstance(n, AccessNode)]

    def tasklets(self) -> list[Tasklet]:
        return [n for n in self.graph.nodes() if isinstance(n, Tasklet)]

    def map_entries(self) -> list[MapEntry]:
        return [n for n in self.graph.nodes() if isinstance(n, MapEntry)]

    # -- convenience constructors --------------------------------------------
    def add_access(self, data: str) -> AccessNode:
        """Add (and return) an access node for container *data*."""
        if self.sdfg is not None and data not in self.sdfg.arrays:
            raise ReproError(
                f"container {data!r} is not defined in SDFG {self.sdfg.name!r}"
            )
        node = AccessNode(data)
        self.graph.add_node(node)
        return node

    def add_tasklet(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: str,
    ) -> Tasklet:
        node = Tasklet(name, inputs, outputs, code)
        self.graph.add_node(node)
        return node

    def add_map(
        self, label: str, iteration: Mapping[str, Range | str]
    ) -> tuple[MapEntry, MapExit]:
        """Add a map scope; *iteration* maps parameter names to ranges."""
        params = list(iteration)
        ranges = [
            Range.from_string(r) if isinstance(r, str) else r
            for r in iteration.values()
        ]
        map_obj = Map(label, params, ranges)
        entry = MapEntry(map_obj)
        exit_ = MapExit(map_obj, entry)
        self.graph.add_node(entry)
        self.graph.add_node(exit_)
        return entry, exit_

    def add_nested_sdfg(
        self,
        sdfg: "SDFG",
        inputs: Sequence[str],
        outputs: Sequence[str],
        symbol_mapping: Mapping[str, object] | None = None,
    ) -> NestedSDFG:
        node = NestedSDFG(sdfg, inputs, outputs, symbol_mapping)
        self.graph.add_node(node)
        return node

    # -- edges ----------------------------------------------------------------
    def add_edge(
        self,
        src: Node,
        src_conn: str | None,
        dst: Node,
        dst_conn: str | None,
        memlet: Memlet | None,
    ) -> StateEdge:
        """Add a dataflow edge; registers the connectors on the endpoints."""
        for node in (src, dst):
            if not self.graph.has_node(node):
                raise GraphError(f"node {node!r} is not in state {self.name!r}")
        if src_conn is not None:
            src.add_out_connector(src_conn)
        if dst_conn is not None:
            dst.add_in_connector(dst_conn)
        return self.graph.add_edge(src, dst, Connection(src_conn, dst_conn, memlet))

    def remove_edge(self, edge: StateEdge) -> None:
        self.graph.remove_edge(edge)

    def add_memlet_path(
        self,
        *path: Node,
        memlet: Memlet,
        src_conn: str | None = None,
        dst_conn: str | None = None,
    ) -> list[StateEdge]:
        """Thread a memlet through a chain of nodes, across scope boundaries.

        The innermost segment carries *memlet* verbatim; every map
        entry/exit crossed toward the outside propagates the memlet (union
        subset, multiplied volume).  Scope nodes get paired
        ``IN_<data>`` / ``OUT_<data>`` connectors.

        The path must run either from outside into a scope (reads:
        ``access -> entry -> ... -> tasklet``) or from inside out (writes:
        ``tasklet -> ... -> exit -> access``).
        """
        if len(path) < 2:
            raise ReproError("memlet path requires at least two nodes")
        data = memlet.data

        # Determine which segment is innermost: for reads the last edge,
        # for writes the first edge.  Build memlets from the inside out.
        is_read = not isinstance(path[0], (Tasklet, MapExit, NestedSDFG))
        edges: list[StateEdge] = []
        if is_read:
            # Innermost edge is the last one; propagate backwards.
            memlets = [memlet]
            for node in reversed(path[1:-1]):
                if isinstance(node, MapEntry):
                    memlets.append(propagate_memlet(memlets[-1], node.map))
                else:
                    memlets.append(memlets[-1])
            memlets.reverse()
            for i, (u, v) in enumerate(zip(path[:-1], path[1:])):
                sconn = src_conn if i == 0 else f"OUT_{data}"
                dconn = dst_conn if i == len(path) - 2 else f"IN_{data}"
                edges.append(self.add_edge(u, sconn, v, dconn, memlets[i]))
        else:
            memlets = [memlet]
            for node in path[1:-1]:
                if isinstance(node, MapExit):
                    memlets.append(propagate_memlet(memlets[-1], node.map))
                else:
                    memlets.append(memlets[-1])
            for i, (u, v) in enumerate(zip(path[:-1], path[1:])):
                sconn = src_conn if i == 0 else f"OUT_{data}"
                dconn = dst_conn if i == len(path) - 2 else f"IN_{data}"
                edges.append(self.add_edge(u, sconn, v, dconn, memlets[i]))
        return edges

    def add_mapped_tasklet(
        self,
        name: str,
        iteration: Mapping[str, Range | str],
        inputs: Mapping[str, Memlet],
        code: str,
        outputs: Mapping[str, Memlet],
        input_nodes: Mapping[str, AccessNode] | None = None,
        output_nodes: Mapping[str, AccessNode] | None = None,
    ) -> tuple[Tasklet, MapEntry, MapExit]:
        """Build ``accesses -> map entry -> tasklet -> map exit -> accesses``.

        *inputs* / *outputs* map tasklet connector names to per-iteration
        memlets; outer edges receive propagated memlets automatically.
        Existing access nodes may be supplied via *input_nodes* /
        *output_nodes* (keyed by container name) to chain computations.
        """
        entry, exit_ = self.add_map(name, iteration)
        tasklet = self.add_tasklet(name, list(inputs), list(outputs), code)
        input_nodes = dict(input_nodes or {})
        output_nodes = dict(output_nodes or {})

        if inputs:
            for conn, memlet in inputs.items():
                src = input_nodes.get(memlet.data)
                if src is None:
                    src = self.add_access(memlet.data)
                    input_nodes[memlet.data] = src
                self.add_memlet_path(src, entry, tasklet, memlet=memlet, dst_conn=conn)
        else:
            # Keep the scope connected even without data inputs.
            self.add_edge(entry, None, tasklet, None, None)

        for conn, memlet in outputs.items():
            dst = output_nodes.get(memlet.data)
            if dst is None:
                dst = self.add_access(memlet.data)
                output_nodes[memlet.data] = dst
            self.add_memlet_path(tasklet, exit_, dst, memlet=memlet, src_conn=conn)
        return tasklet, entry, exit_

    # -- scopes -----------------------------------------------------------------
    def scope_dict(self) -> dict[Node, MapEntry | None]:
        """Innermost enclosing map entry for every node (None = top level).

        Scope membership follows dataflow: nodes reachable from a map entry
        before its exit belong to that scope.
        """
        result: dict[Node, MapEntry | None] = {}
        for node in self.topological_nodes():
            # A node's scope is determined by its predecessors.
            preds = self.graph.predecessors(node)
            if not preds:
                result[node] = None
                continue
            scopes: set[MapEntry | None] = set()
            for pred in preds:
                if isinstance(pred, MapEntry):
                    scopes.add(pred)
                elif isinstance(pred, MapExit):
                    scopes.add(result.get(pred.entry_node))
                else:
                    scopes.add(result.get(pred))
            if isinstance(node, MapExit):
                # The exit belongs to the same scope as its entry.
                result[node] = result.get(node.entry_node)
                continue
            scopes.discard(None) if len(scopes) > 1 else None
            if len(scopes) > 1:
                raise ReproError(
                    f"node {node!r} has ambiguous scope membership: {scopes}"
                )
            result[node] = next(iter(scopes)) if scopes else None
        return result

    def scope_children(self) -> dict[MapEntry | None, list[Node]]:
        """Nodes directly contained in each scope (inverse of scope_dict)."""
        sdict = self.scope_dict()
        children: dict[MapEntry | None, list[Node]] = {None: []}
        for entry in self.map_entries():
            children[entry] = []
        for node, scope in sdict.items():
            children.setdefault(scope, []).append(node)
        return children

    def all_memlets(self) -> Iterator[tuple[StateEdge, Memlet]]:
        """All (edge, memlet) pairs with a non-empty memlet."""
        for edge in self.graph.edges():
            if edge.data is not None and edge.data.memlet is not None:
                yield edge, edge.data.memlet

    def __repr__(self) -> str:
        return (
            f"SDFGState({self.name!r}, nodes={self.graph.number_of_nodes}, "
            f"edges={self.graph.number_of_edges})"
        )
