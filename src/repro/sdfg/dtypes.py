"""Element data types for IR data descriptors.

A :class:`Dtype` knows its size in bytes (what the cache-line layout
analysis needs), its NumPy counterpart (what the code generator needs) and
its C-like name (what serialization uses).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = [
    "Dtype",
    "by_name",
    "from_numpy",
    "bool_",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "float32",
    "float64",
    "complex64",
    "complex128",
]


class Dtype:
    """An element type with a fixed byte size."""

    __slots__ = ("name", "itemsize", "_numpy_name", "kind")

    def __init__(self, name: str, itemsize: int, numpy_name: str, kind: str):
        self.name = name
        self.itemsize = itemsize
        self._numpy_name = numpy_name
        #: One of "b" (boolean), "i" (signed), "u" (unsigned), "f" (float),
        #: "c" (complex) — mirrors NumPy kind codes.
        self.kind = kind

    @property
    def as_numpy(self) -> np.dtype:
        """The equivalent NumPy dtype."""
        return np.dtype(self._numpy_name)

    @property
    def is_floating(self) -> bool:
        return self.kind in ("f", "c")

    @property
    def is_integer(self) -> bool:
        return self.kind in ("i", "u")

    def __getitem__(self, shape) -> tuple["Dtype", tuple]:
        """Support annotation syntax ``float64[I, J]`` in the frontend.

        Returns a (dtype, shape) pair the ``@program`` parser understands.
        """
        if not isinstance(shape, tuple):
            shape = (shape,)
        return (self, shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dtype):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash((Dtype, self.name))

    def __repr__(self) -> str:
        return self.name


bool_ = Dtype("bool", 1, "bool_", "b")
int8 = Dtype("int8", 1, "int8", "i")
int16 = Dtype("int16", 2, "int16", "i")
int32 = Dtype("int32", 4, "int32", "i")
int64 = Dtype("int64", 8, "int64", "i")
uint8 = Dtype("uint8", 1, "uint8", "u")
uint16 = Dtype("uint16", 2, "uint16", "u")
uint32 = Dtype("uint32", 4, "uint32", "u")
uint64 = Dtype("uint64", 8, "uint64", "u")
float32 = Dtype("float32", 4, "float32", "f")
float64 = Dtype("float64", 8, "float64", "f")
complex64 = Dtype("complex64", 8, "complex64", "c")
complex128 = Dtype("complex128", 16, "complex128", "c")

_ALL = {
    t.name: t
    for t in (
        bool_,
        int8,
        int16,
        int32,
        int64,
        uint8,
        uint16,
        uint32,
        uint64,
        float32,
        float64,
        complex64,
        complex128,
    )
}


def by_name(name: str) -> Dtype:
    """Look up a dtype by its canonical name (e.g. ``"float64"``)."""
    try:
        return _ALL[name]
    except KeyError:
        raise ReproError(f"unknown dtype {name!r}") from None


def from_numpy(np_dtype) -> Dtype:
    """Convert a NumPy dtype (or anything accepted by ``np.dtype``)."""
    np_dtype = np.dtype(np_dtype)
    for t in _ALL.values():
        if t.as_numpy == np_dtype:
            return t
    raise ReproError(f"no IR dtype equivalent for NumPy dtype {np_dtype}")
