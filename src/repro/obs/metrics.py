"""A small in-process metrics registry: counters, gauges, histograms.

Production observability for the analysis service layer: the sweep
executor and session record how often things happen (retries, timeouts,
pool respawns, cache hits) and how long they take (per-point latency
distributions), and the whole registry exports as one JSON document.

Instruments are created lazily and get-or-create by name, so callers
never need to pre-register::

    metrics = MetricsRegistry()
    metrics.counter("sweep.retries").inc()
    metrics.histogram("sweep.point_seconds").observe(0.012)
    metrics.export("metrics.json")
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "StateGauge"]


class Counter:
    """A monotonically increasing count.

    Updates are guarded by a per-instrument lock: executor callback
    threads and the main thread increment the same instruments, and an
    unguarded read-modify-write of :attr:`value` can drop increments
    when the interpreter preempts between the read and the store.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that can go up and down (pool size, cache occupancy)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value:g})"


class Histogram:
    """An observed value distribution with summary statistics."""

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def _snapshot(self) -> list[float]:
        with self._lock:
            return list(self.values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observed values (q in [0, 100])."""
        ordered = sorted(self._snapshot())
        if not ordered:
            raise ValueError(f"histogram {self.name!r} has no observations")
        rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        values = self._snapshot()
        if not values:
            return {"count": 0, "sum": 0.0}
        ordered = sorted(values)

        def rank(q: float) -> float:
            return ordered[
                min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
            ]

        total = sum(values)
        return {
            "count": len(values),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(values),
            "p50": rank(50),
            "p95": rank(95),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class StateGauge:
    """A categorical instrument: one named string value at a time.

    Used for lifecycle phases — circuit-breaker state, the server's
    serving/draining phase — where a numeric gauge would force every
    reader to memorize an encoding.  Transitions are counted so a
    flapping state is visible even between scrapes.
    """

    __slots__ = ("name", "value", "transitions", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: str = ""
        self.transitions = 0
        self._lock = threading.Lock()

    def set(self, value: str) -> None:
        with self._lock:
            if value != self.value:
                self.transitions += 1
            self.value = str(value)

    def __repr__(self) -> str:
        return f"StateGauge({self.name!r}, {self.value!r})"


class MetricsRegistry:
    """Named instruments, created on first use, exported as one document."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._states: dict[str, StateGauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
        return instrument

    def state(self, name: str) -> StateGauge:
        with self._lock:
            instrument = self._states.get(name)
            if instrument is None:
                instrument = self._states[name] = StateGauge(name)
        return instrument

    @contextmanager
    def timer(self, name: str):
        """Time a block and observe the elapsed seconds into histogram
        *name*::

            with metrics.timer("expr.compile.seconds"):
                lower(...)
        """
        start = perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(perf_counter() - start)

    # -- export ------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
            "states": {
                n: {"value": s.value, "transitions": s.transitions}
                for n, s in sorted(self._states.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def export(self, path: str) -> None:
        """Write all instruments as JSON to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._states.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
