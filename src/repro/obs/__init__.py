"""Observability layer: hierarchical tracing and a metrics registry.

The interactive workflow of the paper only works when the analysis
backend is *trusted* — a re-evaluation that silently degraded (serial
fallback, dropped sweep points, stale cache entries) shows the engineer
a wrong heatmap with full confidence.  This package gives every
pipeline run an inspectable execution record:

- :mod:`repro.obs.trace` — hierarchical wall-time spans generalizing
  the flat :class:`~repro.analysis.timing.StageTimings` collector.  A
  :class:`~repro.obs.trace.Tracer` is duck-compatible with
  ``StageTimings`` (``span``/``add``), so it threads through the
  simulation and analysis layers unchanged while additionally
  recording parent/child structure, per-span attributes, and error
  status — exportable as JSON.
- :mod:`repro.obs.metrics` — a registry of named counters, gauges and
  histograms (sweep retries, timeouts, pool respawns, cache hits,
  per-point latencies), also exportable as JSON.

Both are owned by :class:`~repro.tool.session.Session` and written by
the CLI under ``--trace`` / ``--metrics-out``.

The auto-tuning search (:mod:`repro.tuning`) reports through the same
registry and tracer: ``tune.run`` / ``tune.round`` spans wrap the
search, counters ``tuning.rounds``, ``tuning.candidates.evaluated`` /
``.deduplicated`` / ``.failed``, ``tuning.apply_failures`` and the
``tuning.best_moved_bytes`` gauge record its progress, and the
per-pass ``pass.<product>.hits`` counters show how much candidate
re-scoring was served from the incremental pass cache.  Map-fusion
convergence failures surface as ``transforms.fusion.rounds_capped``.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, StateGauge
from repro.obs.trace import NullSpan, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "Span",
    "StateGauge",
    "Tracer",
]
