"""Hierarchical wall-time tracing spans.

:class:`Tracer` generalizes the flat per-stage collector
(:class:`~repro.analysis.timing.StageTimings`): spans carry a name,
wall-time bounds, arbitrary attributes, an error status, and a parent
link, forming a tree per thread of execution.  The whole trace exports
to JSON for offline inspection.

A tracer is deliberately duck-compatible with ``StageTimings`` — it
provides the same ``span(name)`` context manager and ``add(name,
seconds)`` hook — so it can be passed wherever the simulation and
analysis layers accept a ``timings`` collector, without those layers
knowing about hierarchy.  Attaching a ``StageTimings`` instance mirrors
every finished span into it, keeping the existing flat queries
(``count``/``total``/``report``) alive alongside the tree.
"""

from __future__ import annotations

import itertools
import json
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Mapping

__all__ = ["NullSpan", "Span", "Tracer"]


class NullSpan:
    """No-op attribute sink yielded when no collector is attached."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Span:
    """One named wall-time span, possibly nested under a parent span."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "status",
        "error",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attributes: Mapping[str, Any] | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.status = "ok"
        self.error: str | None = None

    @property
    def seconds(self) -> float:
        """Wall time covered (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def fail(self, message: str) -> "Span":
        """Mark the span as failed with a human-readable reason."""
        self.status = "error"
        self.error = message
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "status": self.status,
            "error": self.error,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.seconds * 1e3:.2f}ms, {self.status})"
        )


class Tracer:
    """Collector of hierarchical spans, one active stack per thread.

    Example::

        tracer = Tracer()
        with tracer.span("sweep", points=8):
            with tracer.span("fanout") as sp:
                sp.set(workers=4)
        tracer.export("trace.json")
    """

    def __init__(self, timings=None):
        #: Optional flat mirror (a ``StageTimings``): every finished span
        #: is also recorded there as ``add(name, seconds)``.
        self._timings = timings
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- recording ---------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span under the current thread's active span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(next(self._ids), parent, name, perf_counter(), attributes)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.fail(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.end = perf_counter()
            if stack and stack[-1] is span:
                stack.pop()
            self._finish(span)

    def record(self, name: str, seconds: float, **attributes: Any) -> Span:
        """Append an already-measured span (e.g. timed in a worker process).

        The span is parented under the current thread's active span and
        backdated so that it *ends* now and covers *seconds*.
        """
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        now = perf_counter()
        span = Span(next(self._ids), parent, name, now - float(seconds), attributes)
        span.end = now
        self._finish(span)
        return span

    def add(self, stage: str, seconds: float) -> None:
        """``StageTimings``-compatible hook: record a finished span."""
        self.record(stage, seconds)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        if self._timings is not None:
            self._timings.add(span.name, span.seconds)

    # -- queries -----------------------------------------------------------
    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans in creation order (optionally filtered by name)."""
        with self._lock:
            spans = sorted(self._spans, key=lambda s: s.span_id)
        if name is None:
            return spans
        return [s for s in spans if s.name == name]

    def count(self, name: str) -> int:
        return len(self.spans(name))

    def total(self, name: str | None = None) -> float:
        """Total seconds across spans of one name (or all spans)."""
        return sum(s.seconds for s in self.spans(name))

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans() if s.parent_id is None]

    # -- export ------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"spans": [s.to_dict() for s in self.spans()]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def export(self, path: str) -> None:
        """Write the trace as JSON to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def report(self) -> str:
        """A small indented tree of the recorded spans."""
        spans = self.spans()
        if not spans:
            return "no spans recorded"
        by_parent: dict[int | None, list[Span]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            marker = "" if span.status == "ok" else f"  [{span.status}: {span.error}]"
            lines.append(
                f"{'  ' * depth}{span.name}  {span.seconds * 1e3:.2f}ms{marker}"
            )
            for child in by_parent.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in by_parent.get(None, ()):
            walk(root, 0)
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans())})"
