"""Crash-safe on-disk content-addressed cache with corruption quarantine.

:class:`DiskCache` persists analysis results under content-addressed
keys (the tuples produced by
:meth:`repro.passes.pipeline.Pipeline.key`), so a process restart — or a
different process entirely — can serve a previously computed result
without re-running any pass.  It implements the same
``get``/``put``/``clear``/``info`` backing protocol as the in-memory
LRU caches, so a :class:`~repro.passes.store.ResultStore` can sit
directly on top of it.

Failure philosophy: **no storage failure may ever corrupt a result or
raise into an analysis** — the worst case is always a recompute.
Concretely:

- *Atomicity* — an entry is written to a temporary file in the cache
  directory, flushed and ``fsync``-ed, then published with
  :func:`os.replace`.  A crash mid-write leaves at most a stray temp
  file, never a half-visible entry.
- *Integrity* — every entry carries a fixed header (magic, format
  version, schema version, payload length, SHA-256 payload checksum)
  followed by the pickled ``(key, value)`` payload.  Reads verify all
  of it, plus that the stored key matches the requested one.
- *Quarantine* — a truncated, bit-flipped, version-mismatched or
  otherwise unreadable entry is moved into ``quarantine/`` (falling
  back to deletion), counted (``disk.corrupt``), and reported as a
  miss.  Quarantined files are kept for postmortems, never re-read.
- *Cross-process coordination* — writers serialize through an advisory
  :class:`~repro.storage.locks.FileLock` with a timeout; readers are
  lock-free (``os.replace`` publication makes entries appear
  atomically).
- *Degradation* — an unwritable directory, ``ENOSPC``, or lock
  starvation permanently degrades the cache to a no-op (memory-only
  operation for the owning store) with exactly one warning and one
  ``disk.degraded`` counter increment.  An unpicklable value skips
  only that entry (``disk.unpicklable``).
- *Eviction* — the cache is byte-budgeted: when the directory exceeds
  ``max_bytes``, the oldest entries by mtime are removed
  (``disk.evicted_bytes``).  Reads touch mtime, approximating LRU.
"""

from __future__ import annotations

import errno
import hashlib
import io
import itertools
import os
import pickle
import struct
import warnings
from contextlib import nullcontext
from pathlib import Path
from typing import Any

from repro.errors import LockTimeout
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import inject as _chaos
from repro.storage.locks import FileLock

__all__ = [
    "DiskCache",
    "StorageDegradedWarning",
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
    "key_digest",
]

#: First bytes of every entry file.
MAGIC = b"RPRC"
#: On-disk framing version: bump when the header layout changes.
FORMAT_VERSION = 1
#: Payload schema version: bump when the pickled product types change
#: incompatibly; older entries are then quarantined and recomputed.
SCHEMA_VERSION = 1

#: magic, format version, schema version, payload length, payload SHA-256.
_HEADER = struct.Struct("<4sHHQ32s")

#: Default byte budget for the on-disk cache (1 GiB).
DEFAULT_MAX_BYTES = 1 << 30

_ENTRY_SUFFIX = ".rpc"
_TMP_PREFIX = ".tmp-"

_tmp_counter = itertools.count()


class StorageDegradedWarning(RuntimeWarning):
    """The persistent cache turned itself off; analysis continues in memory."""


def _canonical(obj: Any) -> str:
    """A deterministic text form of a cache key, stable across processes.

    Pipeline keys are tuples of strings, numbers, booleans and nested
    tuples — all with deterministic ``repr`` — but sets and dicts are
    canonicalized by sorting so no caller can accidentally produce an
    order-dependent digest.
    """
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(_canonical(item) for item in obj) + ")"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        pairs = sorted(
            (_canonical(k), _canonical(v)) for k, v in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in pairs) + "}"
    return repr(obj)


def key_digest(key: Any) -> str:
    """Hex SHA-256 naming the on-disk entry for *key*."""
    return hashlib.sha256(_canonical(key).encode("utf-8")).hexdigest()


class DiskCache:
    """Persistent content-addressed cache directory (backing protocol).

    Parameters
    ----------
    root:
        Cache directory; created on first use.  Entries live in 256
        two-hex-digit shard subdirectories; corrupt files move to
        ``quarantine/``.
    max_bytes:
        Byte budget; oldest entries (by mtime) are evicted past it.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the ``disk.*`` counters.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` receiving
        ``storage:*`` spans around reads, writes and evictions.
    lock_timeout:
        Seconds to wait for the writer lock before declaring starvation.
    breaker:
        Circuit breaker guarding reads and writes against *transient*
        I/O faults and corruption bursts.  Unlike :meth:`_degrade`
        (permanent, for conditions that cannot heal in-process), an
        open breaker silences the disk tier only for its cooldown and
        then probes it again.  A default breaker is created when none
        is passed.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int = DEFAULT_MAX_BYTES,
        metrics=None,
        tracer=None,
        lock_timeout: float = 5.0,
        breaker: CircuitBreaker | None = None,
    ):
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.metrics = metrics
        self.tracer = tracer
        self.disabled = False
        self._degraded_reason: str | None = None
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            "disk", failure_threshold=3, reset_timeout=30.0, metrics=metrics
        )
        self._lock = FileLock(self.root / ".lock", timeout=lock_timeout)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self._degrade(f"cannot create cache directory {self.root}: {exc}")

    # -- observability -----------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _span(self, name: str, **attributes):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attributes)

    def _degrade(self, reason: str) -> None:
        """Turn the disk layer off: one warning, one counter, then silence."""
        if self.disabled:
            return
        self.disabled = True
        self._degraded_reason = reason
        self._count("disk.degraded")
        warnings.warn(
            f"persistent cache disabled, continuing memory-only: {reason}",
            StorageDegradedWarning,
            stacklevel=4,
        )

    # -- paths -------------------------------------------------------------
    def _entry_path(self, key: Any) -> Path:
        digest = key_digest(key)
        return self.root / digest[:2] / f"{digest}{_ENTRY_SUFFIX}"

    def _entry_files(self):
        try:
            for shard in self.root.iterdir():
                if shard.is_dir() and len(shard.name) == 2:
                    yield from shard.glob(f"*{_ENTRY_SUFFIX}")
        except OSError:
            return

    # -- quarantine --------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (never raising) and count it."""
        self._count("disk.corrupt")
        with self._span("storage:quarantine", file=path.name, reason=reason):
            target_dir = self.root / "quarantine"
            try:
                target_dir.mkdir(exist_ok=True)
                target = target_dir / f"{path.name}.{os.getpid()}"
                os.replace(path, target)
            except OSError:
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass  # another process already moved or removed it

    # -- backing protocol --------------------------------------------------
    def get(self, key: Any) -> Any:
        """The stored value, or ``None`` on miss/corruption/degradation.

        Never raises: every abnormal entry is quarantined and reported
        as a miss, so the caller recomputes.
        """
        if self.disabled:
            return None
        if not self.breaker.allow():
            self._count("disk.breaker_skips")
            return None
        path = self._entry_path(key)
        with self._span("storage:read", file=path.name):
            try:
                _chaos("disk.read")
                blob = path.read_bytes()
            except FileNotFoundError:
                # A plain miss is healthy — it must not trip the breaker.
                self._count("disk.misses")
                return None
            except OSError:
                self._count("disk.misses")
                self._count("disk.io_errors")
                self.breaker.record_failure()
                return None
            value = self._decode(blob, key, path)
            if value is None:
                # Corruption burst (every entry quarantined) also opens
                # the breaker: stop paying read+quarantine per request.
                self._count("disk.misses")
                self.breaker.record_failure()
                return None
            self._count("disk.hits")
            self.breaker.record_success()
            try:
                os.utime(path)  # refresh LRU position
            except OSError:
                pass  # eviction accuracy is best-effort
            return value[0]

    def _decode(self, blob: bytes, key: Any, path: Path) -> tuple | None:
        """``(value,)`` on success; quarantines and returns None otherwise."""
        if len(blob) < _HEADER.size:
            self._quarantine(path, "truncated header")
            return None
        magic, fmt, schema, length, digest = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            self._quarantine(path, "bad magic")
            return None
        if fmt != FORMAT_VERSION or schema != SCHEMA_VERSION:
            self._quarantine(path, f"version mismatch (format={fmt}, schema={schema})")
            return None
        payload = blob[_HEADER.size:]
        if len(payload) != length:
            self._quarantine(path, "truncated payload")
            return None
        if hashlib.sha256(payload).digest() != digest:
            self._quarantine(path, "checksum mismatch")
            return None
        try:
            stored_key, value = pickle.loads(payload)
        except Exception:  # noqa: BLE001 — fault barrier: unpickling raises arbitrarily on corrupt data
            self._quarantine(path, "unpicklable payload")
            return None
        if stored_key != key:
            self._quarantine(path, "key mismatch")
            return None
        return (value,)

    def put(self, key: Any, value: Any) -> None:
        """Persist *value* under *key*; never raises.

        Same key ⇒ same content (the store is content-addressed), so an
        existing entry is left untouched.  Serialization failures skip
        the entry; I/O failures and lock starvation degrade the cache.
        """
        if self.disabled:
            return
        if not self.breaker.allow():
            self._count("disk.breaker_skips")
            return
        path = self._entry_path(key)
        if path.exists():
            return
        try:
            payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — fault barrier: arbitrary __getstate__/__reduce__ failures
            self._count("disk.unpicklable")
            return
        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            SCHEMA_VERSION,
            len(payload),
            hashlib.sha256(payload).digest(),
        )
        with self._span("storage:write", file=path.name, bytes=len(payload)):
            try:
                lock = self._lock.acquire()
            except LockTimeout as exc:
                self._count("disk.lock_timeouts")
                self._degrade(f"writer lock starvation: {exc}")
                return
            try:
                self._write_entry(path, header + payload)
                self._evict_to_budget(keep=path)
            except OSError as exc:
                if exc.errno == errno.ENOSPC:
                    # Disk full cannot heal from here: degrade for good.
                    self._degrade(f"disk full writing {path.name}: {exc}")
                elif exc.errno in (errno.EACCES, errno.EPERM, errno.EROFS):
                    # Permission/read-only faults cannot heal in-process
                    # either: degrade permanently rather than retrying
                    # a write that will never be allowed.
                    self._degrade(f"unwritable cache directory: {exc}")
                else:
                    # Any other I/O fault is treated as transient: the
                    # breaker silences the tier for a cooldown, then a
                    # half-open probe retries — an NFS blip no longer
                    # costs the whole process its persistent cache.
                    self._count("disk.io_errors")
                    self.breaker.record_failure()
            else:
                self.breaker.record_success()
            finally:
                lock.release()

    def _write_entry(self, path: Path, blob: bytes) -> None:
        """Atomic publication: temp file + fsync + ``os.replace``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{_TMP_PREFIX}{os.getpid()}-{next(_tmp_counter)}"
        try:
            _chaos("disk.write")
            with io.open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass  # leave the stray temp file to the next eviction
            raise
        self._count("disk.writes")

    def _evict_to_budget(self, keep: Path | None = None) -> None:
        """Drop oldest entries (and stray temp files) past the byte budget.

        Called with the writer lock held.  The just-written entry is
        exempt so a single oversized product cannot evict itself into a
        write/miss loop.
        """
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            entries.append((stat.st_mtime, stat.st_size, path))
        if total <= self.max_bytes:
            return
        with self._span("storage:evict", bytes=total - self.max_bytes):
            evicted = 0
            for _, size, path in sorted(entries):
                if total <= self.max_bytes:
                    break
                if keep is not None and path == keep:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                evicted += size
                self._count("disk.evictions")
            self._count("disk.evicted_bytes", evicted)

    def clear(self) -> None:
        """Remove every entry (an explicit wipe; never done implicitly)."""
        if self.disabled:
            return
        try:
            with self._lock:
                for path in list(self._entry_files()):
                    try:
                        path.unlink()
                    except OSError:
                        continue
        except LockTimeout as exc:
            self._count("disk.lock_timeouts")
            self._degrade(f"writer lock starvation: {exc}")

    def __contains__(self, key: Any) -> bool:
        return not self.disabled and self._entry_path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files()) if not self.disabled else 0

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def info(self) -> dict[str, Any]:
        return {
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "disabled": self.disabled,
            "degraded_reason": self._degraded_reason,
            "breaker": self.breaker.snapshot(),
        }

    def __repr__(self) -> str:
        state = "disabled" if self.disabled else f"{len(self)} entries"
        return f"DiskCache({str(self.root)!r}, {state})"
