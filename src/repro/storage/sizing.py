"""Approximate in-memory sizing of cached analysis products.

Entry-*count* bounds alone cannot keep a cache's footprint predictable:
a handful of large local-view products (traces, layout matrices) can
dwarf hundreds of tiny symbolic results.  :func:`approx_sizeof` gives a
cheap, recursive :func:`sys.getsizeof`-based estimate that the bounded
caches use as a secondary, byte-denominated eviction bound.

The estimate is deliberately approximate: recursion is depth-limited,
shared sub-objects are counted once, and objects that resist
``getsizeof`` fall back to a flat default.  Callers that know their
payloads better can pass their own ``sizeof`` callable to the caches.
"""

from __future__ import annotations

import sys
from typing import Any

__all__ = ["approx_sizeof"]

#: Flat fallback for objects whose ``__sizeof__`` misbehaves.
_DEFAULT_OBJECT_SIZE = 64


def approx_sizeof(obj: Any, depth: int = 4) -> int:
    """Approximate recursive byte size of *obj*.

    Containers (and instance ``__dict__``/``__slots__``) are walked up
    to *depth* levels; each distinct object is counted once.  NumPy
    arrays report their buffer through ``__sizeof__`` and need no
    special-casing.
    """
    seen: set[int] = set()

    def walk(value: Any, remaining: int) -> int:
        if id(value) in seen:
            return 0
        seen.add(id(value))
        try:
            size = sys.getsizeof(value, _DEFAULT_OBJECT_SIZE)
        except TypeError:  # a misdeclared __sizeof__
            size = _DEFAULT_OBJECT_SIZE
        if remaining <= 0:
            return size
        if isinstance(value, dict):
            for key, item in value.items():
                size += walk(key, remaining - 1)
                size += walk(item, remaining - 1)
        elif isinstance(value, (list, tuple, set, frozenset)):
            for item in value:
                size += walk(item, remaining - 1)
        else:
            attrs = getattr(value, "__dict__", None)
            if attrs is not None:
                size += walk(attrs, remaining - 1)
            for slot in getattr(type(value), "__slots__", ()):
                size += walk(getattr(value, slot, None), remaining - 1)
        return size

    return walk(obj, depth)
