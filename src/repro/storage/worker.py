"""Sweep-pool worker integration: warm the shared disk cache from workers.

When a session sweeps a parameter grid over worker processes, the
workers cannot see the parent's in-memory store — but they *can* share
its disk cache.  :class:`DiskCachedPointFn` is a picklable pool entry
point that wraps the default point evaluation with a read-through /
write-through of the shared cache directory: a point whose
content-addressed key is already on disk is served without simulating,
and every freshly evaluated point is published for other workers,
future sweeps, and future processes.

The parent computes the content keys (it owns the pipeline) and ships
them alongside the grid; workers never fingerprint anything.  All
cross-process coordination — atomic publication, advisory locking,
corruption quarantine — is the :class:`~repro.storage.diskcache.DiskCache`'s
job; a worker whose disk degrades silently evaluates everything itself.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.storage.diskcache import DiskCache

__all__ = ["DiskCachedPointFn"]

#: Per-worker-process store cache, keyed by cache directory: one
#: ``DiskCache`` per directory per process, reused across tasks.
_WORKER_STORES: dict[str, Any] = {}


def _freeze(params: Mapping[str, int]) -> tuple:
    return tuple(sorted(params.items()))


def _worker_store(cache_dir: str, max_bytes: int):
    """The per-process ResultStore over the shared disk directory."""
    store = _WORKER_STORES.get(cache_dir)
    if store is None:
        from repro.passes.store import ResultStore

        store = ResultStore(
            backing=DiskCache(cache_dir, max_bytes=max_bytes)
        )
        if len(_WORKER_STORES) >= 4:
            _WORKER_STORES.clear()
        _WORKER_STORES[cache_dir] = store
    return store


class DiskCachedPointFn:
    """Picklable sweep-point evaluator with shared-disk memoization.

    Parameters
    ----------
    cache_dir:
        The session's cache directory.
    keys:
        ``frozen-params -> content key`` for every point the parent
        submits; the keys match what the parent's pipeline would use,
        so parent and workers address the same entries.
    max_bytes:
        Byte budget forwarded to each worker's :class:`DiskCache`.
    """

    def __init__(self, cache_dir: str | os.PathLike, keys: dict[tuple, tuple], max_bytes: int):
        self.cache_dir = str(cache_dir)
        self.keys = dict(keys)
        self.max_bytes = int(max_bytes)

    def __call__(
        self,
        sdfg_text: str,
        params: Mapping[str, int],
        line_size: int,
        capacity_lines: int,
        include_transients: bool,
        fast: bool,
    ):
        from repro.analysis.executor import _worker_evaluate
        from repro.passes.store import ResultStore

        store = _worker_store(self.cache_dir, self.max_bytes)
        key = self.keys.get(_freeze(params))
        if key is not None:
            value = store.get(key)
            if not ResultStore.is_miss(value):
                return value
        point = _worker_evaluate(
            sdfg_text, params, line_size, capacity_lines,
            include_transients, fast,
        )
        if key is not None:
            store.put(key, point)
        return point

    def __repr__(self) -> str:
        return (
            f"DiskCachedPointFn({self.cache_dir!r}, points={len(self.keys)})"
        )
