"""Two-tier (memory over disk) backing for the content-addressed store.

:class:`TieredBacking` layers a bounded in-memory LRU over a
:class:`~repro.storage.diskcache.DiskCache`, implementing the same
``get``/``put``/``clear``/``info`` backing protocol both tiers speak —
so a :class:`~repro.passes.store.ResultStore` gains persistence without
knowing it, and the pipeline's ``runs``/``hits`` accounting keeps
working unchanged (a disk hit is a store hit).

Reads go memory-first and promote disk hits into memory; writes go
through to both tiers.  ``clear()`` empties only the memory tier: the
disk directory is shared with other processes, and content-addressed
keys make stale serving impossible — a session that reloads a program
changes its key scope instead of wiping shared state.  Use
:meth:`DiskCache.clear` for an explicit on-disk wipe.
"""

from __future__ import annotations

from typing import Any

from repro.storage.diskcache import DiskCache

__all__ = ["TieredBacking"]


class TieredBacking:
    """Memory-LRU-over-disk composition of two backing caches."""

    def __init__(self, memory, disk: DiskCache):
        self.memory = memory
        self.disk = disk

    def get(self, key: tuple) -> Any:
        value = self.memory.get(key)
        if value is not None:
            return value
        if self.disk.disabled:
            # Degraded to memory-only: skip key hashing and path work.
            return None
        value = self.disk.get(key)
        if value is None:
            return None
        self.memory.put(key, value)  # promote for repeat queries
        return value

    def put(self, key: tuple, value: Any) -> None:
        self.memory.put(key, value)
        if not self.disk.disabled:
            self.disk.put(key, value)

    def clear(self) -> None:
        """Drop the memory tier only (the disk tier is shared state)."""
        self.memory.clear()

    def __contains__(self, key: tuple) -> bool:
        return key in self.memory or key in self.disk

    def __len__(self) -> int:
        return len(self.memory)

    def info(self) -> dict[str, Any]:
        info = dict(self.memory.info())
        info["disk"] = self.disk.info()
        return info

    def __repr__(self) -> str:
        return f"TieredBacking(memory={self.memory!r}, disk={self.disk!r})"
