"""Crash-safe persistent storage for content-addressed analysis results.

The storage layer makes the incremental pass pipeline survive process
restarts: a :class:`~repro.storage.diskcache.DiskCache` persists every
pass product under its content key with atomic writes, checksummed
entries, corruption quarantine and advisory cross-process locking;
:class:`~repro.storage.tiered.TieredBacking` layers the in-memory LRU
on top so the :class:`~repro.passes.store.ResultStore` reads through
memory first and writes through to disk.

Failure contract: no storage failure ever corrupts a result or raises
into an analysis — corrupt entries are quarantined and recomputed, and
unusable directories (read-only, full, lock-starved) degrade the layer
to memory-only with one warning and one counter.

Quick start::

    session = Session(program, cache_dir="~/.cache/repro")
    # or: REPRO_CACHE_DIR=~/.cache/repro, or repro-view --cache-dir ...
"""

from __future__ import annotations

from repro.storage.diskcache import (
    DEFAULT_MAX_BYTES,
    FORMAT_VERSION,
    SCHEMA_VERSION,
    DiskCache,
    StorageDegradedWarning,
    key_digest,
)
from repro.storage.locks import FileLock
from repro.storage.sizing import approx_sizeof
from repro.storage.tiered import TieredBacking
from repro.storage.worker import DiskCachedPointFn

__all__ = [
    "DEFAULT_MAX_BYTES",
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
    "DiskCache",
    "DiskCachedPointFn",
    "FileLock",
    "StorageDegradedWarning",
    "TieredBacking",
    "approx_sizeof",
    "key_digest",
]
