"""Advisory cross-process file locks with timeouts.

Concurrent sessions and sweep pool workers sharing one on-disk cache
coordinate through a :class:`FileLock`: an advisory ``flock``-based
exclusive lock with a bounded acquisition timeout, so a crashed or
wedged holder can never stall another process forever — the waiter
raises :class:`~repro.errors.LockTimeout` and its caller degrades
gracefully instead of blocking an interactive analysis.

``flock`` locks are released by the kernel when the holding process
dies, so crash recovery needs no stale-lock cleanup.  On platforms
without :mod:`fcntl` the lock falls back to an ``O_EXCL`` lock file
(best-effort; a crashed holder is detected by lock-file age).  The two
modes interoperate on one lockfile: ``flock`` acquirers refresh the
file's mtime so an age-based fallback waiter never mistakes a *held*
``flock`` lock for an abandoned marker.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable

from repro.errors import LockTimeout

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]

#: Age in seconds after which an ``O_EXCL`` fallback lock file left by a
#: crashed process is considered stale and broken.  ``flock`` acquirers
#: refresh the file's mtime so held locks never reach this age at
#: acquisition time.
_STALE_LOCKFILE_SECONDS = 30.0


class FileLock:
    """An advisory exclusive lock on *path* with an acquisition timeout.

    Usable as a context manager::

        with FileLock(cache_dir / ".lock", timeout=2.0):
            ...  # exclusive section

    Acquisition polls every *poll* seconds until *timeout* elapses, then
    raises :class:`~repro.errors.LockTimeout`.  The lock is advisory:
    only cooperating processes (other :class:`FileLock` users) observe
    it.  Not reentrant.
    """

    #: Test hook: called between the age check and the identity
    #: re-verification in :meth:`_break_stale` so races with a live
    #: holder can be exercised deterministically.  ``None`` outside tests.
    _break_stale_window: Callable[[], None] | None = None

    def __init__(self, path: str | os.PathLike, timeout: float = 5.0, poll: float = 0.01):
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll = float(poll)
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise LockTimeout(f"lock {self.path} is not reentrant")
        deadline = time.monotonic() + self.timeout
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    # Refresh the lockfile's mtime: the flock path never
                    # unlinks on release, so without this an aged (but
                    # *held*) lockfile would look abandoned to an O_EXCL
                    # fallback process (e.g. a container without flock),
                    # which would break the lock and enter the critical
                    # section alongside the flock holder.
                    try:
                        os.utime(fd)
                    except OSError:  # pragma: no cover - fd utime unsupported
                        try:
                            os.utime(self.path)
                        except OSError:
                            pass
                    self._fd = fd
                    return self
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise LockTimeout(
                            f"could not acquire {self.path} within "
                            f"{self.timeout:g}s"
                        ) from None
                    time.sleep(self.poll)
        # O_EXCL fallback: create-or-wait on a marker file.
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                )
                return self
            except FileExistsError:
                self._break_stale()
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within {self.timeout:g}s"
                    ) from None
                time.sleep(self.poll)

    def _break_stale(self) -> None:
        """Remove an ``O_EXCL`` marker abandoned by a crashed process.

        Breaking is two-phased to close a TOCTOU hole: between observing
        a stale marker and unlinking it, the stale holder can release
        the lock and *another* process can legitimately re-create the
        marker — a naive unlink would then delete a fresh lock and let
        two processes into the critical section.  So after the age
        check, the marker is re-opened and its identity (device, inode)
        and mtime are verified against the initial ``stat``; any
        mismatch means the file changed hands and must not be touched.
        """
        try:
            before = self.path.stat()
            if time.time() - before.st_mtime <= _STALE_LOCKFILE_SECONDS:
                return
            if self._break_stale_window is not None:
                self._break_stale_window()
            # Re-verify identity on an open fd: a released-and-recreated
            # marker has a new inode (and a fresh mtime); a refreshed one
            # keeps its inode but moves its mtime.  Either way it is a
            # live lock and must survive.
            fd = os.open(self.path, os.O_RDONLY)
            try:
                after = os.fstat(fd)
            finally:
                os.close(fd)
            if (
                after.st_dev != before.st_dev
                or after.st_ino != before.st_ino
                or after.st_mtime != before.st_mtime
            ):
                return
            self.path.unlink(missing_ok=True)
        except OSError:
            pass  # the holder released it concurrently; retry the open

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            else:
                self.path.unlink(missing_ok=True)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"FileLock({str(self.path)!r}, held={self.held})"
