"""The concurrent analysis service: ``repro serve`` behind the HTTP layer.

One :class:`AnalysisServer` owns one long-lived
:class:`~repro.tool.session.Session` and exposes its products over HTTP:

====================  =========================================================
``GET /``             service index (endpoints, program name)
``GET /v1/healthz``   liveness probe
``GET /v1/metrics``   the session's full metrics registry + cache info as JSON
``GET /v1/global/heatmap``  global movement heatmap (SVG, or JSON values)
``GET /v1/local/view``      one local-view parameter point (JSON products)
``POST /v1/sweep``    parameter-grid sweep streamed as NDJSON progress events
``POST /v1/tune``     auto-tuning search streamed as NDJSON progress events
====================  =========================================================

Design notes (see DESIGN.md §14 for the full discussion):

- **Coalescing** — identical concurrent requests share one evaluation.
  The join key is the *content-addressed pipeline key* of the requested
  product, so coalescing is exact: same graph content + same parameters
  + same cache model means the same key, anything else differs.
- **ETag** — derived from the same pipeline key, which is computable
  *without* evaluating anything.  A client revalidating with
  ``If-None-Match`` gets its 304 before the server touches the pipeline.
- **Cancellation** — a disconnected client cancels its handler task; the
  coalescer reference-counts waiters and fires the shared
  :class:`~repro.analysis.executor.CancelToken` only when the last
  waiter is gone, so one impatient client never kills work others need.
- **Threading** — the event loop never runs analyses; CPU-bound work is
  dispatched to a worker-thread pool and serialized on a session lock
  (the session's pipeline and caches are not thread-safe).  Coalescing
  does the heavy lifting for concurrency: the common interactive load —
  many clients viewing the same analysis — costs one evaluation.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Mapping

from repro.analysis.executor import CancelToken, SweepPointError
from repro.errors import ReproError
from repro.resilience.admission import AdmissionController, Overloaded
from repro.resilience.chaos import active as _chaos_active
from repro.resilience.deadline import DEADLINE_REASON, Deadline, DeadlineExceeded
from repro.resilience.drain import DrainState
from repro.serve.coalesce import Coalescer
from repro.serve.http import (
    Connection,
    HttpError,
    Request,
    Response,
    json_response,
    read_request,
)
from repro.tool.session import Session
from repro.version import __version__

__all__ = ["AnalysisServer", "ServeShutdownWarning"]

_CACHE_PARAMS = ("line_size", "capacity", "transients", "fast")

#: Control-plane paths that bypass admission control and drain shedding:
#: load balancers and operators must be able to probe a saturated or
#: draining server.
_EXEMPT_PATHS = frozenset({"/", "/v1/healthz", "/v1/metrics"})


class ServeShutdownWarning(RuntimeWarning):
    """stop() could not join the server loop thread within its timeout."""


def _etag(key: Any) -> str:
    """A strong ETag from a content-addressed pipeline key."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return f'"{digest[:32]}"'


def _parse_symbols(query: Mapping[str, str]) -> dict[str, int]:
    """Symbol assignments from query parameters (everything not reserved)."""
    reserved = set(_CACHE_PARAMS) | {"format", "method", "data"}
    out: dict[str, int] = {}
    for name, value in query.items():
        if name in reserved:
            continue
        try:
            out[name] = int(value)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name}={value!r} is not an integer"
            ) from None
    if not out:
        raise HttpError(400, "no symbol assignments in query (e.g. ?I=8&J=8&K=5)")
    return out


def _parse_deadline_header(request: Request) -> Deadline | None:
    """The request deadline from ``X-Repro-Deadline-Ms`` (or ``None``)."""
    raw = request.header("x-repro-deadline-ms")
    if raw is None:
        return None
    try:
        ms = float(raw)
    except ValueError:
        raise HttpError(
            400, f"bad X-Repro-Deadline-Ms value {raw!r} (milliseconds)"
        ) from None
    if ms <= 0:
        raise HttpError(400, "X-Repro-Deadline-Ms must be positive")
    return Deadline.after_ms(ms)


def _deadline_from_body(
    body: Mapping[str, Any], header: Deadline | None
) -> Deadline | None:
    """The effective stream deadline: ``deadline_ms`` body field, header,
    or the tighter of the two."""
    raw = body.get("deadline_ms")
    if raw is None:
        return header
    try:
        ms = float(raw)
    except (TypeError, ValueError):
        raise HttpError(
            400, f"bad deadline_ms value {raw!r} (milliseconds)"
        ) from None
    if ms <= 0:
        raise HttpError(400, "deadline_ms must be positive")
    return Deadline.after_ms(ms).tighten(header)


def _parse_cache_model(query: Mapping[str, str]) -> tuple[int, int]:
    try:
        line_size = int(query.get("line_size", "64"))
        capacity = int(query.get("capacity", "512"))
    except ValueError as exc:
        raise HttpError(400, f"bad cache-model parameter: {exc}") from None
    if line_size <= 0 or capacity <= 0:
        raise HttpError(400, "line_size and capacity must be positive")
    return line_size, capacity


class AnalysisServer:
    """Serve one session's analysis products to many concurrent clients."""

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        admission_limits: Mapping[str, tuple[int, int]] | None = None,
        drain_timeout: float = 10.0,
    ):
        self.session = session
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.metrics = session.metrics
        self.tracer = session.tracer
        self._coalescer = Coalescer(self.metrics)
        self.admission = AdmissionController(admission_limits, metrics=self.metrics)
        self.drain = DrainState(metrics=self.metrics)
        self.drain_timeout = float(drain_timeout)
        #: The session (pipeline, stores, caches) is not thread-safe;
        #: every evaluation holds this lock.  Coalescing — not pool
        #: parallelism — is what makes N identical clients cheap.
        self._session_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        #: Per-(line_size, capacity) base contexts sharing the graph
        #: fingerprints: a warm request must not re-hash the (unchanged)
        #: SDFG.  Keyed by configuration because ``adopt_components`` is
        #: only valid between same-configuration contexts.
        self._bases: dict[tuple[int, int], Any] = {}
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._routes: dict[tuple[str, str], Callable[..., Awaitable[None]]] = {
            ("GET", "/"): self._handle_index,
            ("GET", "/v1/healthz"): self._handle_healthz,
            ("GET", "/v1/metrics"): self._handle_metrics,
            ("GET", "/v1/global/heatmap"): self._handle_global_heatmap,
            ("GET", "/v1/local/view"): self._handle_local_view,
            ("POST", "/v1/sweep"): self._handle_sweep,
            ("POST", "/v1/tune"): self._handle_tune,
        }

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._loop.set_default_executor(self._pool)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def start_background(self) -> "AnalysisServer":
        """Run the server on a dedicated thread (tests, benchmarks).

        Blocks until the port is bound; :attr:`port` is then the real
        port even when constructed with ``port=0``.
        """
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    def stop(self, join_timeout: float = 10.0) -> bool:
        """Stop a background server and join its loop thread.

        Returns ``True`` when the loop thread actually exited.  A wedged
        handler (one that swallows its cancellation) can keep the loop
        thread alive past *join_timeout*; in that case the worker pool is
        **not** shut down — tearing it down under a still-running loop
        would hand live handlers a dead executor — and the failure is
        surfaced as a :class:`ServeShutdownWarning` plus the
        ``serve.stop.join_timeouts`` counter instead of being ignored.
        The thread is a daemon, so a leaked loop dies with the process.
        """
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return True
        self.drain.stop(forced=False)

        async def shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            loop.stop()

        asyncio.run_coroutine_threadsafe(shutdown(), loop)
        thread.join(timeout=join_timeout)
        if thread.is_alive():
            self.metrics.counter("serve.stop.join_timeouts").inc()
            warnings.warn(
                f"server loop thread still alive after {join_timeout:.1f}s; "
                "a handler is ignoring cancellation — leaving the worker "
                "pool running and the loop thread leaked (daemon)",
                ServeShutdownWarning,
                stacklevel=2,
            )
            return False
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._thread = None
        return True

    def begin_drain(self) -> bool:
        """Flip to draining: healthz goes 503, new work is shed with 503.

        Idempotent; in-flight requests (including open streams) continue.
        """
        return self.drain.begin_drain()

    def drain_and_stop(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: drain in-flight work, then stop the server.

        Returns ``True`` when every in-flight request finished within
        *timeout* (default: the constructor's ``drain_timeout``); on
        ``False`` the stragglers were force-cancelled.
        """
        timeout = self.drain_timeout if timeout is None else float(timeout)
        self.begin_drain()
        clean = self.drain.wait_idle(timeout=timeout)
        self.drain.stop(forced=not clean)
        self.stop()
        return clean

    # -- connection handling --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = Connection(reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not conn.is_closing():
                try:
                    request = await read_request(conn)
                except HttpError as exc:
                    await conn.send(
                        json_response(
                            {"error": str(exc)}, exc.status, headers=exc.headers
                        ),
                        keep_alive=False,
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(conn, request)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown.  Swallowing is correct here: this is a
            # top-level task (spawned by start_server), and re-raising
            # only makes asyncio's connection callback log the
            # CancelledError as an unhandled error.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            await conn.close()

    async def _dispatch(self, conn: Connection, request: Request) -> bool:
        """Route one request.  Returns whether to keep the connection.

        Work endpoints pass three gates before their handler runs:
        drain (503 once SIGTERM arrived), admission (429 + Retry-After
        when the endpoint is saturated and its queue is full), and the
        request deadline (504 when it expired while queued).  Control
        endpoints (``/``, healthz, metrics) bypass all three so probes
        keep answering under overload and during drain.
        """
        endpoint = request.path.strip("/").replace("/", ".") or "index"
        self.metrics.counter(f"serve.{endpoint}.requests").inc()
        start = time.perf_counter()
        admitted = False
        entered = False
        try:
            handler = self._routes.get((request.method, request.path))
            if handler is None:
                if any(path == request.path for _, path in self._routes):
                    raise HttpError(405, f"method {request.method} not allowed")
                raise HttpError(404, f"no such endpoint: {request.path}")
            if request.path not in _EXEMPT_PATHS:
                if not self.drain.enter():
                    raise HttpError(
                        503, "server is draining", headers={"Retry-After": "1"}
                    )
                entered = True
                request.deadline = _parse_deadline_header(request)
                try:
                    if request.deadline is None:
                        await self.admission.acquire(request.path, endpoint)
                    else:
                        await asyncio.wait_for(
                            self.admission.acquire(request.path, endpoint),
                            timeout=request.deadline.remaining(),
                        )
                except Overloaded as exc:
                    raise HttpError(
                        429,
                        str(exc),
                        headers={"Retry-After": str(exc.retry_after)},
                    ) from None
                except asyncio.TimeoutError:
                    raise DeadlineExceeded(
                        "deadline expired while queued for admission"
                    ) from None
                admitted = True
            return await handler(conn, request)
        except HttpError as exc:
            if exc.status == 429:
                # Shed latency must stay flat under overload; measured
                # and asserted by the resilience benchmark.
                self.metrics.histogram("serve.shed_seconds").observe(
                    time.perf_counter() - start
                )
            await conn.send(
                json_response({"error": str(exc)}, exc.status, headers=exc.headers),
                keep_alive=request.keep_alive,
            )
            return request.keep_alive
        except DeadlineExceeded as exc:
            self.metrics.counter("serve.deadline_exceeded").inc()
            await conn.send(
                json_response({"error": str(exc)}, 504),
                keep_alive=request.keep_alive,
            )
            return request.keep_alive
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            await conn.send(
                json_response({"error": str(exc)}, 422),
                keep_alive=request.keep_alive,
            )
            return request.keep_alive
        except (ConnectionError, OSError):
            return False
        except Exception as exc:  # noqa: BLE001 - fault barrier per request
            self.metrics.counter("serve.errors").inc()
            await conn.send(
                json_response(
                    {"error": f"internal error: {type(exc).__name__}: {exc}"}, 500
                ),
                keep_alive=False,
            )
            return False
        finally:
            if admitted:
                self.admission.release(
                    request.path, endpoint, seconds=time.perf_counter() - start
                )
            if entered:
                self.drain.exit()
            elapsed = time.perf_counter() - start
            self.metrics.histogram(f"serve.{endpoint}.seconds").observe(elapsed)
            # record() instead of a ``with span():`` around the await —
            # interleaved coroutines share the loop thread's span stack,
            # so an open span across an await point would adopt unrelated
            # requests as children.
            self.tracer.record(f"serve:{endpoint}", elapsed)

    # -- evaluation plumbing ---------------------------------------------------
    def _point_context(self, params, line_size, capacity):
        config = (line_size, capacity)
        base = self._bases.get(config)
        ctx = self.session.point_context(
            params, line_size=line_size, capacity_lines=capacity, base=base
        )
        if base is None:
            donor = next(iter(self._bases.values()), None)
            if donor is not None:
                # Cross-config graph-fingerprint sharing: pin this
                # config's own components first so the donor's values
                # (different line/capacity) can never leak in through
                # adopt_components' setdefault.
                for name in ("scope", "sim", "line", "capacity"):
                    ctx.component(name)
                ctx.adopt_components(donor)
            self._bases[config] = ctx
        return ctx

    async def _coalesced(
        self,
        conn: Connection,
        request: Request,
        key: Any,
        compute: Callable[[CancelToken], Any],
    ) -> Response | None:
        """ETag check, then coalesced evaluation with disconnect watch.

        Returns the response to send, or ``None`` when the client
        disconnected (nothing to send, connection is dead).
        """
        etag = _etag(key)
        if request.header("if-none-match") == etag:
            self.metrics.counter("serve.etag_304").inc()
            return Response(304, headers={"ETag": etag})
        # The deadline bounds only this client's wait (504 on expiry);
        # the shared evaluation keeps running while other waiters remain
        # and is reference-count-cancelled when the last one leaves.
        fetch = asyncio.ensure_future(
            self._coalescer.fetch(key, compute, request.deadline)
        )
        watch = asyncio.ensure_future(conn.wait_disconnect())
        done, _ = await asyncio.wait(
            {fetch, watch}, return_when=asyncio.FIRST_COMPLETED
        )
        if fetch not in done and watch in done and watch.result():
            # Peer hung up while we were computing: cancel our waiter
            # slot (the coalescer fires the token if we were the last).
            self.metrics.counter("serve.disconnects").inc()
            fetch.cancel()
            try:
                await fetch
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            return None
        if not watch.done():
            # Await the cancellation: the watcher sits in ``reader.read``
            # and the next request parse must not overlap with it.
            watch.cancel()
            try:
                await watch
            except asyncio.CancelledError:
                pass
        response = await fetch
        response.headers["ETag"] = etag
        return response

    # -- endpoints -------------------------------------------------------------
    async def _handle_index(self, conn: Connection, request: Request) -> bool:
        payload = {
            "service": "repro-serve",
            "version": __version__,
            "program": self.session.sdfg.name,
            "endpoints": sorted(
                f"{method} {path}" for method, path in self._routes
            ),
        }
        await conn.send(json_response(payload), keep_alive=request.keep_alive)
        return request.keep_alive

    async def _handle_healthz(self, conn: Connection, request: Request) -> bool:
        snap = self.drain.snapshot()
        serving = snap["phase"] == "serving"
        payload = {
            "status": "ok" if serving else snap["phase"],
            "program": self.session.sdfg.name,
            "inflight": self._coalescer.inflight,
        }
        # 503 once draining: load balancers stop routing here while the
        # in-flight work (still counted above) runs to completion.
        await conn.send(
            json_response(payload, 200 if serving else 503),
            keep_alive=request.keep_alive,
        )
        return request.keep_alive

    async def _handle_metrics(self, conn: Connection, request: Request) -> bool:
        payload = self.metrics.to_dict()
        payload["simulation_cache"] = self.session.cache_info()
        breakers = {"pool": self.session.pool_breaker.snapshot()}
        if self.session.disk is not None:
            breakers["disk"] = self.session.disk.breaker.snapshot()
        payload["resilience"] = {
            "admission": self.admission.snapshot(),
            "drain": self.drain.snapshot(),
            "breakers": breakers,
        }
        chaos = _chaos_active()
        if chaos is not None:
            payload["resilience"]["chaos"] = chaos.snapshot()
        await conn.send(json_response(payload), keep_alive=request.keep_alive)
        return request.keep_alive

    async def _handle_global_heatmap(
        self, conn: Connection, request: Request
    ) -> bool:
        env = _parse_symbols(request.query)
        fmt = request.query.get("format", "svg")
        method = request.query.get("method", "mean")
        if fmt not in ("svg", "json"):
            raise HttpError(400, f"unknown format {fmt!r} (svg or json)")
        # ``global.totals`` keys on graph content, not env, so the env
        # rides alongside in the ETag/coalescing tuple.
        ctx = self._point_context(env, 64, 512)
        key = (
            "global.heatmap",
            tuple(sorted(env.items())),
            method,
            fmt,
            self.session.product_key("global.totals", ctx),
        )

        def compute(cancel: CancelToken) -> Response:
            with self._session_lock:
                gv = self.session.global_view()
                if fmt == "svg":
                    svg = gv.render(env=env, edge_overlay="movement", method=method)
                    return Response(
                        200, svg.encode("utf-8"), "image/svg+xml"
                    )
                heatmap = gv.movement_heatmap(env, method=method)
                edges = [
                    {
                        "index": index,
                        "src": edge.src.label,
                        "dst": edge.dst.label,
                        "data": (
                            edge.data.memlet.data
                            if edge.data is not None and edge.data.memlet is not None
                            else None
                        ),
                        "bytes": value,
                    }
                    for index, (edge, value) in enumerate(heatmap.values.items())
                ]
                payload = {
                    "params": env,
                    "method": method,
                    "total_movement_bytes": gv.total_movement(env),
                    "total_ops": gv.total_ops(env),
                    "edges": edges,
                }
                return json_response(payload)

        response = await self._coalesced(conn, request, key, compute)
        if response is None:
            return False
        await conn.send(response, keep_alive=request.keep_alive)
        return request.keep_alive

    async def _handle_local_view(
        self, conn: Connection, request: Request
    ) -> bool:
        params = _parse_symbols(request.query)
        line_size, capacity = _parse_cache_model(request.query)
        ctx = self._point_context(params, line_size, capacity)
        key = self.session.product_key("local.point", ctx)

        def compute(cancel: CancelToken) -> Response:
            with self._session_lock:
                run = self.session.sweep(
                    [params],
                    line_size=line_size,
                    capacity_lines=capacity,
                    on_error="record",
                    cancel=cancel,
                )
            outcome = run.outcomes[0]
            if isinstance(outcome, SweepPointError):
                return json_response(
                    {
                        "error": outcome.message,
                        "kind": outcome.kind,
                        "params": dict(outcome.params),
                    },
                    status=422,
                )
            payload = outcome.to_dict()
            payload["cache_model"] = {
                "line_size": line_size,
                "capacity_lines": capacity,
            }
            return json_response(payload)

        response = await self._coalesced(conn, request, key, compute)
        if response is None:
            return False
        await conn.send(response, keep_alive=request.keep_alive)
        return request.keep_alive

    async def _handle_sweep(self, conn: Connection, request: Request) -> bool:
        body = request.json()
        if not isinstance(body, dict) or "grid" not in body:
            raise HttpError(400, 'sweep body must be {"grid": {...}, ...}')
        grid = body["grid"]
        try:
            if isinstance(grid, dict):
                grid = {
                    str(name): [int(v) for v in values]
                    for name, values in grid.items()
                }
                if not grid or not all(grid.values()):
                    raise HttpError(400, "grid axes must be non-empty lists")
                points = 1
                for values in grid.values():
                    points *= len(values)
            elif isinstance(grid, list):
                grid = [
                    {str(name): int(v) for name, v in point.items()}
                    for point in grid
                ]
                points = len(grid)
            else:
                raise HttpError(400, "grid must be an axes object or a point list")
        except (TypeError, ValueError, AttributeError):
            raise HttpError(400, "grid values must be integers") from None
        if points == 0:
            raise HttpError(400, "grid expands to zero points")
        if points > 10_000:
            raise HttpError(422, f"grid expands to {points} points (max 10000)")
        line_size = int(body.get("line_size", 64))
        capacity = int(body.get("capacity", 512))
        if line_size <= 0 or capacity <= 0:
            raise HttpError(400, "line_size and capacity must be positive")
        deadline = _deadline_from_body(body, request.deadline)

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        token = CancelToken()
        timer = None if deadline is None else deadline.arm(token)
        _END = object()

        def on_result(index: int, outcome: Any) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, (index, outcome))

        def run_sweep() -> Any:
            try:
                with self._session_lock:
                    with self.tracer.span("serve:sweep.run"):
                        return self.session.sweep(
                            grid,
                            line_size=line_size,
                            capacity_lines=capacity,
                            on_error="record",
                            cancel=token,
                            on_result=on_result,
                        )
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _END)

        start = time.perf_counter()
        sweep_task = asyncio.ensure_future(
            loop.run_in_executor(None, run_sweep)
        )
        await conn.send_stream_head()
        streamed = 0
        try:
            await conn.send_stream_line(
                {"event": "start", "program": self.session.sdfg.name}
            )
            while True:
                item = await queue.get()
                if item is _END:
                    break
                index, outcome = item
                if isinstance(outcome, SweepPointError):
                    event = {
                        "event": "point",
                        "index": index,
                        "params": dict(outcome.params),
                        "status": "failed",
                        "kind": outcome.kind,
                        "error": outcome.message,
                    }
                else:
                    event = {
                        "event": "point",
                        "index": index,
                        "status": "ok",
                        **outcome.to_dict(),
                    }
                await conn.send_stream_line(event)
                streamed += 1
            try:
                run = await sweep_task
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - producer thread died
                # The status line is long gone; a silent close would look
                # like success to a streaming client.  Emit a terminal
                # error record so the truncation is machine-detectable.
                self.metrics.counter("serve.stream_errors").inc()
                await conn.send_stream_line(
                    {
                        "event": "error",
                        "kind": type(exc).__name__,
                        "error": str(exc),
                        "points_streamed": streamed,
                    }
                )
                return False
            if token.cancelled and token.reason == DEADLINE_REASON:
                self.metrics.counter("serve.deadline_exceeded").inc()
                await conn.send_stream_line(
                    {
                        "event": "error",
                        "kind": "deadline",
                        "error": DEADLINE_REASON,
                        "points": len(run),
                        "failed": len(run.errors),
                        "points_streamed": streamed,
                        "seconds": time.perf_counter() - start,
                    }
                )
                return False
            await conn.send_stream_line(
                {
                    "event": "end",
                    "points": len(run),
                    "failed": len(run.errors),
                    "seconds": time.perf_counter() - start,
                }
            )
        except (ConnectionError, OSError):
            # Client dropped mid-stream: stop the sweep cooperatively.
            self.metrics.counter("serve.disconnects").inc()
            token.cancel("sweep client disconnected")
            await asyncio.wait({sweep_task})
        except asyncio.CancelledError:
            token.cancel("server shutting down")
            raise
        finally:
            if timer is not None:
                timer.cancel()
            if not sweep_task.done():
                await asyncio.wait({sweep_task})
        return False  # close-delimited stream

    async def _handle_tune(self, conn: Connection, request: Request) -> bool:
        body = request.json()
        if not isinstance(body, dict) or "params" not in body:
            raise HttpError(400, 'tune body must be {"params": {...}, ...}')
        try:
            params = {
                str(name): int(value)
                for name, value in body["params"].items()
            }
        except (TypeError, ValueError, AttributeError):
            raise HttpError(400, "params must map symbols to integers") from None
        if not params:
            raise HttpError(400, "params must assign at least one symbol")
        transforms = body.get("transforms")
        if transforms is not None and (
            not isinstance(transforms, list)
            or not all(isinstance(t, str) for t in transforms)
        ):
            raise HttpError(400, "transforms must be a list of names")
        try:
            beam = int(body.get("beam", 6))
            depth = int(body.get("depth", 4))
            budget = int(body.get("budget", 128))
            line_size = int(body.get("line_size", 64))
            capacity = int(body.get("capacity", 512))
            timeout = body.get("timeout")
            timeout = None if timeout is None else float(timeout)
        except (TypeError, ValueError):
            raise HttpError(400, "tune settings must be numeric") from None
        if min(beam, depth, budget) < 1:
            raise HttpError(400, "beam, depth and budget must be >= 1")
        if budget > 10_000:
            raise HttpError(422, f"budget {budget} too large (max 10000)")
        if line_size <= 0 or capacity <= 0:
            raise HttpError(400, "line_size and capacity must be positive")
        deadline = _deadline_from_body(body, request.deadline)

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        token = CancelToken()
        _END = object()

        def on_event(event: dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        def run_tune() -> Any:
            try:
                with self._session_lock:
                    with self.tracer.span("serve:tune.run"):
                        return self.session.tune(
                            params,
                            transforms=transforms,
                            beam=beam,
                            depth=depth,
                            budget=budget,
                            line_size=line_size,
                            capacity_lines=capacity,
                            timeout=timeout,
                            cancel=token,
                            on_event=on_event,
                            deadline=deadline,
                        )
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _END)

        tune_task = asyncio.ensure_future(loop.run_in_executor(None, run_tune))
        await conn.send_stream_head()
        try:
            while True:
                item = await queue.get()
                if item is _END:
                    break
                # Search events carry tuples inside descriptors; NDJSON
                # encodes them as arrays, which is what clients expect.
                await conn.send_stream_line(item)
            try:
                await tune_task
            except asyncio.CancelledError:
                raise
            except ReproError as exc:
                # The stream head is already out; deliver the failure as
                # the final event instead of a late HTTP error.
                await conn.send_stream_line(
                    {"event": "error", "error": str(exc)}
                )
            except Exception as exc:  # noqa: BLE001 - producer thread died
                # Non-domain failures (a crashed producer thread) must
                # also terminate the stream with a machine-readable
                # record, not a bare connection close.
                self.metrics.counter("serve.stream_errors").inc()
                await conn.send_stream_line(
                    {
                        "event": "error",
                        "kind": type(exc).__name__,
                        "error": str(exc),
                    }
                )
        except (ConnectionError, OSError):
            # Client dropped mid-stream: stop the search cooperatively.
            self.metrics.counter("serve.disconnects").inc()
            token.cancel("tune client disconnected")
            await asyncio.wait({tune_task})
        except asyncio.CancelledError:
            token.cancel("server shutting down")
            raise
        finally:
            if not tune_task.done():
                await asyncio.wait({tune_task})
        return False  # close-delimited stream
