"""``repro serve MODULE`` — boot the concurrent analysis service.

Usage::

    repro serve path/to/module.py --port 8080 --cache-dir .repro-cache

The module is imported, the named ``@repro.program`` function (or the
only one) becomes the served program, and the HTTP endpoints of
:class:`~repro.serve.app.AnalysisServer` come up on the requested port.
With ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) the pass store persists,
so a service restart over an unchanged program serves warm results
immediately.

Lifecycle: ``SIGTERM`` (and the second ``Ctrl-C``) triggers a graceful
drain — ``/v1/healthz`` flips to 503 "draining", new work is shed, and
in-flight requests (including open NDJSON streams) finish within
``--drain-timeout`` seconds.  Exit codes: 0 for a clean drain,
:data:`EXIT_DRAIN_TIMEOUT` (4) when stragglers had to be cancelled.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.errors import ReproError
from repro.resilience import chaos as chaos_mod
from repro.serve.app import AnalysisServer
from repro.tool.session import Session

__all__ = ["main", "build_parser", "EXIT_DRAIN_TIMEOUT"]

#: Exit code when the drain timed out and in-flight work was cancelled.
EXIT_DRAIN_TIMEOUT = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Concurrent data-movement analysis service",
    )
    parser.add_argument("module", help="Python file containing @repro.program functions")
    parser.add_argument("--function", help="program name (default: the only one)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads evaluating analyses off the event loop",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist analysis results to this directory (default: "
        "$REPRO_CACHE_DIR if set, else memory-only)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests before "
        "cancelling them (default: 10)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="override the default per-endpoint admission limit "
        "(applies to endpoints without a specific limit)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection spec (same grammar as "
        "$REPRO_CHAOS), e.g. 'disk.read:every=2'",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.chaos is not None:
            chaos_mod.install(args.chaos)
        # Reuse the report generator's loader so program discovery and
        # its error messages are identical across both front ends.
        from repro.tool.cli import _load_program

        program = _load_program(args.module, args.function)
        session = Session(program, cache_dir=args.cache_dir)
        limits = None
        if args.max_inflight is not None:
            if args.max_inflight < 1:
                raise ReproError("--max-inflight must be >= 1")
            limits = {"*": (args.max_inflight, args.max_inflight)}
        server = AnalysisServer(
            session,
            host=args.host,
            port=args.port,
            workers=args.workers,
            admission_limits=limits,
            drain_timeout=args.drain_timeout,
        )
        drained_clean = True

        async def run() -> None:
            nonlocal drained_clean
            await server.start()
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()

            def request_drain() -> None:
                # First signal: drain.  Repeated signals are idempotent;
                # the drain task below enforces the timeout either way.
                server.begin_drain()
                stop.set()

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, request_drain)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-Unix event loops fall back to KeyboardInterrupt
            print(
                f"serving {session.sdfg.name!r} on "
                f"http://{server.host}:{server.port}/ "
                f"({server.workers} workers)",
                flush=True,
            )
            serve = asyncio.ensure_future(server.serve_forever())
            await stop.wait()
            print("draining", file=sys.stderr, flush=True)
            # In-flight handlers run on this loop; wait_idle would block
            # it.  Poll the inflight count from the loop instead.
            drained_clean = await _await_idle(server, args.drain_timeout)
            server.drain.stop(forced=not drained_clean)
            serve.cancel()
            try:
                await serve
            except asyncio.CancelledError:
                pass

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        return 0 if drained_clean else EXIT_DRAIN_TIMEOUT
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


async def _await_idle(server: AnalysisServer, timeout: float) -> bool:
    """Wait (on the loop) until no requests are in flight; False on timeout."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while server.drain.inflight > 0:
        if loop.time() >= deadline:
            return False
        await asyncio.sleep(0.05)
    return True


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
