"""``repro serve MODULE`` — boot the concurrent analysis service.

Usage::

    repro serve path/to/module.py --port 8080 --cache-dir .repro-cache

The module is imported, the named ``@repro.program`` function (or the
only one) becomes the served program, and the HTTP endpoints of
:class:`~repro.serve.app.AnalysisServer` come up on the requested port.
With ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) the pass store persists,
so a service restart over an unchanged program serves warm results
immediately.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ReproError
from repro.serve.app import AnalysisServer
from repro.tool.session import Session

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Concurrent data-movement analysis service",
    )
    parser.add_argument("module", help="Python file containing @repro.program functions")
    parser.add_argument("--function", help="program name (default: the only one)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads evaluating analyses off the event loop",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist analysis results to this directory (default: "
        "$REPRO_CACHE_DIR if set, else memory-only)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # Reuse the report generator's loader so program discovery and
        # its error messages are identical across both front ends.
        from repro.tool.cli import _load_program

        program = _load_program(args.module, args.function)
        session = Session(program, cache_dir=args.cache_dir)
        server = AnalysisServer(
            session, host=args.host, port=args.port, workers=args.workers
        )

        async def run() -> None:
            await server.start()
            print(
                f"serving {session.sdfg.name!r} on "
                f"http://{server.host}:{server.port}/ "
                f"({server.workers} workers)",
                flush=True,
            )
            await server.serve_forever()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
