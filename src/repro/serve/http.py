"""A minimal asyncio HTTP/1.1 layer — just enough for the analysis service.

No third-party dependency and no framework: requests are parsed straight
off an :class:`asyncio.StreamReader`, responses are written to the peer
:class:`asyncio.StreamWriter`.  Supported surface:

- request line + headers + ``Content-Length`` bodies (no chunked request
  bodies, no multipart);
- keep-alive connections (HTTP/1.1 default; ``Connection: close``
  honored);
- fixed-length responses with ``Content-Length``, and *streamed*
  responses (NDJSON progress events) delimited by connection close;
- a connection wrapper with a one-byte *pushback* buffer so a
  disconnect watcher can peek at the socket between requests without
  eating the first byte of a pipelined follow-up request.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ReproError
from repro.resilience.chaos import inject as _chaos

__all__ = [
    "Connection",
    "HttpError",
    "Request",
    "Response",
    "json_response",
    "read_request",
]

#: Hard limits keeping a misbehaving client from ballooning memory.
MAX_REQUEST_LINE = 16 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(ReproError):
    """A malformed or unserviceable request; carries the response status.

    *headers* (e.g. ``Retry-After`` on a 429 shed) are merged into the
    error response.
    """

    def __init__(self, status: int, message: str, headers: Mapping[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.headers: dict[str, str] = dict(headers or {})


class Request:
    """One parsed HTTP request."""

    __slots__ = (
        "method", "target", "path", "query", "version", "headers", "body",
        "deadline",
    )

    def __init__(
        self,
        method: str,
        target: str,
        version: str,
        headers: dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers
        self.body = body
        #: Optional repro.resilience.deadline.Deadline attached by the
        #: dispatcher after parsing X-Repro-Deadline-Ms / body fields.
        self.deadline = None
        split = urlsplit(target)
        self.path = split.path
        self.query: dict[str, str] = dict(parse_qsl(split.query))

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = (self.header("connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """The request body parsed as JSON (400 on syntax errors)."""
        if not self.body:
            raise HttpError(400, "request body is empty (expected JSON)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc

    def __repr__(self) -> str:
        return f"Request({self.method} {self.target})"


class Response:
    """A fixed-length response: status, headers, body bytes."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self,
        status: int,
        body: bytes = b"",
        content_type: str | None = None,
        headers: Mapping[str, str] | None = None,
    ):
        self.status = int(status)
        self.body = body
        self.headers: dict[str, str] = dict(headers or {})
        if content_type is not None:
            self.headers["Content-Type"] = content_type

    def serialize(self, *, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(
    payload: Any,
    status: int = 200,
    headers: Mapping[str, str] | None = None,
) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return Response(status, body, "application/json", headers)


class Connection:
    """A client connection with a pushback buffer over the stream reader.

    The pushback buffer makes :meth:`wait_disconnect` safe: watching for
    a dropped client means reading from the socket, and a byte that
    arrives instead of EOF belongs to the *next* pipelined request — it
    is stashed and consumed by the next :meth:`readline` /
    :meth:`readexactly` call.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self._pushback = bytearray()

    async def readline(self, limit: int = MAX_REQUEST_LINE) -> bytes:
        if b"\n" in self._pushback:
            index = self._pushback.index(b"\n") + 1
            line = bytes(self._pushback[:index])
            del self._pushback[:index]
            return line
        line = bytes(self._pushback) + await self.reader.readline()
        self._pushback.clear()
        if len(line) > limit:
            raise HttpError(400, "request line or header too long")
        return line

    async def readexactly(self, n: int) -> bytes:
        take = min(n, len(self._pushback))
        head = bytes(self._pushback[:take])
        del self._pushback[:take]
        if take == n:
            return head
        return head + await self.reader.readexactly(n - take)

    async def wait_disconnect(self) -> bool:
        """Block until the peer closes (True) or sends data (False).

        Data is pushed back for the next request parse, so watching for
        a disconnect never corrupts the HTTP stream.
        """
        try:
            data = await self.reader.read(1)
        except (ConnectionError, OSError):
            return True
        if data:
            self._pushback += data
            return False
        return True

    def is_closing(self) -> bool:
        return self.writer.is_closing()

    async def send(self, response: Response, *, keep_alive: bool) -> None:
        _chaos("http.send")
        self.writer.write(response.serialize(keep_alive=keep_alive))
        await self.writer.drain()

    async def send_stream_head(
        self, status: int = 200, content_type: str = "application/x-ndjson"
    ) -> None:
        """Start a close-delimited streamed response (no Content-Length)."""
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        self.writer.write(head)
        await self.writer.drain()

    async def send_stream_line(self, payload: Any) -> None:
        """One NDJSON event on an open stream."""
        _chaos("http.send")
        self.writer.write(
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )
        await self.writer.drain()

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer raced us
            pass


async def read_request(conn: Connection) -> Request | None:
    """Parse one request off *conn*; ``None`` when the peer closed."""
    line = await conn.readline()
    if not line:
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, f"malformed request line: {line[:80]!r}") from None
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")
    headers: dict[str, str] = {}
    total = 0
    while True:
        raw = await conn.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "request headers too large")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {text[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}") from None
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(400, f"unacceptable Content-Length {n}")
        try:
            body = await conn.readexactly(n)
        except asyncio.IncompleteReadError:
            return None  # peer vanished mid-body
    return Request(method, target, version, headers, body)
