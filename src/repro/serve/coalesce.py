"""In-flight request coalescing keyed by content-addressed pipeline keys.

When N clients ask for the same analysis product concurrently, only the
first — the *leader* — pays for the evaluation; the rest join its
future.  The join key is the pipeline's content-addressed key, so "the
same" means *bit-identical inputs*, not merely the same URL.

Cancellation is reference-counted: every joined client that disconnects
decrements the waiter count, and only when the **last** waiter is gone
does the shared :class:`~repro.analysis.executor.CancelToken` fire.  A
single impatient client can never cancel work that other clients are
still waiting on.

All bookkeeping is event-loop-confined (mutated only from coroutines on
the owning loop), so no locks are needed; the compute callable itself
runs on a worker-thread pool via :meth:`loop.run_in_executor`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Hashable

from repro.analysis.executor import CancelToken
from repro.obs.metrics import MetricsRegistry
from repro.resilience.deadline import Deadline, DeadlineExceeded

__all__ = ["Coalescer"]


class _Entry:
    __slots__ = ("future", "waiters", "token")

    def __init__(self, future: asyncio.Future, token: CancelToken):
        self.future = future
        self.token = token
        self.waiters = 1


class Coalescer:
    """Deduplicate concurrent identical computations on an event loop."""

    def __init__(self, metrics: MetricsRegistry | None = None):
        self._inflight: dict[Hashable, _Entry] = {}
        self._metrics = metrics or MetricsRegistry()

    @property
    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._inflight)

    async def fetch(
        self,
        key: Hashable,
        compute: Callable[[CancelToken], Any],
        deadline: Deadline | None = None,
    ) -> Any:
        """Return ``compute(token)``, sharing work with identical requests.

        *compute* is a synchronous callable executed on the event loop's
        default thread-pool executor; it receives the shared
        :class:`CancelToken` and should poll it at natural yield points.
        If this coroutine is cancelled (client disconnect), the waiter
        count drops; the token fires only when no waiters remain.

        A *deadline* bounds only **this caller's wait**: when it expires,
        :class:`DeadlineExceeded` is raised here, but the shared
        evaluation keeps running as long as any other waiter remains —
        one impatient client's deadline must not waste work other
        clients are still entitled to.
        """
        loop = asyncio.get_running_loop()
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            self._metrics.counter("serve.coalesce.joined").inc()
            return await self._await_entry(key, entry, deadline)
        token = CancelToken()
        entry = _Entry(loop.create_future(), token)
        self._inflight[key] = entry
        self._metrics.counter("serve.coalesce.led").inc()
        task = loop.run_in_executor(None, compute, token)
        task = asyncio.ensure_future(task)
        task.add_done_callback(lambda t: self._finish(key, entry, t))
        return await self._await_entry(key, entry, deadline)

    def _finish(self, key: Hashable, entry: _Entry, task: asyncio.Task) -> None:
        # Runs on the loop when the pool thread hands back its result.
        self._inflight.pop(key, None)
        if entry.future.done():  # pragma: no cover - all waiters bailed first
            task.exception()
            return
        exc = task.exception()
        if exc is not None:
            entry.future.set_exception(exc)
            # Mark retrieved: abandoned futures with unread exceptions
            # spam "exception was never retrieved" warnings at GC time.
            entry.future.exception()
        else:
            entry.future.set_result(task.result())

    async def _await_entry(
        self, key: Hashable, entry: _Entry, deadline: Deadline | None = None
    ) -> Any:
        try:
            # shield(): a disconnecting (or deadline-expired) client must
            # not cancel the shared future out from under other waiters.
            # wait_for cancels only the shield wrapper on timeout.
            if deadline is None:
                return await asyncio.shield(entry.future)
            return await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=deadline.remaining()
            )
        except asyncio.TimeoutError:
            self._metrics.counter("serve.coalesce.deadline_expired").inc()
            self._drop_waiter(key, entry)
            raise DeadlineExceeded(
                "deadline expired while waiting for coalesced result"
            ) from None
        except asyncio.CancelledError:
            self._drop_waiter(key, entry)
            raise

    def _drop_waiter(self, key: Hashable, entry: _Entry) -> None:
        entry.waiters -= 1
        if entry.waiters <= 0 and not entry.future.done():
            entry.token.cancel("every waiting client disconnected or timed out")
            # Drop the entry so a late identical request starts fresh
            # instead of joining doomed work.
            if self._inflight.get(key) is entry:
                del self._inflight[key]
            self._metrics.counter("serve.coalesce.cancelled").inc()
