"""The concurrent analysis service (``repro serve``).

Serves one long-lived :class:`~repro.tool.session.Session` to many
concurrent HTTP clients, with in-flight coalescing of identical requests
on content-addressed pipeline keys, ETag revalidation derived from the
same keys, and cooperative cancellation wired to client disconnects.
See :mod:`repro.serve.app` for the endpoint surface and DESIGN.md §14
for the architecture discussion.
"""

from repro.serve.app import AnalysisServer
from repro.serve.coalesce import Coalescer
from repro.serve.http import HttpError, Request, Response

__all__ = ["AnalysisServer", "Coalescer", "HttpError", "Request", "Response"]
