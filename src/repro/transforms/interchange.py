"""Move a sequential loop into the map it wraps (loop/map interchange).

In this IR a sequential loop over one parameter is modeled as a
single-parameter map scope whose playback order is outermost (the
frontend and the builder place it outside the parallel map it drives):

    MapEntry(loop: jk)
      MapEntry(blocks: jn)
        ... body ...
      MapExit(blocks)
    MapExit(loop)

:func:`move_loop_into_map` is the analog of dace's ``MoveLoopIntoMap``
transformation: the loop parameter moves *inside* the map, producing one
flat scope whose parameter order is ``map params, then loop param`` — the
loop now runs innermost per map iteration.  The access *set* is
unchanged (logical analyses are invariant); only the playback sequence —
and with it the physical locality — changes.  The flattened scope also
unlocks :func:`~repro.transforms.loop_reorder.reorder_map` over the
combined parameters, which is how the auto-tuner composes schedules.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.sdfg.nodes import Map, MapEntry, MapExit
from repro.sdfg.state import SDFGState
from repro.transforms.report import TransformReport

__all__ = ["find_loop_map_nests", "move_loop_into_map"]


def _nest_of(state: SDFGState, outer: MapEntry) -> MapEntry | None:
    """The single inner map entry of a clean ``loop { map }`` nest, else None."""
    if len(outer.map.params) != 1:
        return None
    if outer.exit_node is None:
        return None
    children = state.scope_children().get(outer, [])
    entries = [n for n in children if isinstance(n, MapEntry)]
    exits = [n for n in children if isinstance(n, MapExit)]
    if len(entries) != 1 or len(children) != len(entries) + len(exits):
        return None  # stray tasklets/access nodes directly in the loop scope
    inner = entries[0]
    if exits != [inner.exit_node]:
        return None
    if outer.map.params[0] in inner.map.params:
        return None  # parameter name clash
    # Clean wiring: the inner scope talks only to the outer scope nodes.
    if any(e.src is not outer for e in state.in_edges(inner)):
        return None
    if any(e.dst is not outer.exit_node for e in state.out_edges(inner.exit_node)):
        return None
    return inner


def find_loop_map_nests(state: SDFGState) -> list[MapEntry]:
    """Outer (single-parameter) map entries of clean ``loop { map }`` nests."""
    return [
        entry for entry in state.map_entries() if _nest_of(state, entry) is not None
    ]


def move_loop_into_map(state: SDFGState, outer: MapEntry) -> TransformReport:
    """Merge the single-parameter loop scope *outer* into its inner map.

    The nest is flattened into one scope (the outer entry/exit nodes are
    kept, the inner pair dissolves) iterating ``inner params, then the
    loop param`` — the loop becomes the innermost playback dimension.
    Memlets are untouched: inner edges already carry the precise
    per-iteration subsets, and the edges outside the nest cover the same
    combined iteration space as before.
    """
    inner = _nest_of(state, outer)
    if inner is None:
        raise TransformError(
            f"map {outer.map.label!r} is not a single-parameter loop wrapping "
            "exactly one inner map"
        )
    outer_exit = outer.exit_node
    inner_exit = inner.exit_node
    assert outer_exit is not None and inner_exit is not None

    merged = Map(
        inner.map.label,
        list(inner.map.params) + list(outer.map.params),
        list(inner.map.ranges) + list(outer.map.ranges),
    )

    # Dissolve the inner entry: its outputs re-source from the outer entry
    # (same connector, same precise memlet); its inputs vanish with it.
    for edge in list(state.out_edges(inner)):
        state.add_edge(outer, edge.data.src_conn, edge.dst,
                       edge.data.dst_conn, edge.data.memlet)
        state.remove_edge(edge)
    for edge in list(state.in_edges(inner)):
        state.remove_edge(edge)

    # Dissolve the inner exit symmetrically.
    for edge in list(state.in_edges(inner_exit)):
        state.add_edge(edge.src, edge.data.src_conn, outer_exit,
                       edge.data.dst_conn, edge.data.memlet)
        state.remove_edge(edge)
    for edge in list(state.out_edges(inner_exit)):
        state.remove_edge(edge)

    state.remove_node(inner)
    state.remove_node(inner_exit)
    outer.map = merged
    outer_exit.map = merged
    return TransformReport(
        "move_loop_into_map",
        modified_states=(state.name,),
        detail=(
            f"loop {merged.params[-1]!r} moved into map {merged.label!r} "
            f"-> params {merged.params}"
        ),
    )
