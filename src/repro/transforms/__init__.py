"""Graph transformations: the optimizations the case studies apply.

The paper's tool informs *which* optimization to apply; the optimizations
themselves are standard dataflow transformations:

- :mod:`repro.transforms.map_fusion` — fuse producer/consumer maps through
  a transient intermediate, removing the data movement between them (the
  BERT case study's two rounds of "loop fusion", Section VI-A).
- :mod:`repro.transforms.layout` — change a container's physical layout:
  dimension permutation (hdiff's ``[I+4, J+4, K] → [K, I+4, J+4]`` reshape)
  and stride padding to cache-line multiples (Fig. 8c).
- :mod:`repro.transforms.loop_reorder` — permute a map's parameter order
  (hdiff's innermost-loop fix, Fig. 8b).
"""

from repro.transforms.layout import pad_strides_to_multiple, permute_array_layout
from repro.transforms.loop_reorder import reorder_map
from repro.transforms.map_fusion import MapFusion, fuse_all_maps
from repro.transforms.report import TransformReport

__all__ = [
    "MapFusion",
    "TransformReport",
    "fuse_all_maps",
    "permute_array_layout",
    "pad_strides_to_multiple",
    "reorder_map",
]
