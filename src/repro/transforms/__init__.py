"""Graph transformations: the optimizations the case studies apply.

The paper's tool informs *which* optimization to apply; the optimizations
themselves are standard dataflow transformations:

- :mod:`repro.transforms.map_fusion` — fuse producer/consumer maps through
  a transient intermediate, removing the data movement between them (the
  BERT case study's two rounds of "loop fusion", Section VI-A).
- :mod:`repro.transforms.layout` — change a container's physical layout:
  dimension permutation (hdiff's ``[I+4, J+4, K] → [K, I+4, J+4]`` reshape)
  and stride padding to cache-line multiples (Fig. 8c).
- :mod:`repro.transforms.loop_reorder` — permute a map's parameter order
  (hdiff's innermost-loop fix, Fig. 8b).
- :mod:`repro.transforms.strides` — AoS↔SoA stride relayout without
  touching the logical shape (the CLOUDSC/NBLOCKS story); layout-only,
  so candidate re-scoring reuses the cached simulation trace.
- :mod:`repro.transforms.interchange` — move a sequential loop into the
  map it wraps, changing playback order (and locality) only.

All of the above are exposed uniformly through
:mod:`repro.transforms.protocol`: each :class:`Transform` enumerates
content-keyed :class:`Match` descriptors and applies them with a
:class:`TransformReport` — the interface the auto-tuner
(:mod:`repro.tuning`) searches over.
"""

from repro.transforms.interchange import find_loop_map_nests, move_loop_into_map
from repro.transforms.layout import pad_strides_to_multiple, permute_array_layout
from repro.transforms.loop_reorder import reorder_map
from repro.transforms.map_fusion import FusionResult, MapFusion, fuse_all_maps
from repro.transforms.protocol import (
    ChangeStrides,
    MapFusionTransform,
    Match,
    MoveLoopIntoMap,
    PadStrides,
    PermuteArrayLayout,
    ReorderMap,
    Transform,
    default_transforms,
    get_transform,
    resolve_transforms,
)
from repro.transforms.report import TransformReport
from repro.transforms.strides import change_strides, change_strides_by_extent

__all__ = [
    "ChangeStrides",
    "FusionResult",
    "MapFusion",
    "MapFusionTransform",
    "Match",
    "MoveLoopIntoMap",
    "PadStrides",
    "PermuteArrayLayout",
    "ReorderMap",
    "Transform",
    "TransformReport",
    "change_strides",
    "change_strides_by_extent",
    "default_transforms",
    "find_loop_map_nests",
    "fuse_all_maps",
    "get_transform",
    "move_loop_into_map",
    "pad_strides_to_multiple",
    "permute_array_layout",
    "reorder_map",
    "resolve_transforms",
]
