"""Structured reports of what a transformation modified.

Content-addressed caching never *needs* these reports — a mutated graph
hashes differently, so stale results are unreachable by construction —
but they make invalidation *explainable*: the pipeline attaches the
reports to its recomputation records (``--explain-cache``), and callers
can see at a glance whether a transform touched graph structure, data
descriptors, or only physical layout (the last leaves the simulation
trace reusable).

Reports come from two places: pattern transforms
(:meth:`~repro.transforms.map_fusion.MapFusion.apply`,
:func:`~repro.transforms.loop_reorder.reorder_map`) build them directly
from what they rewired, and :meth:`Session.apply
<repro.tool.session.Session.apply>` derives one for arbitrary mutating
callables by diffing content fingerprints around the call.
"""

from __future__ import annotations

__all__ = ["TransformReport"]


class TransformReport:
    """What one applied transformation changed.

    - :attr:`transform` — the transform's name;
    - :attr:`modified_states` — names of states whose graph content
      changed;
    - :attr:`modified_arrays` — containers whose descriptors were added,
      removed, or replaced;
    - :attr:`layout_only` — ``True`` when only physical-layout fields
      (strides, offsets, alignment) changed, so every analysis keyed by
      *logical* content remains valid;
    - :attr:`detail` — free-form description of the rewrite.
    """

    __slots__ = (
        "transform",
        "modified_states",
        "modified_arrays",
        "layout_only",
        "detail",
    )

    def __init__(
        self,
        transform: str,
        modified_states: tuple[str, ...] = (),
        modified_arrays: tuple[str, ...] = (),
        layout_only: bool = False,
        detail: str = "",
    ):
        self.transform = transform
        self.modified_states = tuple(modified_states)
        self.modified_arrays = tuple(modified_arrays)
        self.layout_only = bool(layout_only)
        self.detail = detail

    def describe(self) -> str:
        parts = [self.transform]
        if self.detail:
            parts.append(f"({self.detail})")
        touched = []
        if self.modified_states:
            touched.append(f"states: {', '.join(self.modified_states)}")
        if self.modified_arrays:
            touched.append(f"arrays: {', '.join(self.modified_arrays)}")
        if touched:
            parts.append(f"[{'; '.join(touched)}]")
        if self.layout_only:
            parts.append("[layout only]")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"TransformReport({self.describe()})"
