"""Data-layout transformations (the hdiff case study's key optimizations).

- :func:`permute_array_layout` — logically reorder an array's dimensions
  and give it a fresh contiguous layout (the paper's "reshaping in_field
  from [I+4, J+4, K] to [K, I+4, J+4]", Fig. 8a).  All memlets referring
  to the array are rewritten consistently, so the program's semantics are
  unchanged while its physical access pattern improves.
- :func:`pad_strides_to_multiple` — round a dimension's stride up to a
  multiple (in elements), introducing post-padding that aligns rows to
  cache lines (Fig. 8c).

Both functions validate *all* their arguments before mutating anything:
a rejected call raises :class:`~repro.errors.TransformError` and leaves
the SDFG exactly as it was — no half-permuted descriptors, no memlets
pointing at a layout that was never committed.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.sdfg.data import Array
from repro.sdfg.memlet import Memlet
from repro.sdfg.sdfg import SDFG
from repro.symbolic.expr import Expr, Integer, ceiling_div, mul, sympify

__all__ = ["permute_array_layout", "pad_strides_to_multiple"]


def _rewrite_memlets(sdfg: SDFG, name: str, rewrite) -> None:
    """Apply ``rewrite(memlet) -> Memlet`` to every memlet on *name*.

    Two-phase: every replacement memlet is built (and may raise) before
    the first one is committed, so a failing rewrite cannot leave the
    graph partially rewritten.
    """
    staged: list[tuple] = []
    for state in sdfg.states():
        for edge in state.edges():
            conn = edge.data
            if conn is None or conn.memlet is None or conn.memlet.data != name:
                continue
            staged.append((conn, rewrite(conn.memlet)))
    for conn, memlet in staged:
        conn.memlet = memlet


def _check_permutation(order: Sequence[int], ndim: int, what: str) -> list[int]:
    """Validate *order* as a permutation of ``range(ndim)`` of ints."""
    order = list(order)
    if len(order) != ndim:
        raise TransformError(
            f"permutation {order!r} has length {len(order)} "
            f"but {what} has rank {ndim}"
        )
    if not all(isinstance(i, int) and not isinstance(i, bool) for i in order):
        raise TransformError(f"permutation {order!r} must contain only integers")
    if sorted(order) != list(range(ndim)):
        raise TransformError(f"invalid permutation {order!r} for rank {ndim}")
    return order


def permute_array_layout(sdfg: SDFG, name: str, order: Sequence[int]) -> Array:
    """Reorder the dimensions of container *name* by *order*.

    ``order[k]`` gives the old dimension that becomes new dimension ``k``.
    The descriptor is replaced by a C-contiguous array in the new dimension
    order and every memlet subset is permuted to match.  Returns the new
    descriptor.

    All validation happens up front — a bad *order* (wrong length,
    non-integer entries, not a permutation) or a memlet whose subset rank
    does not match the array raises :class:`~repro.errors.TransformError`
    before the descriptor or any memlet is touched.
    """
    desc = sdfg.arrays.get(name)
    if not isinstance(desc, Array):
        raise TransformError(f"{name!r} is not an array container")
    order = _check_permutation(order, desc.ndim, f"array {name!r}")

    # Pre-flight every memlet: a subset of the wrong rank would raise
    # halfway through the rewrite, leaving a corrupted graph.
    for state in sdfg.states():
        for edge in state.edges():
            conn = edge.data
            if conn is None or conn.memlet is None or conn.memlet.data != name:
                continue
            rank = len(conn.memlet.subset.ranges)
            if rank != desc.ndim:
                raise TransformError(
                    f"memlet on {name!r} has subset rank {rank}, "
                    f"expected {desc.ndim}"
                )

    new_desc = desc.permuted(order)

    def rewrite(memlet: Memlet) -> Memlet:
        return Memlet(
            memlet.data,
            memlet.subset.permuted(order),
            wcr=memlet.wcr,
            volume_hint=memlet.volume_hint,
        )

    _rewrite_memlets(sdfg, name, rewrite)
    sdfg.replace_descriptor(name, new_desc)
    return new_desc


def pad_strides_to_multiple(
    sdfg: SDFG, name: str, multiple_elements: int, dim: int | None = None
) -> Array:
    """Pad the stride of dimension *dim* up to a multiple (in elements).

    With ``dim=None``, the second-innermost dimension is padded — the
    common "align each row to the cache line" case.  Outer strides are
    recomputed on top of the padded stride so the layout stays consistent.
    Returns the new descriptor.

    *multiple_elements* must be a positive integer (a float such as
    ``2.5`` would silently corrupt the stride expressions) and *dim* must
    address a non-innermost dimension; anything else raises
    :class:`~repro.errors.TransformError` without touching the SDFG.

    Example: doubles in a ``[K, 12, 12]`` array with 64-byte lines
    (8 elements): ``pad_strides_to_multiple(sdfg, "A", 8)`` pads the row
    stride from 12 to 16 elements, so every row starts on a line boundary.
    """
    desc = sdfg.arrays.get(name)
    if not isinstance(desc, Array):
        raise TransformError(f"{name!r} is not an array container")
    if not isinstance(multiple_elements, int) or isinstance(multiple_elements, bool):
        raise TransformError(
            f"padding multiple must be an integer, got {multiple_elements!r}"
        )
    if multiple_elements <= 0:
        raise TransformError("padding multiple must be positive")
    if desc.ndim < 2:
        raise TransformError("stride padding requires at least two dimensions")
    if dim is None:
        dim = desc.ndim - 2
    if not isinstance(dim, int) or isinstance(dim, bool):
        raise TransformError(f"padding dimension must be an integer, got {dim!r}")
    if not (0 <= dim < desc.ndim - 1):
        raise TransformError(
            f"cannot pad dimension {dim} of a rank-{desc.ndim} array "
            "(the innermost dimension's stride must remain 1)"
        )

    # Rebuild strides from the inside out, padding at `dim`.
    multiple = Integer(multiple_elements)
    new_strides: list[Expr] = [Integer(1)] * desc.ndim
    for d in range(desc.ndim - 2, -1, -1):
        inner_extent = mul(new_strides[d + 1], sympify(desc.shape[d + 1]))
        if d == dim:
            inner_extent = mul(ceiling_div(inner_extent, multiple), multiple)
        new_strides[d] = inner_extent
    new_desc = desc.with_strides(new_strides)
    sdfg.replace_descriptor(name, new_desc)
    return new_desc
