"""Data-layout transformations (the hdiff case study's key optimizations).

- :func:`permute_array_layout` — logically reorder an array's dimensions
  and give it a fresh contiguous layout (the paper's "reshaping in_field
  from [I+4, J+4, K] to [K, I+4, J+4]", Fig. 8a).  All memlets referring
  to the array are rewritten consistently, so the program's semantics are
  unchanged while its physical access pattern improves.
- :func:`pad_strides_to_multiple` — round a dimension's stride up to a
  multiple (in elements), introducing post-padding that aligns rows to
  cache lines (Fig. 8c).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.sdfg.data import Array
from repro.sdfg.memlet import Memlet
from repro.sdfg.sdfg import SDFG
from repro.symbolic.expr import Expr, Integer, ceiling_div, mul, sympify

__all__ = ["permute_array_layout", "pad_strides_to_multiple"]


def _rewrite_memlets(sdfg: SDFG, name: str, rewrite) -> None:
    """Apply ``rewrite(memlet) -> Memlet`` to every memlet on *name*."""
    for state in sdfg.states():
        for edge in state.edges():
            conn = edge.data
            if conn is None or conn.memlet is None or conn.memlet.data != name:
                continue
            conn.memlet = rewrite(conn.memlet)


def permute_array_layout(sdfg: SDFG, name: str, order: Sequence[int]) -> Array:
    """Reorder the dimensions of container *name* by *order*.

    ``order[k]`` gives the old dimension that becomes new dimension ``k``.
    The descriptor is replaced by a C-contiguous array in the new dimension
    order and every memlet subset is permuted to match.  Returns the new
    descriptor.
    """
    desc = sdfg.arrays.get(name)
    if not isinstance(desc, Array):
        raise TransformError(f"{name!r} is not an array container")
    order = list(order)
    if sorted(order) != list(range(desc.ndim)):
        raise TransformError(f"invalid permutation {order!r} for rank {desc.ndim}")
    new_desc = desc.permuted(order)
    sdfg.replace_descriptor(name, new_desc)

    def rewrite(memlet: Memlet) -> Memlet:
        return Memlet(
            memlet.data,
            memlet.subset.permuted(order),
            wcr=memlet.wcr,
            volume_hint=memlet.volume_hint,
        )

    _rewrite_memlets(sdfg, name, rewrite)
    return new_desc


def pad_strides_to_multiple(
    sdfg: SDFG, name: str, multiple_elements: int, dim: int | None = None
) -> Array:
    """Pad the stride of dimension *dim* up to a multiple (in elements).

    With ``dim=None``, the second-innermost dimension is padded — the
    common "align each row to the cache line" case.  Outer strides are
    recomputed on top of the padded stride so the layout stays consistent.
    Returns the new descriptor.

    Example: doubles in a ``[K, 12, 12]`` array with 64-byte lines
    (8 elements): ``pad_strides_to_multiple(sdfg, "A", 8)`` pads the row
    stride from 12 to 16 elements, so every row starts on a line boundary.
    """
    desc = sdfg.arrays.get(name)
    if not isinstance(desc, Array):
        raise TransformError(f"{name!r} is not an array container")
    if multiple_elements <= 0:
        raise TransformError("padding multiple must be positive")
    if desc.ndim < 2:
        raise TransformError("stride padding requires at least two dimensions")
    if dim is None:
        dim = desc.ndim - 2
    if not (0 <= dim < desc.ndim - 1):
        raise TransformError(
            f"cannot pad dimension {dim} of a rank-{desc.ndim} array "
            "(the innermost dimension's stride must remain 1)"
        )

    # Rebuild strides from the inside out, padding at `dim`.
    multiple = Integer(multiple_elements)
    new_strides: list[Expr] = [Integer(1)] * desc.ndim
    for d in range(desc.ndim - 2, -1, -1):
        inner_extent = mul(new_strides[d + 1], sympify(desc.shape[d + 1]))
        if d == dim:
            inner_extent = mul(ceiling_div(inner_extent, multiple), multiple)
        new_strides[d] = inner_extent
    new_desc = desc.with_strides(new_strides)
    sdfg.replace_descriptor(name, new_desc)
    return new_desc
