"""Map-parameter (loop-order) permutation.

Map scopes are semantically order-free (every iteration is independent),
but the *simulated playback order* — and on real hardware the executed
loop-nest order — follows the parameter order.  Reordering parameters so
the innermost one walks the contiguous dimension is the hdiff case study's
second optimization (Fig. 8b).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.sdfg.nodes import MapEntry
from repro.transforms.report import TransformReport

__all__ = ["reorder_map"]


def reorder_map(
    entry: MapEntry, order: Sequence[int] | Sequence[str]
) -> TransformReport:
    """Permute the parameter order of a map scope, in place.

    *order* is either a permutation of indices (``[2, 0, 1]``) or the
    parameter names in their new order (``["k", "i", "j"]``).  The map
    object is shared by the entry and exit, so both see the change; no
    memlet is touched (accesses are unchanged, only their sequence).
    Returns a report of the modified scope.
    """
    map_obj = entry.map
    if order and isinstance(order[0], str):
        try:
            indices = [map_obj.params.index(p) for p in order]  # type: ignore[arg-type]
        except ValueError as exc:
            raise TransformError(f"unknown parameter in {order!r}: {exc}") from exc
    else:
        indices = [int(i) for i in order]  # type: ignore[arg-type]
    if sorted(indices) != list(range(len(map_obj.params))):
        raise TransformError(
            f"invalid parameter order {order!r} for map {map_obj.label!r}"
        )
    map_obj.params = [map_obj.params[i] for i in indices]
    map_obj.ranges = [map_obj.ranges[i] for i in indices]
    return TransformReport(
        "reorder_map",
        detail=f"map {map_obj.label!r} -> params {map_obj.params}",
    )
