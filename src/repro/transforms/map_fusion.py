"""Map fusion: merge a producer map into its consumer through a transient.

Pattern::

    ... -> MapExit(A) -> AccessNode(T) -> MapEntry(B) -> ...

where

- ``T`` is a transient with no other readers or writers,
- maps A and B have identical iteration ranges (parameter names may
  differ — they are matched positionally), and
- per iteration, B reads exactly the element of ``T`` that A wrote
  (element-wise dependence; no stencil offsets).

Applying the transformation moves B's body into A's scope, replaces the
intermediate array by a per-iteration scalar (a register), and deletes the
array ``T`` entirely — eliminating the high-volume movement edges the
global view's heatmap highlights in the BERT case study (Fig. 6).
"""

from __future__ import annotations

import warnings

from repro.sdfg.data import Array
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.transforms.report import TransformReport

__all__ = ["FusionResult", "MapFusion", "fuse_all_maps"]


class MapFusion:
    """One matched fusion opportunity; apply with :meth:`apply`."""

    def __init__(
        self,
        sdfg: SDFG,
        state: SDFGState,
        producer_exit: MapExit,
        intermediate: AccessNode,
        consumer_entry: MapEntry,
    ):
        self.sdfg = sdfg
        self.state = state
        self.producer_exit = producer_exit
        self.intermediate = intermediate
        self.consumer_entry = consumer_entry

    # -- matching -----------------------------------------------------------
    @classmethod
    def find_matches(cls, sdfg: SDFG, state: SDFGState) -> list["MapFusion"]:
        """All applicable fusion sites in *state* (non-overlapping order)."""
        matches = []
        for node in state.data_nodes():
            match = cls._match_at(sdfg, state, node)
            if match is not None:
                matches.append(match)
        return matches

    @classmethod
    def _match_at(
        cls, sdfg: SDFG, state: SDFGState, node: AccessNode
    ) -> "MapFusion | None":
        desc = sdfg.arrays.get(node.data)
        if desc is None or not desc.transient or not isinstance(desc, Array):
            return None
        in_edges = state.in_edges(node)
        out_edges = state.out_edges(node)
        if len(in_edges) != 1 or len(out_edges) != 1:
            return None
        producer_exit = in_edges[0].src
        consumer_entry = out_edges[0].dst
        if not isinstance(producer_exit, MapExit) or not isinstance(
            consumer_entry, MapEntry
        ):
            return None
        # Only one version of the transient may exist.
        if sum(1 for n in state.data_nodes() if n.data == node.data) != 1:
            return None
        a_map = producer_exit.map
        b_map = consumer_entry.map
        if a_map.ranges != b_map.ranges:
            return None
        if in_edges[0].data.memlet is not None and in_edges[0].data.memlet.wcr:
            return None
        # Per-iteration element-wise dependence: every inner write of T in A
        # and inner read of T in B must be the identity point subset over
        # the (positionally matched) parameters.
        param_map = dict(zip(b_map.params, a_map.params))
        write_subsets = cls._inner_subsets(state, producer_exit, node.data, into=True)
        read_subsets = cls._inner_subsets(state, consumer_entry, node.data, into=False)
        if not write_subsets or not read_subsets:
            return None
        canonical = None
        for subset in write_subsets:
            if not subset.is_point:
                return None
            canonical = subset if canonical is None else canonical
            if subset != canonical:
                return None
        for subset in read_subsets:
            if not subset.is_point:
                return None
            renamed = subset.subs(param_map)
            if renamed != canonical:
                return None
        return cls(sdfg, state, producer_exit, node, consumer_entry)

    @staticmethod
    def _inner_subsets(state, scope_node, data, into: bool):
        edges = state.in_edges(scope_node) if into else state.out_edges(scope_node)
        return [
            e.data.memlet.subset
            for e in edges
            if e.data.memlet is not None and e.data.memlet.data == data
        ]

    # -- application --------------------------------------------------------
    def apply(self) -> TransformReport:
        """Apply the fusion; returns a report of the modified elements."""
        state, sdfg = self.state, self.sdfg
        exit_a = self.producer_exit
        entry_a = exit_a.entry_node
        entry_b = self.consumer_entry
        exit_b = entry_b.exit_node
        t_name = self.intermediate.data
        a_map, b_map = entry_a.map, entry_b.map
        param_map = dict(zip(b_map.params, a_map.params))

        # 1. Replace the intermediate array by a per-iteration scalar.
        scalar_name = self._fresh_scalar_name(t_name)
        dtype = sdfg.arrays[t_name].dtype
        sdfg.add_scalar(scalar_name, dtype, transient=True)
        scalar_access = state.add_access(scalar_name)

        # Producer writes: tasklet -> exit_a [IN_T]  ==>  tasklet -> scalar.
        for edge in list(state.in_edges(exit_a)):
            memlet = edge.data.memlet
            if memlet is None or memlet.data != t_name:
                continue
            state.add_edge(edge.src, edge.data.src_conn, scalar_access, None,
                           Memlet(scalar_name))
            state.remove_edge(edge)

        # 2. Rewire B's inner read edges.
        for edge in list(state.out_edges(entry_b)):
            memlet = edge.data.memlet
            if memlet is None:
                # Ordering edge: keep the node inside the fused scope.
                state.add_edge(entry_a, None, edge.dst, edge.data.dst_conn, None)
                state.remove_edge(edge)
                continue
            renamed = memlet.subs(param_map)
            if memlet.data == t_name:
                state.add_edge(scalar_access, None, edge.dst, edge.data.dst_conn,
                               Memlet(scalar_name))
            else:
                state.add_edge(entry_a, f"OUT_{memlet.data}", edge.dst,
                               edge.data.dst_conn, renamed)
            state.remove_edge(edge)

        # 3. Reroute B's outer input edges to entry_a.
        for edge in list(state.in_edges(entry_b)):
            memlet = edge.data.memlet
            if memlet is None or memlet.data == t_name:
                state.remove_edge(edge)
                continue
            state.add_edge(edge.src, edge.data.src_conn, entry_a,
                           f"IN_{memlet.data}", memlet)
            state.remove_edge(edge)

        # 4. Move B's writes to exit_a (inner) and reroute outer outputs.
        for edge in list(state.in_edges(exit_b)):
            memlet = edge.data.memlet
            if memlet is None:
                state.remove_edge(edge)
                continue
            renamed = memlet.subs(param_map)
            state.add_edge(edge.src, edge.data.src_conn, exit_a,
                           f"IN_{renamed.data}", renamed)
            exit_a.add_out_connector(f"OUT_{renamed.data}")
            state.remove_edge(edge)
        for edge in list(state.out_edges(exit_b)):
            memlet = edge.data.memlet
            if memlet is None:
                state.remove_edge(edge)
                continue
            state.add_edge(exit_a, f"OUT_{memlet.data}", edge.dst,
                           edge.data.dst_conn, memlet)
            state.remove_edge(edge)

        # 5. Rename any remaining references to B's params in B's body
        #    (tasklet-to-local memlets carry no params; tasklet code may).
        for tasklet in state.tasklets():
            for b_param, a_param in param_map.items():
                if b_param != a_param and isinstance(tasklet, Tasklet):
                    tasklet.code = _rename_identifier(tasklet.code, b_param, a_param)

        # 6. Delete the dissolved structure.
        state.remove_node(entry_b)
        state.remove_node(exit_b)
        state.remove_node(self.intermediate)
        sdfg.remove_data(t_name)
        return TransformReport(
            "MapFusion",
            modified_states=(state.name,),
            modified_arrays=(t_name, scalar_name),
            detail=f"fused {a_map.label} <- {b_map.label} through {t_name}",
        )

    def _fresh_scalar_name(self, base: str) -> str:
        candidate = f"__fused_{base}"
        counter = 0
        while candidate in self.sdfg.arrays:
            counter += 1
            candidate = f"__fused_{base}_{counter}"
        return candidate

    def __repr__(self) -> str:
        return (
            f"MapFusion({self.producer_exit.label} -> {self.intermediate.data} "
            f"-> {self.consumer_entry.label})"
        )


def _rename_identifier(code: str, old: str, new: str) -> str:
    """Rename identifier *old* to *new* in tasklet code (AST-based)."""
    import ast

    class Renamer(ast.NodeTransformer):
        def visit_Name(self, node: ast.Name) -> ast.Name:
            if node.id == old:
                return ast.copy_location(ast.Name(id=new, ctx=node.ctx), node)
            return node

    try:
        tree = ast.parse(code)
    except SyntaxError:
        return code
    return ast.unparse(Renamer().visit(tree))


class FusionResult(int):
    """Outcome of :func:`fuse_all_maps`; compares as the fusion count.

    The value itself is the number of fusions applied (so existing
    ``applied == 2`` call sites keep working); :attr:`rounds` is how many
    match/apply rounds ran and :attr:`capped` whether the round cap was
    hit before the graph converged (no remaining match).
    """

    rounds: int
    capped: bool

    def __new__(cls, applied: int, rounds: int, capped: bool) -> "FusionResult":
        obj = super().__new__(cls, applied)
        obj.rounds = rounds
        obj.capped = capped
        return obj

    def __repr__(self) -> str:
        return (
            f"FusionResult(applied={int(self)}, rounds={self.rounds}, "
            f"capped={self.capped})"
        )


def fuse_all_maps(
    sdfg: SDFG, max_rounds: int = 100, metrics=None
) -> FusionResult:
    """Repeatedly apply map fusion until no opportunity remains.

    Returns a :class:`FusionResult` — an ``int`` equal to the number of
    fusions applied, carrying the round count and whether the *max_rounds*
    cap was hit.  One match is applied per round because applying a fusion
    can create or invalidate other matches; a converged run therefore uses
    ``applied + 1`` rounds (the last round finds nothing).

    Hitting the cap is not silent: the function emits a
    :class:`RuntimeWarning`, increments the
    ``transforms.fusion.rounds_capped`` counter on *metrics* (a
    :class:`~repro.obs.metrics.MetricsRegistry`, when given), and returns
    with ``capped=True`` so callers can decide whether the partial fusion
    is acceptable.
    """
    applied = 0
    rounds = 0
    converged = False
    while rounds < max_rounds:
        rounds += 1
        found = False
        for state in sdfg.states():
            matches = MapFusion.find_matches(sdfg, state)
            if matches:
                matches[0].apply()
                applied += 1
                found = True
                break
        if not found:
            converged = True
            break
    capped = not converged
    if capped:
        if metrics is not None:
            metrics.counter("transforms.fusion.rounds_capped").inc()
        warnings.warn(
            f"map fusion stopped at the {max_rounds}-round cap with "
            f"opportunities remaining ({applied} fusions applied); "
            "raise max_rounds to fuse further",
            RuntimeWarning,
            stacklevel=2,
        )
    return FusionResult(applied, rounds, capped)
