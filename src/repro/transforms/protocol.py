"""The uniform transform protocol: ``enumerate_matches`` / ``apply``.

The SDFG paper's enabling design — transformations as uniform match/apply
objects over the graph IR — turned into the minimal protocol the
auto-tuner (:mod:`repro.tuning`) searches over:

- a :class:`Transform` is a stateless (or configuration-only) object with
  a stable :attr:`~Transform.name`;
- :meth:`Transform.enumerate_matches` lists every place it applies as
  :class:`Match` descriptors — **content-keyed** tuples of primitives
  (state names, container names, permutations), never object references.
  A match enumerated on one SDFG therefore applies verbatim to any
  content-identical copy, and the triple ``(pipeline key, transform,
  match)`` is cacheable across candidate variants;
- :meth:`Transform.apply` resolves the descriptor against the given SDFG,
  mutates it in place and returns a
  :class:`~repro.transforms.report.TransformReport` stating what changed
  (and whether the change was layout-only — the pipeline's cheap
  re-scoring path).

The free functions the case studies call
(:func:`~repro.transforms.layout.permute_array_layout`,
:func:`~repro.transforms.loop_reorder.reorder_map`, ...) remain the
implementation core; the protocol classes wrap them with matching and
reporting.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.errors import TransformError
from repro.sdfg.data import Array
from repro.sdfg.nodes import MapEntry
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.transforms.interchange import find_loop_map_nests, move_loop_into_map
from repro.transforms.layout import pad_strides_to_multiple, permute_array_layout
from repro.transforms.loop_reorder import reorder_map
from repro.transforms.map_fusion import MapFusion
from repro.transforms.report import TransformReport
from repro.transforms.strides import change_strides
from repro.symbolic.expr import Integer

__all__ = [
    "Match",
    "Transform",
    "PermuteArrayLayout",
    "ReorderMap",
    "PadStrides",
    "ChangeStrides",
    "MoveLoopIntoMap",
    "MapFusionTransform",
    "default_transforms",
    "get_transform",
]


class Match:
    """One applicable site of a transform, as a content-keyed descriptor.

    *descriptor* is a tuple of primitives (strings, ints, nested tuples)
    that addresses graph elements by **name**, never by object identity —
    so a match survives SDFG serialization round trips and applies to any
    content-identical copy.  ``(transform, descriptor)`` is the stable
    :attr:`key` the tuner's caches and dedup sets use.
    """

    __slots__ = ("transform", "descriptor", "detail")

    def __init__(self, transform: str, descriptor: tuple, detail: str = ""):
        self.transform = transform
        self.descriptor = descriptor
        self.detail = detail

    @property
    def key(self) -> tuple:
        return (self.transform, self.descriptor)

    def to_dict(self) -> dict:
        return {
            "transform": self.transform,
            "descriptor": list(self.descriptor),
            "detail": self.detail,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"Match({self.transform}, {self.descriptor})"


class Transform:
    """Protocol base: uniform matching and application over an SDFG."""

    #: Stable registry/report name (also the first element of match keys).
    name: str = "transform"

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        """All applicable matches on *sdfg*, in deterministic order."""
        raise NotImplementedError

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        """Apply *match* to *sdfg* in place; return what changed."""
        raise NotImplementedError

    # -- shared resolution helpers ----------------------------------------
    def _check(self, match: Match) -> None:
        if match.transform != self.name:
            raise TransformError(
                f"match {match!r} belongs to {match.transform!r}, "
                f"not {self.name!r}"
            )

    @staticmethod
    def _state(sdfg: SDFG, name: str) -> SDFGState:
        for state in sdfg.states():
            if state.name == name:
                return state
        raise TransformError(f"no state {name!r} in SDFG {sdfg.name!r}")

    @staticmethod
    def _array(sdfg: SDFG, name: str) -> Array:
        desc = sdfg.arrays.get(name)
        if not isinstance(desc, Array):
            raise TransformError(f"{name!r} is not an array container")
        return desc

    @staticmethod
    def _map_entry(state: SDFGState, label: str, occurrence: int) -> MapEntry:
        entries = [e for e in state.map_entries() if e.map.label == label]
        if occurrence >= len(entries):
            raise TransformError(
                f"state {state.name!r} has no map {label!r} "
                f"(occurrence {occurrence})"
            )
        return entries[occurrence]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _permutations(n: int) -> list[tuple[int, ...]]:
    """Non-identity candidate orders: exhaustive up to rank 3, rotations above.

    Bounded enumeration keeps the search space polynomial for wide maps
    while staying exhaustive where the case studies live (rank ≤ 3).
    """
    identity = tuple(range(n))
    if n <= 3:
        return [p for p in itertools.permutations(range(n)) if p != identity]
    return [tuple(range(r, n)) + tuple(range(r)) for r in range(1, n)]


def _states_touching(sdfg: SDFG, data: str) -> tuple[str, ...]:
    """Names of states with at least one memlet on container *data*."""
    out = []
    for state in sdfg.states():
        if any(m.data == data for _, m in state.all_memlets()):
            out.append(state.name)
    return tuple(out)


class PermuteArrayLayout(Transform):
    """Logically reorder an array's dimensions with a fresh contiguous layout.

    Matches every rank ≥ 2 array with every (bounded) non-identity
    permutation.  Not layout-only: memlets are rewritten, so the access
    *pattern* analyses change too.
    """

    name = "permute_array_layout"

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        matches = []
        for name, desc in sorted(sdfg.arrays.items()):
            if not isinstance(desc, Array) or desc.ndim < 2 or desc.transient:
                continue
            for order in _permutations(desc.ndim):
                matches.append(Match(
                    self.name, (name, order),
                    detail=f"{name} -> dims {list(order)}",
                ))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        self._check(match)
        name, order = match.descriptor
        touched = _states_touching(sdfg, name)
        permute_array_layout(sdfg, name, list(order))
        return TransformReport(
            self.name,
            modified_states=touched,
            modified_arrays=(name,),
            detail=f"{name} permuted to dimension order {list(order)}",
        )


class ReorderMap(Transform):
    """Permute a map scope's parameter (loop-nest) order."""

    name = "reorder_map"

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        matches = []
        for state in sdfg.states():
            seen: dict[str, int] = {}
            for entry in state.map_entries():
                label = entry.map.label
                occurrence = seen.get(label, 0)
                seen[label] = occurrence + 1
                if len(entry.map.params) < 2:
                    continue
                for order in _permutations(len(entry.map.params)):
                    new_params = [entry.map.params[i] for i in order]
                    matches.append(Match(
                        self.name,
                        (state.name, label, occurrence, order),
                        detail=f"{label} -> params {new_params}",
                    ))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        self._check(match)
        state_name, label, occurrence, order = match.descriptor
        state = self._state(sdfg, state_name)
        entry = self._map_entry(state, label, occurrence)
        report = reorder_map(entry, list(order))
        return TransformReport(
            self.name,
            modified_states=(state_name,),
            detail=report.detail,
        )


class PadStrides(Transform):
    """Pad the second-innermost stride up to the cache-line size.

    Configured by *line_bytes*; the per-array padding multiple is the
    line size in elements.  Layout-only: shape and memlets are unchanged.
    """

    name = "pad_strides_to_multiple"

    def __init__(self, line_bytes: int = 64):
        if line_bytes <= 0:
            raise TransformError("line_bytes must be positive")
        self.line_bytes = int(line_bytes)

    def _multiple(self, desc: Array) -> int:
        return max(1, self.line_bytes // desc.dtype.itemsize)

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        matches = []
        for name, desc in sorted(sdfg.arrays.items()):
            if not isinstance(desc, Array) or desc.ndim < 2 or desc.transient:
                continue
            multiple = self._multiple(desc)
            if multiple <= 1:
                continue
            matches.append(Match(
                self.name, (name, multiple),
                detail=f"{name} rows padded to {multiple} elements",
            ))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        self._check(match)
        name, multiple = match.descriptor
        pad_strides_to_multiple(sdfg, name, int(multiple))
        return TransformReport(
            self.name,
            modified_arrays=(name,),
            layout_only=True,
            detail=f"{name} strides padded to multiples of {multiple} elements",
        )

    def __repr__(self) -> str:
        return f"PadStrides(line_bytes={self.line_bytes})"


class ChangeStrides(Transform):
    """Make a chosen dimension stride-1 (AoS↔SoA relayout).

    Matches every non-stride-1 dimension of every rank ≥ 2 array.
    Layout-only: the logical descriptor and every memlet are untouched,
    so re-scoring a candidate reuses the cached simulation trace.
    """

    name = "change_strides"

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        matches = []
        for name, desc in sorted(sdfg.arrays.items()):
            if not isinstance(desc, Array) or desc.ndim < 2 or desc.transient:
                continue
            for dim in range(desc.ndim):
                if desc.strides[dim] == Integer(1):
                    continue
                matches.append(Match(
                    self.name, (name, dim),
                    detail=f"{name} dimension {dim} -> stride 1",
                ))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        self._check(match)
        name, dim = match.descriptor
        change_strides(sdfg, name, int(dim))
        return TransformReport(
            self.name,
            modified_arrays=(name,),
            layout_only=True,
            detail=f"{name} relayouted with dimension {dim} stride-1",
        )


class MoveLoopIntoMap(Transform):
    """Merge a single-parameter loop scope into the map it wraps."""

    name = "move_loop_into_map"

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        matches = []
        for state in sdfg.states():
            for outer in find_loop_map_nests(state):
                children = state.scope_children().get(outer, [])
                inner = next(n for n in children if isinstance(n, MapEntry))
                matches.append(Match(
                    self.name,
                    (state.name, outer.map.label),
                    detail=(
                        f"loop {outer.map.params[0]!r} into map "
                        f"{inner.map.label!r}"
                    ),
                ))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        self._check(match)
        state_name, label = match.descriptor
        state = self._state(sdfg, state_name)
        for outer in find_loop_map_nests(state):
            if outer.map.label == label:
                return move_loop_into_map(state, outer)
        raise TransformError(
            f"state {state_name!r} has no loop/map nest under {label!r}"
        )


class MapFusionTransform(Transform):
    """Fuse a producer map into its consumer through a transient."""

    name = "map_fusion"

    def enumerate_matches(self, sdfg: SDFG) -> list[Match]:
        matches = []
        for state in sdfg.states():
            for site in MapFusion.find_matches(sdfg, state):
                matches.append(Match(
                    self.name,
                    (state.name, site.intermediate.data),
                    detail=(
                        f"{site.producer_exit.label} <- "
                        f"{site.consumer_entry.label} through "
                        f"{site.intermediate.data}"
                    ),
                ))
        return matches

    def apply(self, sdfg: SDFG, match: Match) -> TransformReport:
        self._check(match)
        state_name, transient = match.descriptor
        state = self._state(sdfg, state_name)
        for site in MapFusion.find_matches(sdfg, state):
            if site.intermediate.data == transient:
                return site.apply()
        raise TransformError(
            f"no fusion opportunity through {transient!r} in state {state_name!r}"
        )


#: Transform names accepted by :func:`get_transform` / the tuner CLI.
_REGISTRY = {
    cls.name: cls
    for cls in (
        PermuteArrayLayout,
        ReorderMap,
        PadStrides,
        ChangeStrides,
        MoveLoopIntoMap,
        MapFusionTransform,
    )
}


def default_transforms(line_bytes: int = 64) -> tuple[Transform, ...]:
    """The full transform set the auto-tuner searches by default."""
    return (
        PermuteArrayLayout(),
        ReorderMap(),
        PadStrides(line_bytes),
        ChangeStrides(),
        MoveLoopIntoMap(),
        MapFusionTransform(),
    )


def get_transform(name: str, line_bytes: int = 64) -> Transform:
    """Instantiate one registered transform by its stable name."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise TransformError(
            f"unknown transform {name!r}; choose from {sorted(_REGISTRY)}"
        )
    if cls is PadStrides:
        return PadStrides(line_bytes)
    return cls()


def resolve_transforms(
    names: Iterable[str] | Sequence[Transform] | None,
    line_bytes: int = 64,
) -> tuple[Transform, ...]:
    """Coerce a mixed name/instance list into transform instances."""
    if names is None:
        return default_transforms(line_bytes)
    out: list[Transform] = []
    for item in names:
        if isinstance(item, Transform):
            out.append(item)
        else:
            out.append(get_transform(str(item), line_bytes))
    return tuple(out)
