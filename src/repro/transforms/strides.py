"""Stride relayout: make a chosen dimension the contiguous one.

The CLOUDSC/NBLOCKS story: blocked vertical-physics fields are stored
``[KLEV, NBLOCKS]`` C-contiguously, so walking the vertical dimension
``jk`` for one block jumps ``NBLOCKS`` elements per step — every access
touches a new cache line.  :func:`change_strides` rebuilds the strides so
a chosen dimension becomes stride-1 (the remaining dimensions keep their
relative order above it) *without* changing the logical shape or any
memlet: an AoS↔SoA relayout visible only to the physical-locality
analyses.

Because the logical descriptor and the graph are untouched, the
transformation is *layout-only*: the incremental pipeline re-runs only
the layout-dependent passes and serves the (expensive) simulation trace
from cache.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.sdfg.data import Array
from repro.sdfg.sdfg import SDFG
from repro.symbolic.expr import Expr, Integer, mul, sympify
from repro.transforms.report import TransformReport

__all__ = ["change_strides", "change_strides_by_extent"]


def change_strides(sdfg: SDFG, name: str, dim: int) -> Array:
    """Relayout array *name* so dimension *dim* has stride 1.

    The new layout orders the remaining dimensions outside *dim* in their
    existing relative order (i.e. the physical layout is the C-contiguous
    layout of the dimension order "everything else, then *dim*").  Shape,
    memlets and logical semantics are unchanged — only the strides move,
    so the resulting :class:`~repro.transforms.report.TransformReport`
    (via the protocol wrapper) is *layout-only*.

    Returns the new descriptor.
    """
    desc = sdfg.arrays.get(name)
    if not isinstance(desc, Array):
        raise TransformError(f"{name!r} is not an array container")
    if not isinstance(dim, int) or isinstance(dim, bool):
        raise TransformError(f"stride dimension must be an integer, got {dim!r}")
    if not (0 <= dim < desc.ndim):
        raise TransformError(
            f"dimension {dim} out of range for rank-{desc.ndim} array {name!r}"
        )
    if desc.ndim < 2:
        raise TransformError("stride change requires at least two dimensions")

    # Physical layout order: all other dimensions (relative order kept),
    # then `dim` innermost.  Build strides from the inside out.
    order = [d for d in range(desc.ndim) if d != dim] + [dim]
    new_strides: list[Expr] = [Integer(1)] * desc.ndim
    extent: Expr = Integer(1)
    for d in reversed(order):
        new_strides[d] = extent
        extent = mul(extent, sympify(desc.shape[d]))
    new_desc = desc.with_strides(new_strides)
    sdfg.replace_descriptor(name, new_desc)
    return new_desc


def change_strides_by_extent(
    sdfg: SDFG, extent, include_transients: bool = False
) -> TransformReport:
    """Apply :func:`change_strides` to every array with a matching dimension.

    *extent* is a symbol name (or expression string) — every array that
    has exactly one dimension whose shape equals it gets that dimension
    made stride-1.  This is the batch form of the Sajohn-CH/dace
    ``change_strides(sdfg, ('NBLOCKS',), ...)`` idiom: one call relayouts
    the whole blocked data set.

    Returns a layout-only report naming the modified arrays.
    """
    target = sympify(extent)
    modified: list[str] = []
    for name, desc in sorted(sdfg.arrays.items()):
        if not isinstance(desc, Array) or desc.ndim < 2:
            continue
        if desc.transient and not include_transients:
            continue
        dims = [d for d, s in enumerate(desc.shape) if sympify(s) == target]
        if len(dims) != 1:
            continue
        if desc.strides[dims[0]] == Integer(1):
            continue  # already contiguous along the target dimension
        change_strides(sdfg, name, dims[0])
        modified.append(name)
    return TransformReport(
        "change_strides",
        modified_arrays=tuple(modified),
        layout_only=bool(modified),
        detail=f"stride-1 dimension = {target} on {len(modified)} array(s)",
    )
