"""HTML report assembly: the static equivalent of the tool's interface.

Bundles the global graph view, container views, histograms and metric
tables into one self-contained HTML document (SVGs are inlined), so an
entire analysis session can be archived or shared.
"""

from __future__ import annotations

import html
from typing import Sequence

__all__ = ["ReportBuilder"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; background: #fcfcfa; }
h1 { border-bottom: 2px solid #8899bb; padding-bottom: 0.3em; }
h2 { color: #334; margin-top: 1.6em; }
.section { margin-bottom: 2em; }
.figure { background: #ffffff; border: 1px solid #ddd; padding: 12px;
          display: inline-block; margin: 6px; vertical-align: top; }
.caption { font-size: 0.85em; color: #555; margin-top: 6px; }
table { border-collapse: collapse; margin-top: 0.5em; }
td, th { border: 1px solid #ccc; padding: 4px 10px; font-size: 0.9em; }
th { background: #eef2f8; }
"""


class ReportBuilder:
    """Accumulates sections and renders a standalone HTML document."""

    def __init__(self, title: str):
        self.title = title
        self._sections: list[str] = []

    def add_heading(self, text: str) -> "ReportBuilder":
        self._sections.append(f"<h2>{html.escape(text)}</h2>")
        return self

    def add_paragraph(self, text: str) -> "ReportBuilder":
        self._sections.append(f"<p>{html.escape(text)}</p>")
        return self

    def add_svg(self, svg: str, caption: str | None = None) -> "ReportBuilder":
        block = f'<div class="figure">{svg}'
        if caption:
            block += f'<div class="caption">{html.escape(caption)}</div>'
        block += "</div>"
        self._sections.append(block)
        return self

    def add_table(
        self,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        caption: str | None = None,
    ) -> "ReportBuilder":
        parts = ["<table>"]
        parts.append(
            "<tr>" + "".join(f"<th>{html.escape(str(h))}</th>" for h in headers) + "</tr>"
        )
        for row in rows:
            parts.append(
                "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
            )
        parts.append("</table>")
        if caption:
            parts.append(f'<div class="caption">{html.escape(caption)}</div>')
        self._sections.append("".join(parts))
        return self

    def render(self) -> str:
        body = "\n".join(f'<div class="section">{s}</div>' for s in self._sections)
        return (
            "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
            f"<title>{html.escape(self.title)}</title>"
            f"<style>{_STYLE}</style></head><body>"
            f"<h1>{html.escape(self.title)}</h1>\n{body}\n</body></html>"
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())
