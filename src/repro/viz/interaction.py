"""Interaction state for the parameterized local view (Section V-A).

Each parallel-region parameter gets a slider; setting slider values
"highlights all memory elements accessed inside the parallel region for
that specific parameter combination" (Fig. 3).  The interaction model here
is the scriptable equivalent: a :class:`ParameterSliders` object bound to a
map scope that, for the current values, resolves the per-container element
highlights by evaluating the scope's inner memlets.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import VisualizationError
from repro.sdfg.nodes import MapEntry, Tasklet
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.simulation.simulator import _CompiledSubset

__all__ = ["ParameterSliders"]


class ParameterSliders:
    """Sliders over one map scope's parameters.

    Parameters
    ----------
    sdfg, state, entry:
        The program, state and map scope being inspected.
    symbols:
        Concrete values for the program's free size symbols (the local
        view's parameterization).
    """

    def __init__(
        self,
        sdfg: SDFG,
        state: SDFGState,
        entry: MapEntry,
        symbols: Mapping[str, int],
    ):
        self.sdfg = sdfg
        self.state = state
        self.entry = entry
        self.symbols = {k: int(v) for k, v in symbols.items()}
        self._values: dict[str, int] = {}
        for param, rng in zip(entry.map.params, entry.map.ranges):
            concrete = rng.concretize(self.symbols)
            if len(concrete) == 0:
                raise VisualizationError(
                    f"map parameter {param!r} has an empty range"
                )
            self._values[param] = concrete[0]

    # -- slider manipulation ---------------------------------------------------
    def bounds(self, param: str) -> tuple[int, int]:
        """Slider bounds (inclusive) of one parameter."""
        rng = self.entry.map.range_of(param).concretize(self.symbols)
        values = list(rng)
        return (min(values), max(values))

    def set(self, param: str, value: int) -> None:
        """Move one slider; rejects values outside the parameter's range."""
        rng = self.entry.map.range_of(param).concretize(self.symbols)
        if value not in rng:
            raise VisualizationError(
                f"value {value} outside range of parameter {param!r} "
                f"({rng.start}..{rng.stop - 1} step {rng.step})"
            )
        self._values[param] = int(value)

    def values(self) -> dict[str, int]:
        return dict(self._values)

    # -- highlights -------------------------------------------------------------
    def highlighted_elements(self) -> dict[str, set[tuple[int, ...]]]:
        """Per-container elements accessed at the current slider values.

        Evaluates every memlet attached to tasklets inside the scope under
        the current parameter assignment — exactly what hovering/moving a
        slider highlights in the tool.
        """
        env = dict(self.symbols)
        env.update(self._values)
        sdict = self.state.scope_dict()
        out: dict[str, set[tuple[int, ...]]] = {}
        for node in self.state.nodes():
            if not isinstance(node, Tasklet):
                continue
            if not self._inside(sdict, node):
                continue
            for edge in self.state.in_edges(node) + self.state.out_edges(node):
                memlet = edge.data.memlet
                if memlet is None:
                    continue
                desc = self.sdfg.arrays.get(memlet.data)
                if desc is None or getattr(desc, "transient", False):
                    continue
                for indices in _CompiledSubset(memlet).points(env):
                    out.setdefault(memlet.data, set()).add(indices)
        return out

    def _inside(self, sdict: dict, node: Tasklet) -> bool:
        scope = sdict.get(node)
        while scope is not None:
            if scope is self.entry:
                return True
            scope = sdict.get(scope)
        return False
