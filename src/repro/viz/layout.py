"""Layered (Sugiyama-style) layout for SDFG state graphs.

Produces deterministic node coordinates for the graph renderer: nodes are
assigned to layers by longest path from the sources, ordered within layers
by repeated barycenter sweeps, and packed horizontally.  Map scopes get
surrounding boxes ("shown as boxes with trapezoidal header bars",
Section V-A) computed from the bounding box of their member nodes.
"""

from __future__ import annotations

from repro.graph import topological_sort
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, NestedSDFG, Node, Tasklet
from repro.sdfg.state import SDFGState

__all__ = ["NodeBox", "ScopeBox", "StateLayout", "layout_state"]

#: Layout constants (pixels).
LAYER_GAP = 50.0
NODE_GAP = 30.0
MARGIN = 20.0
NODE_HEIGHT = 34.0
CHAR_WIDTH = 7.5
MIN_NODE_WIDTH = 60.0


class NodeBox:
    """Placed geometry of one node."""

    __slots__ = ("node", "x", "y", "width", "height", "layer")

    def __init__(self, node: Node, width: float, height: float, layer: int):
        self.node = node
        self.width = width
        self.height = height
        self.layer = layer
        self.x = 0.0  # center x, assigned later
        self.y = 0.0  # center y

    @property
    def left(self) -> float:
        return self.x - self.width / 2

    @property
    def right(self) -> float:
        return self.x + self.width / 2

    @property
    def top(self) -> float:
        return self.y - self.height / 2

    @property
    def bottom(self) -> float:
        return self.y + self.height / 2

    @property
    def shape(self) -> str:
        if isinstance(self.node, AccessNode):
            return "ellipse"
        if isinstance(self.node, MapEntry):
            return "trapezoid_down"
        if isinstance(self.node, MapExit):
            return "trapezoid_up"
        if isinstance(self.node, NestedSDFG):
            return "double_rect"
        return "octagon"


class ScopeBox:
    """Bounding box drawn behind a map scope's members."""

    __slots__ = ("entry", "x0", "y0", "x1", "y1", "depth")

    def __init__(self, entry: MapEntry, x0: float, y0: float, x1: float, y1: float, depth: int):
        self.entry = entry
        self.x0, self.y0, self.x1, self.y1 = x0, y0, x1, y1
        self.depth = depth


class StateLayout:
    """All geometry needed to render one state."""

    def __init__(self, state: SDFGState):
        self.state = state
        self.boxes: dict[Node, NodeBox] = {}
        self.scopes: list[ScopeBox] = []
        self.width = 0.0
        self.height = 0.0

    def box(self, node: Node) -> NodeBox:
        return self.boxes[node]

    def edge_endpoints(self) -> list[tuple[object, tuple[float, float], tuple[float, float]]]:
        """(edge, (x1, y1), (x2, y2)) for every edge: bottom of src → top of dst."""
        out = []
        for edge in self.state.edges():
            src, dst = self.boxes[edge.src], self.boxes[edge.dst]
            out.append((edge, (src.x, src.bottom), (dst.x, dst.top)))
        return out


def _node_label(node: Node) -> str:
    if isinstance(node, MapEntry):
        space = ", ".join(
            f"{p}={r}" for p, r in zip(node.map.params, node.map.ranges)
        )
        return f"{node.label}[{space}]"
    if isinstance(node, MapExit):
        return node.label
    return node.label


def _node_size(node: Node) -> tuple[float, float]:
    label = _node_label(node)
    width = max(MIN_NODE_WIDTH, len(label) * CHAR_WIDTH + 24)
    height = NODE_HEIGHT
    if isinstance(node, (MapEntry, MapExit)):
        width += 30  # trapezoid slant allowance
    if isinstance(node, NestedSDFG):
        height = NODE_HEIGHT * 1.4
    return width, height


def layout_state(state: SDFGState) -> StateLayout:
    """Compute a deterministic layered layout for *state*."""
    layout = StateLayout(state)
    order = topological_sort(state.graph)
    if not order:
        layout.width = layout.height = 2 * MARGIN
        return layout

    # 1. Longest-path layering.
    layer_of: dict[Node, int] = {}
    for node in order:
        preds = state.graph.predecessors(node)
        layer_of[node] = (max((layer_of[p] for p in preds), default=-1)) + 1

    layers: dict[int, list[Node]] = {}
    for node in order:
        layers.setdefault(layer_of[node], []).append(node)
    num_layers = max(layers) + 1

    for node in order:
        width, height = _node_size(node)
        layout.boxes[node] = NodeBox(node, width, height, layer_of[node])

    # 2. Barycenter ordering within layers (two down-up sweeps).
    positions: dict[Node, int] = {}
    for layer_nodes in layers.values():
        for i, node in enumerate(layer_nodes):
            positions[node] = i

    def sweep(downward: bool) -> None:
        layer_range = range(1, num_layers) if downward else range(num_layers - 2, -1, -1)
        for li in layer_range:
            nodes = layers[li]

            def barycenter(node: Node) -> float:
                neighbors = (
                    state.graph.predecessors(node)
                    if downward
                    else state.graph.successors(node)
                )
                relevant = [positions[n] for n in neighbors if n in positions]
                return sum(relevant) / len(relevant) if relevant else positions[node]

            nodes.sort(key=lambda n: (barycenter(n), positions[n]))
            for i, node in enumerate(nodes):
                positions[node] = i

    for _ in range(2):
        sweep(downward=True)
        sweep(downward=False)

    # 3. Coordinate assignment: pack each layer, center on the widest.
    layer_widths = {
        li: sum(layout.boxes[n].width for n in nodes) + NODE_GAP * (len(nodes) - 1)
        for li, nodes in layers.items()
    }
    total_width = max(layer_widths.values()) + 2 * MARGIN

    y = MARGIN
    for li in range(num_layers):
        nodes = layers[li]
        row_height = max(layout.boxes[n].height for n in nodes)
        x = (total_width - layer_widths[li]) / 2
        for node in nodes:
            box = layout.boxes[node]
            box.x = x + box.width / 2
            box.y = y + row_height / 2
            x += box.width + NODE_GAP
        y += row_height + LAYER_GAP
    layout.width = total_width
    layout.height = y - LAYER_GAP + MARGIN

    # 4. Scope boxes from member bounding boxes.
    sdict = state.scope_dict()
    depth_of: dict[MapEntry, int] = {}

    def scope_depth(entry: MapEntry) -> int:
        if entry not in depth_of:
            parent = sdict.get(entry)
            depth_of[entry] = 0 if parent is None else scope_depth(parent) + 1
        return depth_of[entry]

    for entry in state.map_entries():
        members = [entry]
        if entry.exit_node is not None:
            members.append(entry.exit_node)
        members += [n for n, scope in sdict.items() if _within(entry, scope, sdict)]
        pad = 8.0 + 4.0 * scope_depth(entry)
        x0 = min(layout.boxes[m].left for m in members) - pad
        x1 = max(layout.boxes[m].right for m in members) + pad
        y0 = min(layout.boxes[m].top for m in members) - pad
        y1 = max(layout.boxes[m].bottom for m in members) + pad
        layout.scopes.append(ScopeBox(entry, x0, y0, x1, y1, scope_depth(entry)))
    layout.scopes.sort(key=lambda s: s.depth)
    return layout


def _within(entry: MapEntry, scope: MapEntry | None, sdict: dict) -> bool:
    """True when *scope* is *entry* or transitively inside it."""
    while scope is not None:
        if scope is entry:
            return True
        scope = sdict.get(scope)
    return False
