"""Roofline view of an auto-tuning search trajectory.

The roofline model plots *operational intensity* (ops per byte moved,
x axis) against attainable performance (y axis) under two ceilings: the
machine's peak compute rate and the memory-bandwidth diagonal.  The two
meet at the **machine balance** — programs left of it are memory-bound.

Every transform the tuner searches over preserves the program's
operation count while changing its modeled physical movement, so the
search trajectory moves *horizontally*: each candidate is one point at
``ops / moved_bytes``, and a successful search walks the program from
deep memory-bound territory toward (or past) the balance point.  The
view renders the ceilings, the per-candidate points (colored by search
round), and the baseline→best path.

Deterministic, dependency-free SVG (like every view in
:mod:`repro.viz`), so golden-file tests are byte-stable.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

from repro.errors import VisualizationError
from repro.viz.svg import SVGDocument

__all__ = ["MachineModel", "render_roofline"]


class MachineModel:
    """The two roofline ceilings of a target machine.

    Defaults model a commodity DDR4 server core: 64 GFLOP/s peak and
    32 GB/s of memory bandwidth, i.e. a machine balance of 2 ops/byte.
    """

    __slots__ = ("peak_ops", "bandwidth", "label")

    def __init__(
        self,
        peak_ops: float = 64e9,
        bandwidth: float = 32e9,
        label: str = "1 core, DDR4",
    ):
        if peak_ops <= 0 or bandwidth <= 0:
            raise VisualizationError("machine ceilings must be positive")
        self.peak_ops = float(peak_ops)
        self.bandwidth = float(bandwidth)
        self.label = label

    @property
    def balance(self) -> float:
        """Machine balance in ops/byte: the ridge of the roofline."""
        return self.peak_ops / self.bandwidth

    def attainable(self, intensity: float) -> float:
        """Attainable ops/s at *intensity* (the roof itself)."""
        return min(self.peak_ops, self.bandwidth * intensity)


def _intensity(entry: Mapping[str, Any]) -> float | None:
    ops = entry.get("ops")
    moved = entry.get("moved_bytes")
    if ops is None or moved is None or moved <= 0 or ops <= 0:
        return None
    return float(ops) / float(moved)


_ROUND_COLORS = (
    "#4878a8", "#6a9a48", "#c8a028", "#b06048", "#8858a0", "#48a098",
)


def render_roofline(
    trajectory: Sequence[Mapping[str, Any]],
    machine: MachineModel | None = None,
    width: float = 640.0,
    height: float = 420.0,
    title: str = "tuning trajectory",
) -> str:
    """Render a tuning *trajectory* (``TuningResult.trajectory``) as SVG.

    Each entry needs ``ops`` and ``moved_bytes`` (entries without them —
    e.g. unscored candidates — are skipped); ``round`` selects the point
    color and ``sequence`` feeds the hover title.  The first entry is
    treated as the baseline and the lowest-movement entry as the best;
    a dashed path connects the two.
    """
    machine = machine if machine is not None else MachineModel()
    points = []
    for index, entry in enumerate(trajectory):
        intensity = _intensity(entry)
        if intensity is None:
            continue
        steps = [
            step.get("transform", "?") for step in entry.get("sequence", ())
        ]
        points.append({
            "index": index,
            "intensity": intensity,
            "perf": machine.attainable(intensity),
            "round": int(entry.get("round", 0)),
            "moved_bytes": int(entry["moved_bytes"]),
            "label": " -> ".join(steps) if steps else "baseline",
        })
    if not points:
        raise VisualizationError("trajectory has no scored candidates to plot")

    best = min(points, key=lambda p: p["moved_bytes"])
    baseline = points[0]

    # Log-log frame covering the data and the ridge with margin.
    xs = [p["intensity"] for p in points] + [machine.balance]
    x_min = math.log10(min(xs)) - 0.4
    x_max = math.log10(max(xs)) + 0.6
    ys = [p["perf"] for p in points] + [machine.peak_ops]
    y_min = math.log10(min(ys)) - 0.4
    y_max = math.log10(max(ys)) + 0.3

    margin = 54.0
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin

    def px(intensity: float) -> float:
        frac = (math.log10(intensity) - x_min) / (x_max - x_min)
        return margin + frac * plot_w

    def py(perf: float) -> float:
        frac = (math.log10(perf) - y_min) / (y_max - y_min)
        return height - margin - frac * plot_h

    doc = SVGDocument(width, height)
    doc.rect(0, 0, width, height, fill="#ffffff", stroke=None)
    doc.rect(margin, margin, plot_w, plot_h, fill="none", stroke="#cccccc")
    doc.text(width / 2, margin / 2, f"roofline: {title}", font_size=14)
    doc.text(
        width / 2, height - margin / 3,
        "operational intensity [ops/byte, log]", font_size=11,
    )
    doc.text(
        14, height / 2, "attainable [ops/s, log]", font_size=11,
        transform=f"rotate(-90 14 {height / 2:g})",
    )

    # The two ceilings: bandwidth diagonal up to the ridge, flat peak after.
    ridge_x = px(machine.balance)
    peak_y = py(machine.peak_ops)
    diag_start = 10 ** x_min
    doc.line(
        px(diag_start), py(machine.attainable(diag_start)),
        ridge_x, peak_y,
        stroke="#555555", stroke_width=1.5,
        title=f"bandwidth {machine.bandwidth:g} B/s",
    )
    doc.line(
        ridge_x, peak_y, margin + plot_w, peak_y,
        stroke="#555555", stroke_width=1.5,
        title=f"peak {machine.peak_ops:g} ops/s",
    )
    doc.line(
        ridge_x, peak_y, ridge_x, height - margin,
        stroke="#aaaaaa", stroke_width=1.0, stroke_dasharray="3,3",
        title=f"machine balance {machine.balance:g} ops/byte",
    )
    doc.text(
        ridge_x, height - margin + 14,
        f"balance {machine.balance:g}", font_size=10, fill="#555555",
    )
    doc.text(
        margin + plot_w - 4, peak_y - 6, machine.label,
        font_size=10, anchor="end", fill="#555555",
    )

    # Baseline -> best path (dashed), under the points.
    if best is not baseline:
        doc.line(
            px(baseline["intensity"]), py(baseline["perf"]),
            px(best["intensity"]), py(best["perf"]),
            stroke="#b06048", stroke_width=1.2, stroke_dasharray="5,3",
            title=(
                f"{baseline['moved_bytes']} -> {best['moved_bytes']} bytes"
            ),
        )

    for point in points:
        color = _ROUND_COLORS[point["round"] % len(_ROUND_COLORS)]
        radius = 4.0
        if point is baseline:
            color, radius = "#222222", 5.0
        elif point is best:
            color, radius = "#b06048", 5.5
        doc.ellipse(
            px(point["intensity"]), py(point["perf"]), radius, radius,
            fill=color, stroke="#ffffff",
            title=(
                f"{point['label']}: {point['intensity']:.4g} ops/B, "
                f"{point['moved_bytes']} bytes moved (round {point['round']})"
            ),
        )
    return doc.to_string()
