"""Data-container rendering: hierarchical multi-dimensional grids.

Implements the paper's Section V-B layout: "the two innermost dimensions
are laid out in a 2D grid, and those are nested in alternating horizontal
and vertical 1D grids for the remaining higher dimensions" (Fig. 4a).
Cells can be colored from per-element metric values (access counts, cache
misses, reuse distances) and highlighted (slider accesses, cache-line
overlays), with the exact value available as a tooltip.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import VisualizationError
from repro.viz.color import GREEN_YELLOW_RED, Color, ColorScale
from repro.viz.scaling import ScalingMethod, make_scaling
from repro.viz.svg import SVGDocument

__all__ = ["ContainerGrid", "render_container", "aggregate_tiles", "render_container_aggregated"]

CELL = 18.0
CELL_GAP = 2.0
BLOCK_GAP = 10.0

_DEFAULT_FILL = "#e8e8e2"
_HIGHLIGHT_FILL = "#37c871"  # the paper highlights accessed elements green
_SELECT_STROKE = "#1a56c4"


class ContainerGrid:
    """Geometry of one container's hierarchical element grid."""

    def __init__(self, shape: Sequence[int]):
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise VisualizationError(f"invalid shape {self.shape}")
        self.positions, (self.width, self.height) = _geometry(self.shape)

    def cell_origin(self, indices: Sequence[int]) -> tuple[float, float]:
        """Top-left pixel of one element's cell."""
        try:
            return self.positions[tuple(indices)]
        except KeyError:
            raise VisualizationError(
                f"indices {tuple(indices)} outside shape {self.shape}"
            ) from None

    def elements(self) -> Iterable[tuple[int, ...]]:
        return self.positions.keys()

    def __len__(self) -> int:
        return len(self.positions)


def _geometry(
    shape: tuple[int, ...]
) -> tuple[dict[tuple[int, ...], tuple[float, float]], tuple[float, float]]:
    """Recursive placement: indices → (x, y); returns the overall size."""
    if len(shape) == 0:
        return {(): (0.0, 0.0)}, (CELL, CELL)
    if len(shape) == 1:
        positions = {
            (i,): (i * (CELL + CELL_GAP), 0.0) for i in range(shape[0])
        }
        width = shape[0] * CELL + (shape[0] - 1) * CELL_GAP
        return positions, (width, CELL)
    if len(shape) == 2:
        rows, cols = shape
        positions = {
            (r, c): (c * (CELL + CELL_GAP), r * (CELL + CELL_GAP))
            for r in range(rows)
            for c in range(cols)
        }
        width = cols * CELL + (cols - 1) * CELL_GAP
        height = rows * CELL + (rows - 1) * CELL_GAP
        return positions, (width, height)

    # Higher dimensions: nest sub-blocks along alternating axes.  Counting
    # from the innermost 2D grid outward, the first extra dimension is laid
    # out horizontally, the next vertically, and so on — odd total rank
    # means the outermost extra dim runs horizontally.
    sub_positions, (sub_w, sub_h) = _geometry(shape[1:])
    horizontal = len(shape) % 2 == 1
    positions: dict[tuple[int, ...], tuple[float, float]] = {}
    for block in range(shape[0]):
        if horizontal:
            ox, oy = block * (sub_w + BLOCK_GAP), 0.0
        else:
            ox, oy = 0.0, block * (sub_h + BLOCK_GAP)
        for idx, (x, y) in sub_positions.items():
            positions[(block,) + idx] = (ox + x, oy + y)
    if horizontal:
        size = (shape[0] * sub_w + (shape[0] - 1) * BLOCK_GAP, sub_h)
    else:
        size = (sub_w, shape[0] * sub_h + (shape[0] - 1) * BLOCK_GAP)
    return positions, size


def render_container(
    name: str,
    shape: Sequence[int],
    values: Mapping[tuple[int, ...], float] | None = None,
    highlights: Iterable[tuple[int, ...]] = (),
    selections: Iterable[tuple[int, ...]] = (),
    method: ScalingMethod | str = ScalingMethod.MEDIAN,
    colors: ColorScale = GREEN_YELLOW_RED,
    value_label: str = "accesses",
) -> str:
    """Render one container as SVG.

    Parameters
    ----------
    values:
        Optional per-element metric (missing elements stay neutral);
        colored via the chosen scaling method and color scale, with the
        exact number in each cell's tooltip.
    highlights:
        Elements to fill green — accessed elements for the current slider
        values (Fig. 3) or cache-line neighbors (Fig. 5a).
    selections:
        Elements drawn with a selection stroke (the clicked elements).
    """
    grid = ContainerGrid(shape)
    label_height = 18.0
    doc = SVGDocument(grid.width + 2 * 6.0, grid.height + label_height + 2 * 6.0)
    doc.text(6.0, 13.0, name, font_size=12, anchor="start")

    scaling = None
    if values:
        scaling = make_scaling(method, list(values.values()))

    highlight_set = {tuple(h) for h in highlights}
    selection_set = {tuple(s) for s in selections}

    doc.begin_group(transform=f"translate(6 {label_height + 6.0})")
    for idx in grid.elements():
        x, y = grid.cell_origin(idx)
        fill = _DEFAULT_FILL
        title = f"{name}[{', '.join(map(str, idx))}]"
        if values is not None and idx in values and scaling is not None:
            fill = colors.sample(scaling.normalize(values[idx])).to_hex()
            title += f": {values[idx]:g} {value_label}"
        if idx in highlight_set:
            fill = _HIGHLIGHT_FILL
        stroke = _SELECT_STROKE if idx in selection_set else "#666666"
        stroke_width = 2.0 if idx in selection_set else 0.5
        doc.rect(
            x, y, CELL, CELL,
            fill=fill, stroke=stroke, stroke_width=stroke_width, title=title,
        )
    doc.end_group()
    return doc.to_string()


def aggregate_tiles(
    shape: Sequence[int],
    values: Mapping[tuple[int, ...], float],
    tile: Sequence[int],
    reduce: str = "sum",
) -> tuple[tuple[int, ...], dict[tuple[int, ...], float]]:
    """Aggregate per-element values into coarse tiles.

    The paper's Discussion notes that visualizing *full-sized* parameters
    "would require aggregating multiple data elements in one visual tile" —
    this implements that aggregation: ``tile[d]`` consecutive indices of
    dimension ``d`` merge into one tile, combining values with ``sum``,
    ``max`` or ``mean``.  Returns the tiled shape and the tiled value map
    (tiles without any contributing element are omitted).
    """
    shape = tuple(int(s) for s in shape)
    tile = tuple(int(t) for t in tile)
    if len(tile) != len(shape):
        raise VisualizationError(
            f"tile rank {len(tile)} does not match shape rank {len(shape)}"
        )
    if any(t <= 0 for t in tile):
        raise VisualizationError(f"invalid tile {tile}")
    reducers = {"sum": sum, "max": max, "mean": lambda xs: sum(xs) / len(xs)}
    if reduce not in reducers:
        raise VisualizationError(
            f"unknown reduction {reduce!r}; choose from {sorted(reducers)}"
        )
    tiled_shape = tuple(-(-s // t) for s, t in zip(shape, tile))
    buckets: dict[tuple[int, ...], list[float]] = {}
    for indices, value in values.items():
        if len(indices) != len(shape):
            raise VisualizationError(
                f"indices {indices} do not match shape {shape}"
            )
        key = tuple(i // t for i, t in zip(indices, tile))
        buckets.setdefault(key, []).append(float(value))
    fold = reducers[reduce]
    return tiled_shape, {key: fold(vals) for key, vals in buckets.items()}


def render_container_aggregated(
    name: str,
    shape: Sequence[int],
    values: Mapping[tuple[int, ...], float],
    tile: Sequence[int],
    reduce: str = "sum",
    method: ScalingMethod | str = ScalingMethod.MEDIAN,
    colors: ColorScale = GREEN_YELLOW_RED,
    value_label: str = "accesses",
) -> str:
    """Render a full-size container with elements aggregated into tiles."""
    tiled_shape, tiled_values = aggregate_tiles(shape, values, tile, reduce)
    label = f"{name} [{'x'.join(map(str, tile))} tiles, {reduce}]"
    return render_container(
        label,
        tiled_shape,
        values=tiled_values,
        method=method,
        colors=colors,
        value_label=f"{value_label} ({reduce})",
    )
