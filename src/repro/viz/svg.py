"""A minimal SVG document builder.

Deterministic, dependency-free output: elements appear in insertion order
and attribute order is fixed, so renders are byte-stable across runs (a
requirement for golden-file tests).
"""

from __future__ import annotations

import xml.sax.saxutils as saxutils
from typing import Mapping

__all__ = ["SVGDocument"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


class SVGDocument:
    """Accumulates SVG elements and serializes to a string."""

    def __init__(self, width: float, height: float):
        self.width = width
        self.height = height
        self._parts: list[str] = []
        self._group_depth = 0

    # -- primitives -----------------------------------------------------------
    def _attrs(self, attrs: Mapping[str, object]) -> str:
        items = []
        for key, value in attrs.items():
            if value is None:
                continue
            name = key.rstrip("_").replace("_", "-")
            items.append(f'{name}="{saxutils.escape(_fmt(value))}"')
        return (" " + " ".join(items)) if items else ""

    def _emit(self, text: str) -> None:
        self._parts.append("  " * (1 + self._group_depth) + text)

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "none",
        stroke: str | None = "#000000",
        title: str | None = None,
        **extra: object,
    ) -> None:
        attrs = self._attrs(
            {"x": x, "y": y, "width": width, "height": height, "fill": fill,
             "stroke": stroke, **extra}
        )
        if title:
            self._emit(f"<rect{attrs}><title>{saxutils.escape(title)}</title></rect>")
        else:
            self._emit(f"<rect{attrs}/>")

    def ellipse(
        self,
        cx: float,
        cy: float,
        rx: float,
        ry: float,
        fill: str = "none",
        stroke: str | None = "#000000",
        title: str | None = None,
        **extra: object,
    ) -> None:
        attrs = self._attrs(
            {"cx": cx, "cy": cy, "rx": rx, "ry": ry, "fill": fill,
             "stroke": stroke, **extra}
        )
        if title:
            self._emit(
                f"<ellipse{attrs}><title>{saxutils.escape(title)}</title></ellipse>"
            )
        else:
            self._emit(f"<ellipse{attrs}/>")

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        title: str | None = None,
        **extra: object,
    ) -> None:
        attrs = self._attrs(
            {"x1": x1, "y1": y1, "x2": x2, "y2": y2, "stroke": stroke,
             "stroke-width": stroke_width, **extra}
        )
        if title:
            self._emit(f"<line{attrs}><title>{saxutils.escape(title)}</title></line>")
        else:
            self._emit(f"<line{attrs}/>")

    def polygon(
        self,
        points: list[tuple[float, float]],
        fill: str = "none",
        stroke: str | None = "#000000",
        title: str | None = None,
        **extra: object,
    ) -> None:
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        attrs = self._attrs({"points": pts, "fill": fill, "stroke": stroke, **extra})
        if title:
            self._emit(
                f"<polygon{attrs}><title>{saxutils.escape(title)}</title></polygon>"
            )
        else:
            self._emit(f"<polygon{attrs}/>")

    def path(
        self,
        d: str,
        fill: str = "none",
        stroke: str | None = "#000000",
        title: str | None = None,
        **extra: object,
    ) -> None:
        attrs = self._attrs({"d": d, "fill": fill, "stroke": stroke, **extra})
        if title:
            self._emit(f"<path{attrs}><title>{saxutils.escape(title)}</title></path>")
        else:
            self._emit(f"<path{attrs}/>")

    def text(
        self,
        x: float,
        y: float,
        content: str,
        font_size: float = 12.0,
        anchor: str = "middle",
        fill: str = "#000000",
        **extra: object,
    ) -> None:
        attrs = self._attrs(
            {"x": x, "y": y, "font-size": font_size, "text-anchor": anchor,
             "fill": fill, "font-family": "sans-serif", **extra}
        )
        self._emit(f"<text{attrs}>{saxutils.escape(content)}</text>")

    # -- grouping -----------------------------------------------------------
    def begin_group(self, **attrs: object) -> None:
        self._emit(f"<g{self._attrs(attrs)}>")
        self._group_depth += 1

    def end_group(self) -> None:
        if self._group_depth == 0:
            raise ValueError("end_group without matching begin_group")
        self._group_depth -= 1
        self._emit("</g>")

    # -- output --------------------------------------------------------------
    def to_string(self) -> str:
        if self._group_depth != 0:
            raise ValueError(f"{self._group_depth} unclosed group(s)")
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
        )
        return "\n".join([header, *self._parts, "</svg>"])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_string())
