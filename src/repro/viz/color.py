"""Color math and the heatmap color scales of Section IV-C.

The paper motivates a green → yellow → red spectrum: it keeps the
intuitive green=fast / red=slow ordering of the popular green-red scale
while inserting yellow in the middle to visually separate mid-range values
that a two-stop gradient would wash out.  Rainbow ("jet") maps are
explicitly avoided (they are perceptually misleading); a colorblind-safe
alternative is provided since "this color scale can be manually changed to
fit the user's needs".
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import VisualizationError

__all__ = [
    "Color",
    "ColorScale",
    "GREEN_YELLOW_RED",
    "GREEN_RED",
    "COLORBLIND_SCALE",
    "JET",
]


class Color:
    """An sRGB color with 8-bit channels."""

    __slots__ = ("r", "g", "b")

    def __init__(self, r: int, g: int, b: int):
        for channel in (r, g, b):
            if not 0 <= channel <= 255:
                raise VisualizationError(f"channel value {channel} out of range")
        self.r, self.g, self.b = int(r), int(g), int(b)

    @classmethod
    def from_hex(cls, text: str) -> "Color":
        text = text.lstrip("#")
        if len(text) != 6:
            raise VisualizationError(f"invalid hex color {text!r}")
        return cls(int(text[0:2], 16), int(text[2:4], 16), int(text[4:6], 16))

    def to_hex(self) -> str:
        return f"#{self.r:02x}{self.g:02x}{self.b:02x}"

    def lerp(self, other: "Color", t: float) -> "Color":
        """Linear interpolation toward *other* (t in [0, 1])."""
        t = min(1.0, max(0.0, t))
        return Color(
            round(self.r + (other.r - self.r) * t),
            round(self.g + (other.g - self.g) * t),
            round(self.b + (other.b - self.b) * t),
        )

    def luminance(self) -> float:
        """Relative luminance (WCAG), for choosing readable label colors."""

        def channel(c: int) -> float:
            s = c / 255.0
            return s / 12.92 if s <= 0.03928 else ((s + 0.055) / 1.055) ** 2.4

        return 0.2126 * channel(self.r) + 0.7152 * channel(self.g) + 0.0722 * channel(self.b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Color):
            return NotImplemented
        return (self.r, self.g, self.b) == (other.r, other.g, other.b)

    def __hash__(self) -> int:
        return hash((Color, self.r, self.g, self.b))

    def __repr__(self) -> str:
        return f"Color({self.to_hex()!r})"


class ColorScale:
    """A piecewise-linear gradient over control points at t=0..1."""

    def __init__(self, name: str, stops: Sequence[Color]):
        if len(stops) < 2:
            raise VisualizationError("a color scale needs at least two stops")
        self.name = name
        self.stops = list(stops)

    def sample(self, t: float) -> Color:
        """Color at normalized position *t* (clamped to [0, 1])."""
        t = min(1.0, max(0.0, float(t)))
        segments = len(self.stops) - 1
        scaled = t * segments
        index = min(int(scaled), segments - 1)
        local = scaled - index
        return self.stops[index].lerp(self.stops[index + 1], local)

    def reversed(self) -> "ColorScale":
        return ColorScale(f"{self.name}_reversed", list(reversed(self.stops)))

    def __repr__(self) -> str:
        return f"ColorScale({self.name!r}, {len(self.stops)} stops)"


#: The paper's default: green (low / fast) → yellow → red (high / slow).
GREEN_YELLOW_RED = ColorScale(
    "green_yellow_red",
    [Color.from_hex("#2e9e4f"), Color.from_hex("#f0d048"), Color.from_hex("#d03a30")],
)

#: The two-stop green-red scale the paper improves upon.
GREEN_RED = ColorScale(
    "green_red",
    [Color.from_hex("#2e9e4f"), Color.from_hex("#d03a30")],
)

#: Colorblind-safe alternative (blue → light gray → orange, a diverging
#: scheme readable under deuteranopia/protanopia).
COLORBLIND_SCALE = ColorScale(
    "colorblind_safe",
    [Color.from_hex("#2166ac"), Color.from_hex("#f7f7f7"), Color.from_hex("#e08214")],
)

#: The rainbow/jet map — included only as the documented anti-pattern for
#: the color-scheme ablation benchmark.
JET = ColorScale(
    "jet",
    [
        Color.from_hex("#00007f"),
        Color.from_hex("#0000ff"),
        Color.from_hex("#00ffff"),
        Color.from_hex("#ffff00"),
        Color.from_hex("#ff0000"),
        Color.from_hex("#7f0000"),
    ],
)
