"""Navigation overviews: the outline tree and the minimap (Section IV-A).

"Two separate overviews help maintain situational awareness.  A minimap
... shows the current program in its entirety, with a box drawing the
current viewport ...  A second, outline overview shows a hierarchical view
of the graph, enabling quick navigation to a specific graph element."

Both are plain data models: the outline is a nested tree over states,
scopes and nodes; the minimap exposes the viewport rectangle and the
focus-element → viewport animation as a sequence of interpolated frames
(navigation "animated as a slowed down motion of the viewport").
"""

from __future__ import annotations

from typing import Iterator

from repro.sdfg.nodes import MapEntry, NestedSDFG, Node
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.viz.layout import StateLayout, layout_state

__all__ = ["OutlineEntry", "build_outline", "Viewport", "Minimap"]


class OutlineEntry:
    """One row of the outline tree."""

    __slots__ = ("label", "kind", "target", "children")

    def __init__(self, label: str, kind: str, target: object):
        self.label = label
        self.kind = kind
        self.target = target
        self.children: list[OutlineEntry] = []

    def walk(self) -> Iterator["OutlineEntry"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> "OutlineEntry | None":
        """First entry with the given label (depth-first)."""
        for entry in self.walk():
            if entry.label == label:
                return entry
        return None

    def __repr__(self) -> str:
        return f"OutlineEntry({self.kind}:{self.label}, {len(self.children)} children)"


def build_outline(sdfg: SDFG) -> OutlineEntry:
    """Hierarchical outline: SDFG → states → scopes → nodes."""
    root = OutlineEntry(sdfg.name, "sdfg", sdfg)
    for state in sdfg.states():
        state_entry = OutlineEntry(state.name, "state", state)
        root.children.append(state_entry)
        children = state.scope_children()

        def add_scope(parent: OutlineEntry, scope: MapEntry | None) -> None:
            for node in children.get(scope, []):
                if isinstance(node, MapEntry):
                    entry = OutlineEntry(node.label, "map", node)
                    parent.children.append(entry)
                    add_scope(entry, node)
                elif isinstance(node, NestedSDFG):
                    entry = OutlineEntry(node.label, "nested_sdfg", node)
                    parent.children.append(entry)
                    entry.children.append(build_outline(node.sdfg))
                elif hasattr(node, "entry_node"):
                    continue  # exits are implied by their entry
                else:
                    parent.children.append(
                        OutlineEntry(node.label, type(node).__name__.lower(), node)
                    )

        add_scope(state_entry, None)
    return root


class Viewport:
    """The visible window onto a laid-out graph."""

    __slots__ = ("x", "y", "width", "height")

    def __init__(self, x: float, y: float, width: float, height: float):
        self.x, self.y, self.width, self.height = x, y, width, height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2, self.y + self.height / 2)

    def contains(self, px: float, py: float) -> bool:
        return self.x <= px <= self.x + self.width and self.y <= py <= self.y + self.height

    def __repr__(self) -> str:
        return f"Viewport({self.x:.0f}, {self.y:.0f}, {self.width:.0f}x{self.height:.0f})"


class Minimap:
    """Minimap model: whole-graph extent, viewport, and animated moves."""

    def __init__(self, state: SDFGState, viewport: Viewport | None = None):
        self.layout: StateLayout = layout_state(state)
        self.viewport = viewport or Viewport(
            0.0, 0.0, self.layout.width, self.layout.height
        )

    def viewport_fraction(self) -> tuple[float, float]:
        """Viewport size relative to the graph (for drawing the box)."""
        return (
            self.viewport.width / self.layout.width if self.layout.width else 1.0,
            self.viewport.height / self.layout.height if self.layout.height else 1.0,
        )

    def focus_on(self, node: Node, frames: int = 10) -> list[Viewport]:
        """Animated navigation to *node*: interpolated viewport frames.

        The last frame centers the node; intermediate frames move the
        viewport smoothly (the continuity principle).
        """
        if frames < 1:
            raise ValueError("need at least one frame")
        box = self.layout.box(node)
        target_cx, target_cy = box.x, box.y
        start_cx, start_cy = self.viewport.center
        out: list[Viewport] = []
        for i in range(1, frames + 1):
            t = i / frames
            # Smoothstep easing for the slowed-down motion.
            eased = t * t * (3 - 2 * t)
            cx = start_cx + (target_cx - start_cx) * eased
            cy = start_cy + (target_cy - start_cy) * eased
            out.append(
                Viewport(
                    cx - self.viewport.width / 2,
                    cy - self.viewport.height / 2,
                    self.viewport.width,
                    self.viewport.height,
                )
            )
        self.viewport = out[-1]
        return out
