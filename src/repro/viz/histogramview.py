"""Reuse-distance histograms (the detail panel of Fig. 5b).

Selecting a memory element plots the distribution of its stack distances
over time; cold (infinite-distance) accesses appear as a dedicated "cold"
bar so the engineer can read off cold misses directly.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import VisualizationError
from repro.viz.svg import SVGDocument

__all__ = ["histogram_buckets", "render_histogram"]


def histogram_buckets(
    distances: Sequence[float], num_buckets: int = 10
) -> tuple[list[tuple[float, float, int]], int]:
    """Bucket finite distances; count infinite ones separately.

    Returns ``([(lo, hi, count), ...], cold_count)``; bucket ranges are
    half-open except the last, which includes its upper bound.
    """
    finite = [d for d in distances if not math.isinf(d)]
    cold = len(distances) - len(finite)
    if not finite:
        return [], cold
    lo, hi = min(finite), max(finite)
    if lo == hi:
        return [(lo, hi, len(finite))], cold
    width = (hi - lo) / num_buckets
    counts = [0] * num_buckets
    for d in finite:
        idx = min(int((d - lo) / width), num_buckets - 1)
        counts[idx] += 1
    return (
        [(lo + i * width, lo + (i + 1) * width, c) for i, c in enumerate(counts)],
        cold,
    )


def render_histogram(
    distances: Sequence[float],
    title: str = "reuse distance",
    num_buckets: int = 10,
    width: float = 320.0,
    height: float = 160.0,
) -> str:
    """Render the distance histogram (plus cold bar) as SVG."""
    if not distances:
        raise VisualizationError("cannot render a histogram of no distances")
    buckets, cold = histogram_buckets(distances, num_buckets)
    bars: list[tuple[str, int]] = [
        (f"{lo:g}–{hi:g}", count) for lo, hi, count in buckets
    ]
    if cold:
        bars.append(("cold", cold))
    max_count = max(count for _, count in bars) if bars else 1

    margin = 28.0
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    bar_w = plot_w / max(len(bars), 1)

    doc = SVGDocument(width, height)
    doc.text(width / 2, 16.0, title, font_size=12)
    doc.line(margin, height - margin, width - margin, height - margin, stroke="#333333")
    for i, (label, count) in enumerate(bars):
        bar_h = plot_h * count / max_count
        x = margin + i * bar_w
        fill = "#8ab6e8" if label != "cold" else "#d03a30"
        doc.rect(
            x + 2, height - margin - bar_h, bar_w - 4, bar_h,
            fill=fill, stroke="#333333", stroke_width=0.5,
            title=f"{label}: {count}",
        )
        if count:
            doc.text(x + bar_w / 2, height - margin - bar_h - 3, str(count), font_size=9)
        doc.text(x + bar_w / 2, height - margin + 12, label, font_size=7)
    return doc.to_string()
