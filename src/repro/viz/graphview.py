"""The global graph view: SDFG states rendered as SVG with in-situ overlays.

This is the paper's Fig. 1 / Fig. 6 content: the program's dataflow graph
with color-coded heatmap overlays mapped directly onto edges (data
movement) and nodes (operation counts / arithmetic intensity), plus an
optional minimap.
"""

from __future__ import annotations

from typing import Mapping

from repro.graph import Edge
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Node
from repro.sdfg.sdfg import SDFG
from repro.sdfg.state import SDFGState
from repro.viz.color import GREEN_YELLOW_RED, ColorScale
from repro.viz.heatmap import Heatmap
from repro.viz.layout import NodeBox, StateLayout, layout_state
from repro.viz.svg import SVGDocument

__all__ = ["GraphRenderer", "render_state"]

_NODE_FILL = "#f8f8f4"
_SCOPE_FILL = "#eef2f8"
_EDGE_COLOR = "#555555"


class GraphRenderer:
    """Renders one SDFG state with optional heatmap overlays.

    Parameters
    ----------
    state:
        The dataflow state to draw.
    edge_heatmap:
        Optional heatmap keyed by state edges (e.g. movement volumes).
    node_heatmap:
        Optional heatmap keyed by nodes (e.g. op counts or intensity).
    show_minimap:
        Draw the scaled-down overview with a viewport box in the corner.
    """

    def __init__(
        self,
        state: SDFGState,
        edge_heatmap: Heatmap | None = None,
        node_heatmap: Heatmap | None = None,
        show_minimap: bool = False,
        colors: ColorScale = GREEN_YELLOW_RED,
        folds: "FoldState | None" = None,
        zoom: float = 1.0,
    ):
        from repro.viz.lod import visible_detail

        self.state = state
        self.edge_heatmap = edge_heatmap
        self.node_heatmap = node_heatmap
        self.show_minimap = show_minimap
        self.colors = colors
        self.folds = folds
        self.zoom = zoom
        self.detail = visible_detail(zoom)
        self.layout: StateLayout = layout_state(state)
        self._hidden: set[Node] = self._hidden_nodes()

    def _hidden_nodes(self) -> set[Node]:
        """Nodes hidden by collapsed scopes (drawn as scope summaries)."""
        if self.folds is None:
            return set()
        from repro.viz.lod import FoldedScope

        visible: set[Node] = set()
        for item in self.folds.visible_nodes():
            if isinstance(item, FoldedScope):
                visible.add(item.entry)  # the entry stands in for the scope
            else:
                visible.add(item)
        return {n for n in self.state.nodes() if n not in visible}

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        from repro.viz.lod import DetailLevel

        doc = SVGDocument(self.layout.width, self.layout.height)
        self._draw_scopes(doc)
        if self.detail is not DetailLevel.OUTLINE:
            self._draw_edges(doc)
            self._draw_nodes(doc)
        if self.edge_heatmap is not None or self.node_heatmap is not None:
            self._draw_legend(doc)
        if self.show_minimap:
            self._draw_minimap(doc)
        return doc.to_string()

    def _draw_scopes(self, doc: SVGDocument) -> None:
        for scope in self.layout.scopes:
            doc.rect(
                scope.x0,
                scope.y0,
                scope.x1 - scope.x0,
                scope.y1 - scope.y0,
                fill=_SCOPE_FILL,
                stroke="#8899bb",
                stroke_dasharray="4 3",
                rx=6,
            )

    def _edge_color_width(self, edge: Edge) -> tuple[str, float]:
        if self.edge_heatmap is not None and edge in self.edge_heatmap.values:
            position = self.edge_heatmap.position(edge)
            return self.edge_heatmap.color(edge).to_hex(), 1.0 + 3.0 * position
        return _EDGE_COLOR, 1.0

    def _draw_edges(self, doc: SVGDocument) -> None:
        from repro.viz.lod import DetailLevel

        for edge, (x1, y1), (x2, y2) in self.layout.edge_endpoints():
            if edge.src in self._hidden or edge.dst in self._hidden:
                continue
            color, width = self._edge_color_width(edge)
            title = None
            if (
                self.detail is DetailLevel.FULL
                and edge.data is not None
                and edge.data.memlet is not None
            ):
                memlet = edge.data.memlet
                title = f"{memlet.data}[{memlet.subset}] volume={memlet.volume()}"
            doc.line(x1, y1, x2, y2, stroke=color, stroke_width=width, title=title)
            # Arrowhead.
            doc.polygon(
                [(x2, y2), (x2 - 4, y2 - 7), (x2 + 4, y2 - 7)],
                fill=color,
                stroke=None,
            )

    def _node_fill(self, node: Node) -> str:
        if self.node_heatmap is not None and node in self.node_heatmap.values:
            return self.node_heatmap.color(node).to_hex()
        return _NODE_FILL

    def _draw_nodes(self, doc: SVGDocument) -> None:
        from repro.viz.layout import _node_label
        from repro.viz.lod import DetailLevel

        for node, box in self.layout.boxes.items():
            if node in self._hidden:
                continue
            fill = self._node_fill(node)
            if self.folds is not None and self.folds.is_collapsed(node):
                # Summary element for the folded scope.
                doc.rect(
                    box.left, box.top, box.width, box.height,
                    fill="#d8dde8", rx=8, stroke_dasharray="5 3",
                    title=f"{node.label} [folded]",
                )
                doc.text(box.x, box.y + 4, f"{node.label} [+]", font_size=11)
                continue
            label = _node_label(node)
            title = repr(node)
            if isinstance(node, AccessNode):
                doc.ellipse(
                    box.x, box.y, box.width / 2, box.height / 2,
                    fill=fill, title=title,
                )
            elif isinstance(node, MapEntry):
                doc.polygon(
                    [
                        (box.left, box.bottom),
                        (box.left + 15, box.top),
                        (box.right - 15, box.top),
                        (box.right, box.bottom),
                    ],
                    fill=fill,
                    title=title,
                )
            elif isinstance(node, MapExit):
                doc.polygon(
                    [
                        (box.left, box.top),
                        (box.left + 15, box.bottom),
                        (box.right - 15, box.bottom),
                        (box.right, box.top),
                    ],
                    fill=fill,
                    title=title,
                )
            else:
                doc.rect(
                    box.left, box.top, box.width, box.height,
                    fill=fill, rx=8, title=title,
                )
            if self.detail is not DetailLevel.BLOCKS:
                doc.text(box.x, box.y + 4, label, font_size=11)

    def _draw_legend(self, doc: SVGDocument) -> None:
        heatmap = self.edge_heatmap or self.node_heatmap
        assert heatmap is not None
        x, y = 10.0, self.layout.height - 24.0
        steps = 24
        seg = 4.0
        for i in range(steps):
            color = heatmap.colors.sample(i / (steps - 1))
            doc.rect(x + i * seg, y, seg, 10, fill=color.to_hex(), stroke=None)
        lo, hi = heatmap.scaling.domain()
        doc.text(x, y - 3, f"{lo:g}", font_size=8, anchor="start")
        doc.text(x + steps * seg, y - 3, f"{hi:g}", font_size=8, anchor="end")

    def _draw_minimap(self, doc: SVGDocument) -> None:
        scale = 0.12
        mw, mh = self.layout.width * scale, self.layout.height * scale
        ox, oy = self.layout.width - mw - 6, 6.0
        doc.begin_group()
        doc.rect(ox, oy, mw, mh, fill="#ffffff", stroke="#999999")
        for node, box in self.layout.boxes.items():
            doc.rect(
                ox + box.left * scale,
                oy + box.top * scale,
                max(1.0, box.width * scale),
                max(1.0, box.height * scale),
                fill="#b0b8c8",
                stroke=None,
            )
        # Viewport indicator (the full view in a static render).
        doc.rect(ox, oy, mw, mh, fill="none", stroke="#d03a30")
        doc.end_group()


def render_state(
    state: SDFGState,
    edge_heatmap: Heatmap | None = None,
    node_heatmap: Heatmap | None = None,
    show_minimap: bool = False,
    folds=None,
    zoom: float = 1.0,
) -> str:
    """One-call rendering of a state to an SVG string.

    *folds* (a :class:`~repro.viz.lod.FoldState`) collapses scopes into
    summary elements; *zoom* selects the level of detail (labels and
    memlet tooltips disappear as the view zooms out, Section IV-A).
    """
    return GraphRenderer(
        state,
        edge_heatmap=edge_heatmap,
        node_heatmap=node_heatmap,
        show_minimap=show_minimap,
        folds=folds,
        zoom=zoom,
    ).render()
