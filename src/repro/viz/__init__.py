"""Visualization: the visual encodings of the paper's tool.

The original tool renders inside VS Code; here every view is a
deterministic SVG/HTML artifact plus an explicit, scriptable interaction
model, so the *content* of each figure is reproducible and testable.

- :mod:`repro.viz.color` — color math, the green-yellow-red scale and
  colorblind-safe alternatives (Section IV-C).
- :mod:`repro.viz.scaling` — adaptive heatmap scaling: mean-centered,
  median-centered, histogram-bucketed, plus linear/exponential min-max
  interpolation baselines (Fig. 2).
- :mod:`repro.viz.heatmap` — scaling + color scale = heatmap assignment.
- :mod:`repro.viz.layout` — layered graph layout for SDFG states.
- :mod:`repro.viz.renderer` — SVG writers: graph view, data containers,
  histograms, HTML report.
- :mod:`repro.viz.lod` — graph folding and level-of-detail rules
  (Section IV-A).
- :mod:`repro.viz.overview` — minimap and outline models (Section IV-A).
- :mod:`repro.viz.interaction` — parameter sliders, selections and the
  resulting element highlights (Section V-A).
- :mod:`repro.viz.roofline` — intensity-vs-machine-balance view of an
  auto-tuning search trajectory.
"""

from repro.viz.color import (
    COLORBLIND_SCALE,
    GREEN_YELLOW_RED,
    Color,
    ColorScale,
)
from repro.viz.heatmap import Heatmap
from repro.viz.roofline import MachineModel, render_roofline
from repro.viz.scaling import (
    ExponentialScale,
    HistogramScale,
    LinearScale,
    MeanCenteredScale,
    MedianCenteredScale,
    ScalingMethod,
    make_scaling,
)

__all__ = [
    "Color",
    "ColorScale",
    "GREEN_YELLOW_RED",
    "COLORBLIND_SCALE",
    "ScalingMethod",
    "MeanCenteredScale",
    "MedianCenteredScale",
    "HistogramScale",
    "LinearScale",
    "ExponentialScale",
    "make_scaling",
    "Heatmap",
    "MachineModel",
    "render_roofline",
]
