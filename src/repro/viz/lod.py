"""Graph folding and level-of-detail rules (Section IV-A).

"We exploit [the hierarchical construction] to allow entire subgraphs to
be folded and hidden, instead representing them with a single graph
element that summarizes their content", and "more detailed visual elements
are gradually hidden as the user zooms further out".

Both behaviours are modeled explicitly: a :class:`FoldState` tracks which
scopes are collapsed and produces the list of *visible* nodes with
summaries for folded scopes; :func:`visible_detail` encodes the zoom
thresholds at which labels, connectors and fine elements disappear.
"""

from __future__ import annotations

import enum

from repro.sdfg.nodes import MapEntry, NestedSDFG, Node
from repro.sdfg.state import SDFGState

__all__ = ["DetailLevel", "visible_detail", "FoldState", "FoldedScope"]


class DetailLevel(enum.Enum):
    """What is drawn at a given zoom factor."""

    FULL = "full"  # everything: labels, connectors, memlet annotations
    NODES = "nodes"  # node shapes and labels, no connectors/annotations
    BLOCKS = "blocks"  # node shapes only
    OUTLINE = "outline"  # scope boxes only


def visible_detail(zoom: float) -> DetailLevel:
    """Map a zoom factor (1.0 = 100%) to the rendered detail level.

    Mirrors map-software behaviour: zooming out pulls focus toward coarse
    structure.
    """
    if zoom >= 0.75:
        return DetailLevel.FULL
    if zoom >= 0.4:
        return DetailLevel.NODES
    if zoom >= 0.15:
        return DetailLevel.BLOCKS
    return DetailLevel.OUTLINE


class FoldedScope:
    """Placeholder standing in for a collapsed scope."""

    __slots__ = ("entry", "summary", "hidden_count")

    def __init__(self, entry: MapEntry | NestedSDFG, summary: str, hidden_count: int):
        self.entry = entry
        self.summary = summary
        self.hidden_count = hidden_count

    def __repr__(self) -> str:
        return f"FoldedScope({self.summary!r}, hides {self.hidden_count} nodes)"


class FoldState:
    """Tracks collapsed scopes of one state and resolves visibility."""

    def __init__(self, state: SDFGState):
        self.state = state
        self._collapsed: set[Node] = set()

    # -- fold manipulation ---------------------------------------------------
    def collapse(self, entry: MapEntry | NestedSDFG) -> None:
        if not isinstance(entry, (MapEntry, NestedSDFG)):
            raise TypeError("only map scopes and nested SDFGs can be folded")
        self._collapsed.add(entry)

    def expand(self, entry: Node) -> None:
        self._collapsed.discard(entry)

    def toggle(self, entry: MapEntry | NestedSDFG) -> bool:
        """Flip the fold state; returns True when now collapsed."""
        if entry in self._collapsed:
            self.expand(entry)
            return False
        self.collapse(entry)
        return True

    def is_collapsed(self, entry: Node) -> bool:
        return entry in self._collapsed

    def collapse_all(self) -> None:
        for entry in self.state.map_entries():
            self._collapsed.add(entry)
        for node in self.state.nodes():
            if isinstance(node, NestedSDFG):
                self._collapsed.add(node)

    def expand_all(self) -> None:
        self._collapsed.clear()

    # -- visibility ----------------------------------------------------------
    def visible_nodes(self) -> list[Node | FoldedScope]:
        """Nodes to draw: unfolded nodes plus summaries for folded scopes.

        A node inside a collapsed scope is hidden; the *outermost*
        collapsed scope containing it provides the summary element.
        """
        sdict = self.state.scope_dict()

        def outermost_collapsed(node: Node) -> Node | None:
            found = None
            scope = sdict.get(node)
            while scope is not None:
                if scope in self._collapsed:
                    found = scope
                scope = sdict.get(scope)
            # The collapsed entry itself is also summarized.
            if node in self._collapsed:
                found = node if found is None else found
            return found

        out: list[Node | FoldedScope] = []
        emitted: set[Node] = set()
        for node in self.state.topological_nodes():
            owner = outermost_collapsed(node)
            if owner is None:
                exit_of_collapsed = (
                    hasattr(node, "entry_node")
                    and outermost_collapsed(node.entry_node) is not None  # type: ignore[attr-defined]
                ) or (hasattr(node, "entry_node") and node.entry_node in self._collapsed)  # type: ignore[attr-defined]
                if exit_of_collapsed:
                    continue
                out.append(node)
                continue
            if owner in emitted:
                continue
            emitted.add(owner)
            hidden = self._count_hidden(owner, sdict)
            if isinstance(owner, MapEntry):
                summary = f"{owner.label} [folded]"
            else:
                summary = f"{owner.label} [folded SDFG]"
            out.append(FoldedScope(owner, summary, hidden))
        return out

    def _count_hidden(self, owner: Node, sdict: dict) -> int:
        if isinstance(owner, NestedSDFG):
            return sum(len(s.nodes()) for s in owner.sdfg.states())
        count = 0
        for node in self.state.nodes():
            scope = sdict.get(node)
            while scope is not None:
                if scope is owner:
                    count += 1
                    break
                scope = sdict.get(scope)
        # The matching exit is hidden too.
        return count + 1
